//! `check-sync`: a bounded deterministic-interleaving checker
//! ("loom-lite").
//!
//! A [`Model`] is a handful of logical threads, each advanced in
//! **atomic steps** over a cloneable shared state — one step models one
//! indivisible action of the real code (an atomic RMW, a mutex
//! acquisition, a check made under a lock). The explorer runs a
//! depth-first search over *schedules*: at every point it considers
//! each enabled thread as the next to step, so every interleaving up
//! to the configured bounds is executed, not sampled.
//!
//! Bounds make the search finite and focused:
//!
//! * **Preemption bound** — switching away from a thread that could
//!   have continued costs one preemption; schedules above the bound
//!   are pruned. Almost all real concurrency bugs manifest within 2–3
//!   preemptions (CHESS), so a small bound explores the schedules
//!   that matter.
//! * **Depth bound** — spin-loop schedules (a worker re-polling an
//!   empty queue forever) are truncated and counted separately; they
//!   revisit states and can prove nothing new.
//!
//! Violations are invariant breaches reported by the model itself —
//! from a step (e.g. a counter underflow), at a terminal state, or at
//! a **deadlock** (no thread enabled, some unfinished). The models in
//! [`crate::models`] deliberately omit the production code's timeout
//! backstops, so a lost wakeup that the real system would paper over
//! with a 50 ms stall shows up here as a hard deadlock.

/// An invariant violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub msg: String,
}

impl Violation {
    /// Shorthand constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        Violation { msg: msg.into() }
    }
}

/// A model: logical threads over a cloneable shared state.
pub trait Model {
    /// The shared state a schedule mutates.
    type State: Clone;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Number of logical threads (ids `0..threads()`).
    fn threads(&self) -> usize;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Whether thread `t` has finished its program.
    fn finished(&self, s: &Self::State, t: usize) -> bool;

    /// Whether thread `t` can take a step now (false when blocked on a
    /// lock or parked in a condvar, and for finished threads).
    fn enabled(&self, s: &Self::State, t: usize) -> bool;

    /// Advances thread `t` by one atomic step.
    ///
    /// # Errors
    ///
    /// An invariant violated *by this step*.
    fn step(&self, s: &mut Self::State, t: usize) -> Result<(), Violation>;

    /// Invariants of a terminal state (every thread finished).
    ///
    /// # Errors
    ///
    /// A violated end-state invariant.
    fn at_end(&self, s: &Self::State) -> Result<(), Violation>;

    /// Called when no thread is enabled but some are unfinished.
    /// Models where parking forever is legitimate (condvar waiters
    /// with no more work) return `Ok`; a true deadlock or lost wakeup
    /// returns the violation.
    ///
    /// # Errors
    ///
    /// The deadlock/lost-wakeup violation.
    fn on_deadlock(&self, s: &Self::State) -> Result<(), Violation>;
}

/// Search bounds and caps.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOpts {
    /// Maximum preemptions per schedule.
    pub preemption_bound: u32,
    /// Maximum steps per schedule (spin-loop truncation).
    pub max_depth: u32,
    /// Stop after this many complete schedules (0 = unlimited).
    pub max_schedules: u64,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            preemption_bound: 3,
            max_depth: 96,
            max_schedules: 2_000_000,
        }
    }
}

/// What an exploration saw.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Complete schedules executed to a legal end (terminal state or
    /// allowed park).
    pub schedules: u64,
    /// Schedules cut off at the depth bound (spin loops).
    pub truncated: u64,
    /// Schedules pruned at the preemption bound.
    pub preemption_pruned: u64,
    /// First violation found, with the thread schedule that reached it.
    pub violation: Option<(Violation, Vec<usize>)>,
}

impl ExploreReport {
    /// True when no invariant violation was found.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// One DFS frame: the state *before* choosing, and the choices left.
struct Frame<S> {
    state: S,
    choices: Vec<usize>,
    next_choice: usize,
    last_thread: Option<usize>,
    preemptions: u32,
}

/// Exhaustively explores `model`'s schedules within `opts`' bounds.
/// Stops at the first violation.
pub fn explore<M: Model>(model: &M, opts: &ExploreOpts) -> ExploreReport {
    let mut report = ExploreReport::default();
    let n = model.threads();

    let enabled_threads =
        |s: &M::State| -> Vec<usize> { (0..n).filter(|&t| model.enabled(s, t)).collect() };

    let initial = model.initial();
    let mut stack: Vec<Frame<M::State>> = vec![Frame {
        choices: enabled_threads(&initial),
        state: initial,
        next_choice: 0,
        last_thread: None,
        preemptions: 0,
    }];
    // The thread choices taken to reach the current frame (schedule
    // prefix), for violation reporting.
    let mut schedule: Vec<usize> = Vec::new();

    loop {
        let depth = stack.len() as u32;
        let Some(frame) = stack.last_mut() else {
            break;
        };
        // Terminal or deadlocked state?
        if frame.choices.is_empty() {
            let all_done = (0..n).all(|t| model.finished(&frame.state, t));
            let verdict = if all_done {
                model.at_end(&frame.state)
            } else {
                model.on_deadlock(&frame.state)
            };
            match verdict {
                Ok(()) => report.schedules += 1,
                Err(v) => {
                    report.violation = Some((v, schedule.clone()));
                    return report;
                }
            }
            if opts.max_schedules != 0 && report.schedules >= opts.max_schedules {
                return report;
            }
            stack.pop();
            schedule.pop();
            continue;
        }

        // All choices exhausted at this frame: backtrack.
        if frame.next_choice >= frame.choices.len() {
            stack.pop();
            schedule.pop();
            continue;
        }

        let t = frame.choices[frame.next_choice];
        frame.next_choice += 1;

        // Preemption accounting: running a different thread while the
        // previous one was still enabled is a preemption.
        let mut preemptions = frame.preemptions;
        if let Some(last) = frame.last_thread {
            if last != t && model.enabled(&frame.state, last) {
                preemptions += 1;
                if preemptions > opts.preemption_bound {
                    report.preemption_pruned += 1;
                    continue;
                }
            }
        }

        if depth > opts.max_depth {
            report.truncated += 1;
            continue;
        }

        let mut state = frame.state.clone();
        match model.step(&mut state, t) {
            Ok(()) => {}
            Err(v) => {
                let mut sched = schedule.clone();
                sched.push(t);
                report.violation = Some((v, sched));
                return report;
            }
        }
        schedule.push(t);
        stack.push(Frame {
            choices: enabled_threads(&state),
            state,
            next_choice: 0,
            last_thread: Some(t),
            preemptions,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter twice; a model
    /// whose "increment" is a non-atomic read/write pair loses
    /// updates, which the final check catches.
    struct RacyCounter {
        atomic: bool,
    }

    #[derive(Clone)]
    struct CounterState {
        value: u32,
        // Per-thread: program counter and the stale read, if any.
        pc: [u8; 2],
        read: [u32; 2],
    }

    impl Model for RacyCounter {
        type State = CounterState;

        fn name(&self) -> &'static str {
            "racy-counter"
        }

        fn threads(&self) -> usize {
            2
        }

        fn initial(&self) -> CounterState {
            CounterState {
                value: 0,
                pc: [0; 2],
                read: [0; 2],
            }
        }

        fn finished(&self, s: &CounterState, t: usize) -> bool {
            s.pc[t] >= if self.atomic { 2 } else { 4 }
        }

        fn enabled(&self, s: &CounterState, t: usize) -> bool {
            !self.finished(s, t)
        }

        fn step(&self, s: &mut CounterState, t: usize) -> Result<(), Violation> {
            if self.atomic {
                s.value += 1; // fetch_add
                s.pc[t] += 1;
            } else if s.pc[t].is_multiple_of(2) {
                s.read[t] = s.value; // load
                s.pc[t] += 1;
            } else {
                s.value = s.read[t] + 1; // store (stale)
                s.pc[t] += 1;
            }
            Ok(())
        }

        fn at_end(&self, s: &CounterState) -> Result<(), Violation> {
            if s.value == 4 {
                Ok(())
            } else {
                Err(Violation::new(format!("lost update: value={}", s.value)))
            }
        }

        fn on_deadlock(&self, _: &CounterState) -> Result<(), Violation> {
            Err(Violation::new("deadlock"))
        }
    }

    #[test]
    fn atomic_counter_is_clean() {
        let r = explore(&RacyCounter { atomic: true }, &ExploreOpts::default());
        assert!(r.clean(), "{:?}", r.violation);
        // 2 threads × 2 steps: (4 choose 2) = 6 interleavings, minus
        // any preemption pruning — must explore more than one.
        assert!(r.schedules >= 2, "{}", r.schedules);
    }

    #[test]
    fn read_modify_write_race_is_found() {
        let r = explore(&RacyCounter { atomic: false }, &ExploreOpts::default());
        let (v, sched) = r.violation.expect("the lost update must be found");
        assert!(v.msg.contains("lost update"), "{}", v.msg);
        assert!(!sched.is_empty());
    }

    #[test]
    fn preemption_bound_zero_still_runs_non_preemptive_schedules() {
        let opts = ExploreOpts {
            preemption_bound: 0,
            ..ExploreOpts::default()
        };
        let r = explore(&RacyCounter { atomic: true }, &opts);
        assert!(r.clean());
        // Run-to-completion schedules (t0 both steps then t1, and the
        // reverse) never preempt.
        assert!(r.schedules >= 2, "{}", r.schedules);
        assert!(r.preemption_pruned > 0);
    }
}
