//! Workspace file walk: every `.rs` file under the repo root, except
//! build output, VCS internals, and the linter's own seeded-violation
//! fixtures.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Path segments that mark a file as deliberately violating the rules
/// (the golden-findings test feeds them to the linter explicitly).
const SKIP_SEGMENTS: &[&str] = &["fixtures"];

/// One walked source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// File contents (lossily decoded if not valid UTF-8 — the lexer
    /// must survive anything anyway).
    pub source: String,
}

/// Collects every lintable `.rs` file under `root`, sorted by path.
///
/// # Errors
///
/// Propagates directory-walk I/O errors (unreadable dirs/files).
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files: Vec<PathBuf> = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let bytes = fs::read(&path)?;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile {
            rel_path: rel,
            source,
        });
    }
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs")
            && !path
                .components()
                .any(|c| SKIP_SEGMENTS.contains(&c.as_os_str().to_string_lossy().as_ref()))
        {
            files.push(path);
        }
    }
    Ok(())
}
