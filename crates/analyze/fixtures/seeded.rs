// Seeded violations for the sst-analyze golden test — one per rule.
// This file lives under `fixtures/`, so the workspace walk skips it;
// the golden test lints it explicitly under the path
// `crates/monitor/src/codec.rs`, where the whole file is declared
// untrusted-decode surface and wire length math.
//
// The next comment is a deliberately malformed pragma (unknown rule):
// sst-analyze: allow(no-such-rule) reason="golden pragma-syntax seed"

fn decode_entry(buf: &[u8]) -> u32 {
    let first = buf.first().unwrap();
    let second = buf.get(1).expect("second byte");
    if buf.len() < 8 {
        panic!("short entry");
    }
    let third = buf[2];
    let n = get_u64_le(buf) as usize;
    let len = buf.len() as u32;
    u32::from(*first) + u32::from(*second) + u32::from(third) + len + u32::try_from(n).unwrap_or(0)
}

fn lock_things(m: &std::sync::Mutex<u32>, c: &std::sync::atomic::AtomicU64) -> u32 {
    let g = m.lock().unwrap();
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    *g
}

fn not_in_sys(p: *const u8) -> u8 {
    unsafe { p.read() }
}

fn get_u64_le(_buf: &[u8]) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    // Panics in test context are never findings.
    #[test]
    fn hidden() {
        let v: Option<u8> = None;
        let _ = v.unwrap();
        panic!("fine here");
    }
}
