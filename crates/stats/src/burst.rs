//! Exceedance (on-off) analysis of a traffic process.
//!
//! Section V-B of the paper defines `q(t) = 1{f(t) > a_th}` and observes
//! that the lengths of the 1-bursts of `q(t)` are heavy-tailed for
//! self-similar `f(t)` — the property that makes BSS's extra samples pay
//! off. This module extracts the bursts and measures their tail.

use crate::tailfit::{fit_pareto_ccdf, ParetoFit};

/// The binary exceedance process `q(t)` of Eq. (17).
pub fn exceedance_process(values: &[f64], threshold: f64) -> Vec<bool> {
    values.iter().map(|&x| x > threshold).collect()
}

/// Lengths of maximal runs of `true` in `q` (the 1-burst periods `B`).
pub fn burst_lengths(q: &[bool]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut run = 0usize;
    for &on in q {
        if on {
            run += 1;
        } else if run > 0 {
            out.push(run);
            run = 0;
        }
    }
    if run > 0 {
        out.push(run);
    }
    out
}

/// Lengths of maximal runs of `false` (the 0-burst / idle periods).
pub fn idle_lengths(q: &[bool]) -> Vec<usize> {
    let inverted: Vec<bool> = q.iter().map(|&b| !b).collect();
    burst_lengths(&inverted)
}

/// Summary of the exceedance structure of a process at one threshold.
#[derive(Clone, Debug)]
pub struct BurstAnalysis {
    /// The threshold used (`a_th`).
    pub threshold: f64,
    /// All 1-burst lengths, in time bins.
    pub bursts: Vec<usize>,
    /// All 0-burst lengths, in time bins.
    pub idles: Vec<usize>,
    /// Fraction of time above the threshold.
    pub duty_cycle: f64,
    /// Pareto fit of the 1-burst-length CCDF (`None` if too few bursts).
    pub tail_fit: Option<ParetoFit>,
}

impl BurstAnalysis {
    /// Analyzes `values` against `threshold = epsilon × mean(values)` —
    /// the paper's parameterization `a_th = X̄ · ε`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn at_relative_threshold(values: &[f64], epsilon: f64) -> BurstAnalysis {
        assert!(!values.is_empty(), "cannot analyze an empty process");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Self::at_threshold(values, mean * epsilon)
    }

    /// Analyzes `values` against an absolute threshold.
    pub fn at_threshold(values: &[f64], threshold: f64) -> BurstAnalysis {
        let q = exceedance_process(values, threshold);
        let bursts = burst_lengths(&q);
        let idles = idle_lengths(&q);
        let on_time: usize = bursts.iter().sum();
        let duty_cycle = if values.is_empty() {
            0.0
        } else {
            on_time as f64 / values.len() as f64
        };
        let burst_f: Vec<f64> = bursts.iter().map(|&b| b as f64).collect();
        let tail_fit = if bursts.len() >= 50 {
            fit_pareto_ccdf(&burst_f, 0.0)
        } else {
            None
        };
        BurstAnalysis {
            threshold,
            bursts,
            idles,
            duty_cycle,
            tail_fit,
        }
    }

    /// Mean 1-burst length in bins (`0` when there are no bursts).
    pub fn mean_burst_len(&self) -> f64 {
        if self.bursts.is_empty() {
            0.0
        } else {
            self.bursts.iter().sum::<usize>() as f64 / self.bursts.len() as f64
        }
    }

    /// The empirical burst-persistence probability of Eq. (18):
    /// `℘(τ) = P(B > τ | B ≥ τ)` estimated from the burst lengths.
    ///
    /// Returns `None` when no burst reaches length `tau`.
    pub fn persistence(&self, tau: usize) -> Option<f64> {
        let at_least: usize = self.bursts.iter().filter(|&&b| b >= tau).count();
        if at_least == 0 {
            return None;
        }
        let beyond: usize = self.bursts.iter().filter(|&&b| b > tau).count();
        Some(beyond as f64 / at_least as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_extraction_basics() {
        let q = [
            false, true, true, false, true, true, true, false, false, true,
        ];
        assert_eq!(burst_lengths(&q), vec![2, 3, 1]);
        assert_eq!(idle_lengths(&q), vec![1, 1, 2]);
    }

    #[test]
    fn all_on_and_all_off() {
        assert_eq!(burst_lengths(&[true; 5]), vec![5]);
        assert!(burst_lengths(&[false; 5]).is_empty());
        assert!(burst_lengths(&[]).is_empty());
    }

    #[test]
    fn exceedance_is_strict() {
        let q = exceedance_process(&[1.0, 2.0, 3.0], 2.0);
        assert_eq!(q, vec![false, false, true]);
    }

    #[test]
    fn duty_cycle_counts_on_fraction() {
        let vals = [0.0, 10.0, 10.0, 0.0, 10.0, 0.0, 0.0, 0.0];
        let a = BurstAnalysis::at_threshold(&vals, 5.0);
        assert!((a.duty_cycle - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(a.bursts, vec![2, 1]);
        assert!((a.mean_burst_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn relative_threshold_uses_mean() {
        let vals = [2.0, 2.0, 2.0, 10.0]; // mean 4
        let a = BurstAnalysis::at_relative_threshold(&vals, 0.5); // a_th = 2
        assert_eq!(a.threshold, 2.0);
        assert_eq!(a.bursts, vec![1]);
    }

    #[test]
    fn persistence_of_deterministic_bursts() {
        // All bursts have length 3: P(B > τ | B ≥ τ) = 1 for τ < 3, 0 at τ = 3.
        let mut q = Vec::new();
        for _ in 0..10 {
            q.extend_from_slice(&[true, true, true, false]);
        }
        let vals: Vec<f64> = q.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let a = BurstAnalysis::at_threshold(&vals, 0.5);
        assert_eq!(a.persistence(1), Some(1.0));
        assert_eq!(a.persistence(2), Some(1.0));
        assert_eq!(a.persistence(3), Some(0.0));
        assert_eq!(a.persistence(4), None);
    }

    #[test]
    fn pareto_bursts_are_detected_as_heavy() {
        // Construct q(t) with Pareto-distributed burst lengths directly.
        use crate::dist::{Distribution, Pareto};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = Pareto::new(1.3, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut vals = Vec::new();
        for _ in 0..5000 {
            let on = p.sample(&mut rng).ceil() as usize;
            vals.extend(std::iter::repeat_n(1.0, on.min(10_000)));
            vals.extend(std::iter::repeat_n(0.0, 3));
        }
        let a = BurstAnalysis::at_threshold(&vals, 0.5);
        let fit = a.tail_fit.expect("enough bursts for a fit");
        assert!((fit.alpha - 1.3).abs() < 0.35, "alpha={}", fit.alpha);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_process_panics() {
        BurstAnalysis::at_relative_threshold(&[], 0.5);
    }
}
