//! Probability distributions used by the traffic models and the BSS
//! analysis: the heavy-tailed Pareto family front and center, plus the
//! light-tailed comparators the paper contrasts against (Eq. 19 vs 20).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sst_sigproc::special::ln_choose;

/// A continuous distribution that can be sampled and interrogated
/// analytically.
///
/// Implementations are plain data (`Copy`) and deliberately small; the
/// trait is object-safe so generators can hold `Box<dyn Distribution>`.
pub trait Distribution: std::fmt::Debug {
    /// Draws one sample using the supplied RNG.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
    /// Analytic mean; `f64::INFINITY` when it diverges.
    fn mean(&self) -> f64;
    /// Analytic variance; `f64::INFINITY` when it diverges.
    fn variance(&self) -> f64;
    /// Complementary CDF `P(X > x)`.
    fn ccdf(&self, x: f64) -> f64;
    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;
}

/// Pareto distribution: `P(X > x) = (k/x)^α` for `x ≥ k`.
///
/// The paper's workhorse: on/off period lengths, traffic marginals, and
/// 1-burst lengths are all modeled Pareto with shape `α ∈ (1, 2)` (finite
/// mean, infinite variance — the regime where the law of large numbers is
/// too slow for unbiased sampling to work).
///
/// # Examples
///
/// ```
/// use sst_stats::dist::{Distribution, Pareto};
/// let p = Pareto::new(1.5, 2.0);
/// assert_eq!(p.mean(), 6.0);                 // kα/(α-1)
/// assert!(p.variance().is_infinite());        // α < 2
/// assert!((p.ccdf(4.0) - (0.5f64).powf(1.5)).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    alpha: f64,
    scale: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with shape `alpha` and scale (minimum
    /// value) `scale`.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `scale > 0`.
    pub fn new(alpha: f64, scale: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "shape must be positive, got {alpha}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive, got {scale}"
        );
        Pareto { alpha, scale }
    }

    /// Pareto with the given shape whose analytic mean equals `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1` (the mean diverges there) or `mean <= 0`.
    pub fn with_mean(alpha: f64, mean: f64) -> Self {
        assert!(alpha > 1.0, "mean is infinite for alpha <= 1");
        assert!(mean > 0.0, "mean must be positive");
        Pareto::new(alpha, mean * (alpha - 1.0) / alpha)
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter k (the smallest attainable value, the paper's ℓ).
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse transform on the CCDF: X = k · U^(-1/α).
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        self.scale * u.powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.scale * self.alpha / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            1.0
        } else {
            (self.scale / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
        self.scale * (1.0 - p).powf(-1.0 / self.alpha)
    }
}

/// Pareto truncated above at `cap`: heavy-tailed body with a hard upper
/// bound, used where physical limits (link speed) bound burst sizes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a Pareto on `[lo, hi]` with shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "shape must be positive");
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        BoundedPareto { alpha, lo, hi }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1: E[X] = ln(h/l) / (1/l − 1/h).
            return (h / l).ln() / (1.0 / l - 1.0 / h);
        }
        let num = a * (l.powf(1.0 - a) - h.powf(1.0 - a));
        let den = (a - 1.0) * (l.powf(-a) - h.powf(-a));
        num / den
    }

    fn variance(&self) -> f64 {
        // E[X²] − mean² via the truncated moment formula.
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        let norm = l.powf(-a) - h.powf(-a);
        let ex2 = if (a - 2.0).abs() < 1e-12 {
            2.0 * (h.ln() - l.ln()) / norm
        } else {
            a * (l.powf(2.0 - a) - h.powf(2.0 - a)) / ((a - 2.0) * norm)
        };
        ex2 - self.mean() * self.mean()
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            1.0
        } else if x >= self.hi {
            0.0
        } else {
            let la = self.lo.powf(-self.alpha);
            let ha = self.hi.powf(-self.alpha);
            (x.powf(-self.alpha) - ha) / (la - ha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - p * (la - ha)).powf(-1.0 / self.alpha)
    }
}

/// Exponential distribution with the given rate λ — the light-tailed
/// benchmark in the burst-persistence analysis (Eq. 19).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        -(1.0 - p).ln() / self.rate
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UniformDist {
    lo: f64,
    hi: f64,
}

impl UniformDist {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "need lo < hi");
        UniformDist { lo, hi }
    }
}

impl Distribution for UniformDist {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x < self.lo {
            1.0
        } else if x >= self.hi {
            0.0
        } else {
            (self.hi - x) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        self.lo + p * (self.hi - self.lo)
    }
}

/// Log-normal distribution (ln X ~ N(μ, σ²)): moderately-heavy-tailed
/// comparator for flow sizes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-stddev `sigma`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        LogNormal { mu, sigma }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            1.0 - sst_sigproc::special::normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        (self.mu + self.sigma * sst_sigproc::special::normal_quantile(p)).exp()
    }
}

/// Weibull distribution with shape `k` and scale `λ`; sub-exponential for
/// `k < 1`, used in generator cross-checks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "parameters must be positive");
        Weibull { shape, scale }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g2 = gamma_fn(1.0 + 2.0 / self.shape);
        let g1 = gamma_fn(1.0 + 1.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }
}

fn gamma_fn(x: f64) -> f64 {
    sst_sigproc::special::ln_gamma(x).exp()
}

/// Draws a Poisson(λ) count — Knuth's product method for small λ and a
/// split into halves for large λ (keeping the product method's exactness
/// without underflow).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson(rng: &mut dyn rand::RngCore, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be non-negative finite"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Split: Poisson(λ) = Poisson(λ/2) + Poisson(λ/2) (independent).
        let half = lambda / 2.0;
        return poisson(rng, half) + poisson(rng, half);
    }
    let limit = (-lambda).exp();
    let mut product = 1.0f64;
    let mut count = 0u64;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

/// Draws a standard normal — the workspace's default Gaussian source,
/// backed by the 256-layer ziggurat
/// ([`crate::ziggurat::standard_normal_ziggurat`]): ~one RNG word, one
/// multiply, and one compare per draw in the common case, versus the
/// `ln`/`sqrt`/`cos` chain Box-Muller pays on every draw.
///
/// Generic over the generator so the hot Monte-Carlo loops (the fGn
/// spectral synthesis draws `2N` of these per instance) monomorphize and
/// inline the RNG instead of paying virtual calls per draw; `?Sized`
/// keeps `&mut dyn RngCore` callers working.
///
/// The ziggurat is distribution-exact but consumes a different RNG
/// stream than the historical Box-Muller implementation; callers that
/// must reproduce the legacy value stream bit-for-bit (the determinism
/// suite, the seed-algorithm benchmarks) use
/// [`standard_normal_boxmuller`].
pub fn standard_normal<R: rand::RngCore + ?Sized>(rng: &mut R) -> f64 {
    crate::ziggurat::standard_normal_ziggurat(rng)
}

/// Draws a standard normal via Box-Muller (polar-free, uses two
/// uniforms) — the workspace's historical Gaussian path, kept verbatim
/// so the seed-determinism suite can pin the legacy algorithms
/// bit-for-bit. New code should prefer [`standard_normal`].
pub fn standard_normal_boxmuller<R: rand::RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-pmf of the paper's Eq. (9): `P(a = τ + i)` is negative binomial,
/// `C(τ+i-1, i) ρ^τ (1-ρ)^i` — the distribution of the original-process
/// lag corresponding to a sampled-process lag of `τ` under simple random
/// sampling with rate `ρ`.
///
/// Evaluated in log space because `C(τ+i-1, i)` overflows `f64` far below
/// the lags the paper plots (τ up to 2⁹).
///
/// # Panics
///
/// Panics unless `0 < rho < 1` and `tau >= 1`.
pub fn neg_binomial_ln_pmf(tau: u64, i: u64, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
    assert!(tau >= 1, "tau must be >= 1");
    ln_choose((tau + i - 1) as f64, i as f64) + tau as f64 * rho.ln() + i as f64 * (1.0 - rho).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn pareto_moments() {
        let p = Pareto::new(2.5, 1.0);
        assert!((p.mean() - 2.5 / 1.5).abs() < 1e-12);
        assert!(p.variance().is_finite());
        let heavy = Pareto::new(1.5, 1.0);
        assert!(heavy.variance().is_infinite());
        let very_heavy = Pareto::new(0.9, 1.0);
        assert!(very_heavy.mean().is_infinite());
    }

    #[test]
    fn pareto_with_mean_round_trips() {
        let p = Pareto::with_mean(1.5, 5.68);
        assert!((p.mean() - 5.68).abs() < 1e-12);
        assert!((p.scale() - 5.68 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_quantile_inverts_ccdf() {
        let p = Pareto::new(1.71, 3.0);
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let x = p.quantile(q);
            assert!((p.ccdf(x) - (1.0 - q)).abs() < 1e-12);
        }
    }

    #[test]
    fn pareto_sample_mean_converges_when_finite() {
        // α=2.5 has finite variance, so the LLN is fast.
        let p = Pareto::new(2.5, 1.0);
        let m = sample_mean(&p, 200_000, 42);
        assert!((m - p.mean()).abs() / p.mean() < 0.02, "m={m}");
    }

    #[test]
    fn pareto_samples_respect_scale() {
        let p = Pareto::new(1.2, 7.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 7.0);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let b = BoundedPareto::new(1.3, 1.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = b.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
        }
        assert!(b.mean() > 1.0 && b.mean() < 100.0);
        assert!(b.variance() > 0.0);
    }

    #[test]
    fn bounded_pareto_ccdf_endpoints() {
        let b = BoundedPareto::new(1.5, 2.0, 50.0);
        assert_eq!(b.ccdf(1.0), 1.0);
        assert_eq!(b.ccdf(60.0), 0.0);
        let mid = b.ccdf(10.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn exponential_moments_and_memoryless_ccdf() {
        let e = Exponential::new(0.5);
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 4.0);
        assert!((e.ccdf(2.0) - (-1.0f64).exp()).abs() < 1e-12);
        let m = sample_mean(&e, 100_000, 3);
        assert!((m - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_moments() {
        let u = UniformDist::new(2.0, 6.0);
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(u.ccdf(4.0), 0.5);
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let ln = LogNormal::new(0.0, 0.5);
        let m = sample_mean(&ln, 200_000, 11);
        assert!((m - ln.mean()).abs() / ln.mean() < 0.02);
    }

    #[test]
    fn weibull_exponential_special_case() {
        // k=1 reduces to Exponential(1/λ).
        let w = Weibull::new(1.0, 2.0);
        assert!((w.mean() - 2.0).abs() < 1e-9);
        assert!((w.ccdf(2.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn poisson_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        for &lambda in &[0.5, 4.0, 25.0, 120.0] {
            let n = 50_000;
            let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "λ={lambda} mean={mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(1.0),
                "λ={lambda} var={var}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn neg_binomial_pmf_sums_to_one() {
        let rho = 0.3;
        let tau = 5;
        let total: f64 = (0..2000)
            .map(|i| neg_binomial_ln_pmf(tau, i, rho).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn neg_binomial_matches_geometric_at_tau_one() {
        // τ=1: P(i) = ρ(1-ρ)^i.
        let rho = 0.25f64;
        for i in 0..20u64 {
            let want = (rho * (1.0 - rho).powi(i as i32)).ln();
            assert!((neg_binomial_ln_pmf(1, i, rho) - want).abs() < 1e-10);
        }
    }

    #[test]
    fn distributions_are_object_safe() {
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Pareto::new(1.5, 1.0)),
            Box::new(Exponential::new(1.0)),
            Box::new(UniformDist::new(0.0, 1.0)),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for d in &dists {
            let x = d.sample(&mut rng);
            assert!(x.is_finite());
        }
    }
}
