//! Analytic second-order models of self-similar processes.
//!
//! The paper works throughout with the asymptotic autocorrelation
//! `R(τ) ~ const·τ^{-β}`, `0 < β < 1`, and the Hurst parameter
//! `H = 1 − β/2`. This module holds that model and the conversions
//! between `H`, `β`, and the on/off shape parameter `α = β + 1`.

use serde::{Deserialize, Serialize};

/// Converts a correlation decay exponent β ∈ (0, 1) to the Hurst
/// parameter `H = 1 − β/2 ∈ (1/2, 1)`.
///
/// # Panics
///
/// Panics if β is outside `(0, 1)`.
pub fn hurst_from_beta(beta: f64) -> f64 {
    assert!(
        beta > 0.0 && beta < 1.0,
        "beta must be in (0,1), got {beta}"
    );
    1.0 - beta / 2.0
}

/// Converts a Hurst parameter `H ∈ (1/2, 1)` to `β = 2 − 2H`.
///
/// # Panics
///
/// Panics if H is outside `(1/2, 1)`.
pub fn beta_from_hurst(h: f64) -> f64 {
    assert!(h > 0.5 && h < 1.0, "H must be in (1/2,1), got {h}");
    2.0 - 2.0 * h
}

/// On/off heavy-tail shape from the Hurst parameter: `α = 3 − 2H`
/// (equivalently `α = β + 1`), per the Taqqu-Willinger-Sherman limit the
/// paper's ns-2 setup relies on.
pub fn onoff_alpha_from_hurst(h: f64) -> f64 {
    beta_from_hurst(h) + 1.0
}

/// Hurst parameter produced by on/off sources with tail shape
/// `α ∈ (1, 2)`: `H = (3 − α)/2`.
///
/// # Panics
///
/// Panics if α is outside `(1, 2)`.
pub fn hurst_from_onoff_alpha(alpha: f64) -> f64 {
    assert!(
        alpha > 1.0 && alpha < 2.0,
        "alpha must be in (1,2), got {alpha}"
    );
    (3.0 - alpha) / 2.0
}

/// The asymptotic power-law autocorrelation model `R(τ) = τ^{-β}` for
/// `τ ≥ 1`, with `R(0) = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerLawAcf {
    beta: f64,
}

impl PowerLawAcf {
    /// Creates the model with decay exponent β.
    ///
    /// # Panics
    ///
    /// Panics if β is outside `(0, 1)`.
    pub fn new(beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta < 1.0,
            "beta must be in (0,1), got {beta}"
        );
        PowerLawAcf { beta }
    }

    /// Builds the model from a Hurst parameter.
    pub fn from_hurst(h: f64) -> Self {
        PowerLawAcf::new(beta_from_hurst(h))
    }

    /// The decay exponent β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The implied Hurst parameter.
    pub fn hurst(&self) -> f64 {
        hurst_from_beta(self.beta)
    }

    /// `R(τ)` at integer lag (τ as f64; `R(0) = 1`).
    pub fn at(&self, tau: f64) -> f64 {
        if tau <= 0.0 {
            1.0
        } else if tau < 1.0 {
            // Interpolate smoothly between R(0)=1 and R(1)=1; the model is
            // asymptotic, sub-unit lags are clamped.
            1.0
        } else {
            tau.powf(-self.beta)
        }
    }

    /// The second difference `δτ = R(τ+1) + R(τ−1) − 2R(τ)` of Eq. (16) —
    /// Cochran's convexity condition. For the asymptotic power-law model
    /// this is positive for every `τ ≥ 2` (where all three lags sit on the
    /// convex power law); at `τ = 1` the value involves `R(0) = 1`, where
    /// the asymptotic model is not meaningful — use [`FgnAcf::delta_tau`]
    /// for an exact-ACF check that covers `τ = 1` too.
    pub fn delta_tau(&self, tau: u64) -> f64 {
        let t = tau as f64;
        self.at(t + 1.0) + self.at(t - 1.0) - 2.0 * self.at(t)
    }

    /// Vector of `R(τ)` for `τ = 0..len` (the checker's discretized model).
    pub fn table(&self, len: usize) -> Vec<f64> {
        (0..len).map(|tau| self.at(tau as f64)).collect()
    }
}

/// The exact autocorrelation of fractional Gaussian noise:
/// `ρ(k) = (|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H}) / 2`.
///
/// Unlike the asymptotic [`PowerLawAcf`], this is a genuine positive
/// semidefinite ACF with `ρ(0) = 1`; it is what the Davies-Harte generator
/// embeds, and it satisfies Cochran's condition at **all** lags including
/// `τ = 1` when `H > 1/2`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FgnAcf {
    hurst: f64,
}

impl FgnAcf {
    /// Creates the fGn ACF with Hurst parameter `h ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is outside `(0, 1)`.
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0 && h < 1.0, "H must be in (0,1), got {h}");
        FgnAcf { hurst: h }
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// `ρ(k)` at integer lag `k ≥ 0`.
    pub fn at(&self, k: u64) -> f64 {
        let h2 = 2.0 * self.hurst;
        let k = k as f64;
        0.5 * ((k + 1.0).powf(h2) - 2.0 * k.powf(h2) + (k - 1.0).abs().powf(h2))
    }

    /// Autocovariance table `σ²·ρ(k)` for `k = 0..len` with unit variance —
    /// the first row of the circulant matrix Davies-Harte embeds.
    pub fn table(&self, len: usize) -> Vec<f64> {
        (0..len as u64).map(|k| self.at(k)).collect()
    }

    /// Cochran's second difference `δτ` under the exact ACF (valid at all
    /// `τ ≥ 1`).
    pub fn delta_tau(&self, tau: u64) -> f64 {
        self.at(tau + 1) + self.at(tau.saturating_sub(1)) - 2.0 * self.at(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        for beta in [0.1, 0.4, 0.8, 0.99] {
            let h = hurst_from_beta(beta);
            assert!((beta_from_hurst(h) - beta).abs() < 1e-12);
        }
        for h in [0.55, 0.62, 0.75, 0.9] {
            let a = onoff_alpha_from_hurst(h);
            assert!((hurst_from_onoff_alpha(a) - h).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_landmark_values() {
        // H = 0.8 (the ns-2 setup) comes from α = 1.4.
        assert!((onoff_alpha_from_hurst(0.8) - 1.4).abs() < 1e-12);
        // H = 0.9 corresponds to α = 1.2 (the Crovella-Lipsky 10^22 case).
        assert!((hurst_from_onoff_alpha(1.2) - 0.9).abs() < 1e-12);
        // H = 0.75 corresponds to α = 1.5.
        assert!((hurst_from_onoff_alpha(1.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn acf_values() {
        let r = PowerLawAcf::new(0.5);
        assert_eq!(r.at(0.0), 1.0);
        assert_eq!(r.at(1.0), 1.0);
        assert!((r.at(4.0) - 0.5).abs() < 1e-12);
        assert!((r.hurst() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn acf_is_non_summable_in_spirit() {
        // Partial sums grow without visible bound (LRD): compare two
        // horizons.
        let r = PowerLawAcf::new(0.3);
        let s1: f64 = (1..10_000u64).map(|t| r.at(t as f64)).sum();
        let s2: f64 = (1..100_000u64).map(|t| r.at(t as f64)).sum();
        assert!(s2 > 1.5 * s1);
    }

    #[test]
    fn delta_tau_is_positive_for_all_beta() {
        // Figure 4 of the paper: convexity of τ^{-β} for τ ≥ 2.
        for beta in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = PowerLawAcf::new(beta);
            for tau in 2..1000u64 {
                assert!(r.delta_tau(tau) >= 0.0, "beta={beta} tau={tau}");
            }
        }
    }

    #[test]
    fn fgn_delta_tau_positive_everywhere_for_lrd() {
        // Exact fGn ACF covers τ = 1 as well (H > 1/2).
        for h in [0.55, 0.62, 0.75, 0.8, 0.95] {
            let r = FgnAcf::new(h);
            for tau in 1..500u64 {
                assert!(
                    r.delta_tau(tau) >= -1e-15,
                    "H={h} tau={tau} δ={}",
                    r.delta_tau(tau)
                );
            }
        }
    }

    #[test]
    fn fgn_acf_landmarks() {
        let r = FgnAcf::new(0.8);
        assert!((r.at(0) - 1.0).abs() < 1e-12);
        // ρ(1) = 2^{2H-1} − 1.
        assert!((r.at(1) - (2f64.powf(0.6) - 1.0)).abs() < 1e-12);
        // Independence for H = 1/2.
        let white = FgnAcf::new(0.5);
        for k in 1..10 {
            assert!(white.at(k).abs() < 1e-12);
        }
    }

    #[test]
    fn fgn_acf_decays_like_power_law() {
        // ρ(k) ~ H(2H−1) k^{2H−2}: the log-log slope at large k equals
        // 2H−2 = −β.
        let h = 0.8;
        let r = FgnAcf::new(h);
        let ks: Vec<f64> = (64..512u64).map(|k| k as f64).collect();
        let rs: Vec<f64> = (64..512u64).map(|k| r.at(k)).collect();
        let (slope, _, _) = sst_sigproc::regress::power_law_fit(&ks, &rs);
        assert!((slope - (2.0 * h - 2.0)).abs() < 0.01, "slope={slope}");
    }

    #[test]
    fn table_matches_pointwise() {
        let r = PowerLawAcf::new(0.2);
        let t = r.table(10);
        assert_eq!(t.len(), 10);
        for (tau, &v) in t.iter().enumerate() {
            assert_eq!(v, r.at(tau as f64));
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn invalid_beta_rejected() {
        PowerLawAcf::new(1.5);
    }
}
