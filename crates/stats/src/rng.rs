//! Seeded RNG helpers.
//!
//! Every stochastic component in the workspace takes an explicit `u64`
//! seed so figure runs are reproducible; this module centralizes RNG
//! construction and deterministic seed derivation (so a parent seed can
//! spawn independent child streams for, e.g., parallel sampling
//! instances).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Constructs the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index using
/// SplitMix64 — child streams are decorrelated even for adjacent indices.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let parent = 42;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(parent, stream)),
                "collision at {stream}"
            );
        }
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
    }
}
