//! Descriptive statistics: batch summaries and streaming (Welford)
//! accumulation.
//!
//! The online-tuned BSS sampler keeps a running mean of everything it has
//! sampled so far (the paper's `E(Y_i)`); [`RunningStats`] is that
//! accumulator, numerically stable for the millions of updates a long
//! trace produces.

/// Batch summary of a data set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by `n`).
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "cannot summarize an empty data set");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sst_stats::RunningStats;
/// let mut rs = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     rs.push(x);
/// }
/// assert_eq!(rs.mean(), 2.5);
/// assert_eq!(rs.count(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` before the first observation).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Decomposes the accumulator into its raw state
    /// `(n, mean, m2, min, max)` — the exact Welford internals, so a
    /// serializer can round-trip an accumulator bit-for-bit (variance
    /// reconstructed from getters would not be).
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`RunningStats::raw_parts`] output.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        RunningStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `data` by linear interpolation of the
/// order statistics (type-7, the R/NumPy default).
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median, a shorthand for `quantile(data, 0.5)`.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 4.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        Summary::of(&[]);
    }

    #[test]
    fn running_matches_batch() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        let s = Summary::of(&data);
        assert!((rs.mean() - s.mean).abs() < 1e-10);
        assert!((rs.variance() - s.variance).abs() < 1e-8);
        assert_eq!(rs.min(), Some(s.min));
        assert_eq!(rs.max(), Some(s.max));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..73] {
            left.push(x);
        }
        for &x in &data[73..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(median(&data), 2.5);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn running_stats_single_value() {
        let mut rs = RunningStats::new();
        rs.push(42.0);
        assert_eq!(rs.mean(), 42.0);
        assert_eq!(rs.variance(), 0.0);
    }
}
