//! The `TimeSeries` container: a traffic process `f(t)` measured at a fixed
//! time granularity, plus the block-aggregation operator of Eq. (1).

use serde::{Deserialize, Serialize};

/// A real-valued time series at fixed granularity — the paper's `f(t)`.
///
/// Values are whatever the measurement is (bytes/s, packets/bin, …); `dt`
/// records the bin width in seconds so packet traces and synthetic traces
/// bin to comparable processes.
///
/// # Examples
///
/// ```
/// use sst_stats::TimeSeries;
/// let ts = TimeSeries::from_values(1.0, vec![2.0, 4.0, 6.0, 8.0]);
/// assert_eq!(ts.mean(), 5.0);
/// let agg = ts.aggregate(2);
/// assert_eq!(agg.values(), &[3.0, 7.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    dt: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw values with the given bin width `dt`
    /// (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or is not finite.
    pub fn from_values(dt: f64, values: Vec<f64>) -> Self {
        assert!(
            dt > 0.0 && dt.is_finite(),
            "dt must be a positive finite bin width"
        );
        TimeSeries { dt, values }
    }

    /// Bin width in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Total duration covered, in seconds.
    pub fn duration(&self) -> f64 {
        self.dt * self.values.len() as f64
    }

    /// Sample mean; `0.0` for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population variance (divides by `n`); `0.0` for series shorter
    /// than 2.
    pub fn variance(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.values.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / n as f64
    }

    /// Largest value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Smallest value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Smallest strictly positive value (`None` when there is none) — the
    /// empirical analogue of the Pareto scale parameter ℓ.
    pub fn min_positive(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|&x| x > 0.0)
            .reduce(f64::min)
    }

    /// The aggregated series `f^(m)(τ) = (1/m) Σ_{i=(τ-1)m+1}^{τm} f(i)`
    /// of Eq. (1): the time axis is divided into blocks of length `m` and
    /// each block is replaced by its average. A trailing partial block is
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn aggregate(&self, m: usize) -> TimeSeries {
        assert!(m >= 1, "aggregation level must be >= 1");
        if m == 1 {
            return self.clone();
        }
        let blocks = self.values.len() / m;
        let mut out = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let chunk = &self.values[b * m..(b + 1) * m];
            out.push(chunk.iter().sum::<f64>() / m as f64);
        }
        TimeSeries {
            dt: self.dt * m as f64,
            values: out,
        }
    }

    /// A view of the prefix of length `n` (clamped to the series length).
    pub fn truncated(&self, n: usize) -> TimeSeries {
        TimeSeries {
            dt: self.dt,
            values: self.values[..n.min(self.values.len())].to_vec(),
        }
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for TimeSeries {
    /// Collects values into a series with unit bin width.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries {
            dt: 1.0,
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.mean(), 2.5);
        assert!((ts.variance() - 1.25).abs() < 1e-12);
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(4.0));
    }

    #[test]
    fn empty_series_is_benign() {
        let ts = TimeSeries::from_values(0.5, vec![]);
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.variance(), 0.0);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.min_positive(), None);
    }

    #[test]
    fn aggregation_matches_eq_1() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        let agg = ts.aggregate(2);
        assert_eq!(agg.values(), &[2.0, 6.0]); // trailing 9.0 dropped
        assert_eq!(agg.dt(), 2.0);
    }

    #[test]
    fn aggregation_preserves_mean_of_kept_blocks() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 17) as f64).collect();
        let ts = TimeSeries::from_values(0.001, vals);
        for m in [1usize, 2, 5, 10, 100] {
            let agg = ts.aggregate(m);
            let kept = &ts.values()[..agg.len() * m];
            let kept_mean = kept.iter().sum::<f64>() / kept.len() as f64;
            assert!((agg.mean() - kept_mean).abs() < 1e-12, "m={m}");
        }
    }

    #[test]
    fn aggregate_level_one_is_identity() {
        let ts = TimeSeries::from_values(2.0, vec![1.0, 2.0]);
        assert_eq!(ts.aggregate(1), ts);
    }

    #[test]
    fn min_positive_skips_zeros() {
        let ts = TimeSeries::from_values(1.0, vec![0.0, 5.0, 0.0, 2.0]);
        assert_eq!(ts.min_positive(), Some(2.0));
    }

    #[test]
    fn duration_accounts_for_dt() {
        let ts = TimeSeries::from_values(0.001, vec![0.0; 2_400_000]);
        assert!((ts.duration() - 2400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn zero_dt_rejected() {
        TimeSeries::from_values(0.0, vec![1.0]);
    }

    #[test]
    fn truncated_clamps() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(ts.truncated(2).values(), &[1.0, 2.0]);
        assert_eq!(ts.truncated(99).len(), 3);
    }
}
