//! # sst-stats — statistics substrate
//!
//! Time-series containers, heavy-tailed distributions, empirical
//! distribution functions, tail-index estimation, and exceedance-burst
//! analysis for the He & Hou (ICDCS 2005) reproduction.
//!
//! ## Contents
//!
//! * [`series`] — [`TimeSeries`], the paper's `f(t)`, with the Eq. (1)
//!   block-aggregation operator.
//! * [`describe`] — batch and streaming (Welford) summaries.
//! * [`dist`] — Pareto / bounded-Pareto / exponential / uniform /
//!   log-normal / Weibull, plus the Eq. (9) negative-binomial log-pmf.
//! * [`ecdf`] — empirical CDF/CCDF with log-spaced curves (Figs. 7-8).
//! * [`tailfit`] — Pareto tail fitting (log-log LS + Hill).
//! * [`burst`] — the exceedance process q(t) and 1-burst statistics
//!   (§V-B).
//! * [`model`] — `R(τ) = τ^{-β}` autocorrelation model, H/β/α
//!   conversions, Cochran's δτ.
//! * [`rng`] — seeded RNG construction and seed derivation.
//! * [`ziggurat`] — transcendental-free standard-normal sampling for
//!   the Monte-Carlo hot paths.
//!
//! ## Example
//!
//! ```
//! use sst_stats::{dist::{Distribution, Pareto}, TimeSeries};
//! use sst_stats::rng::rng_from_seed;
//!
//! let pareto = Pareto::with_mean(1.5, 5.68);
//! let mut rng = rng_from_seed(7);
//! let values: Vec<f64> = (0..1024).map(|_| pareto.sample(&mut rng)).collect();
//! let ts = TimeSeries::from_values(0.001, values);
//! assert!(ts.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod model;
pub mod rng;
pub mod series;
pub mod stable;
pub mod tailfit;
pub mod ziggurat;

pub use describe::{RunningStats, Summary};
pub use ecdf::Ecdf;
pub use model::PowerLawAcf;
pub use series::TimeSeries;
pub use stable::Stable;
pub use tailfit::ParetoFit;
pub use ziggurat::fill_standard_normal;

#[cfg(test)]
mod proptests {
    use crate::describe::{quantile, RunningStats, Summary};
    use crate::dist::{Distribution, Exponential, Pareto, UniformDist};
    use crate::ecdf::Ecdf;
    use crate::rng::rng_from_seed;
    use crate::series::TimeSeries;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn aggregation_reduces_variance(
            vals in proptest::collection::vec(0.0f64..100.0, 64..256),
            m in 2usize..8,
        ) {
            let ts = TimeSeries::from_values(1.0, vals);
            let agg = ts.aggregate(m);
            if agg.len() >= 2 {
                // Averaging within blocks cannot increase variance beyond
                // the original population variance (plus numerical slack).
                prop_assert!(agg.variance() <= ts.variance() + 1e-9);
            }
        }

        #[test]
        fn running_stats_match_summary(vals in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut rs = RunningStats::new();
            for &v in &vals {
                rs.push(v);
            }
            let s = Summary::of(&vals);
            prop_assert!((rs.mean() - s.mean).abs() < 1e-6);
            prop_assert!((rs.variance() - s.variance).abs() < 1e-4);
        }

        #[test]
        fn ecdf_is_monotone(vals in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
            let e = Ecdf::new(&vals);
            let grid: Vec<f64> = (-110..=110).map(|i| i as f64).collect();
            for w in grid.windows(2) {
                prop_assert!(e.cdf(w[0]) <= e.cdf(w[1]));
            }
            prop_assert_eq!(e.cdf(150.0), 1.0);
            prop_assert_eq!(e.cdf(-150.0), 0.0);
        }

        #[test]
        fn quantiles_are_monotone(vals in proptest::collection::vec(-50.0f64..50.0, 2..100)) {
            let q25 = quantile(&vals, 0.25);
            let q50 = quantile(&vals, 0.5);
            let q75 = quantile(&vals, 0.75);
            prop_assert!(q25 <= q50 && q50 <= q75);
        }

        #[test]
        fn pareto_samples_above_scale(alpha in 1.01f64..3.0, scale in 0.1f64..10.0, seed in 0u64..1000) {
            let p = Pareto::new(alpha, scale);
            let mut rng = rng_from_seed(seed);
            for _ in 0..64 {
                prop_assert!(p.sample(&mut rng) >= scale);
            }
        }

        #[test]
        fn quantile_inverts_ccdf_for_all_dists(p in 0.01f64..0.99) {
            let dists: Vec<Box<dyn Distribution>> = vec![
                Box::new(Pareto::new(1.5, 2.0)),
                Box::new(Exponential::new(0.7)),
                Box::new(UniformDist::new(1.0, 5.0)),
            ];
            for d in &dists {
                let x = d.quantile(p);
                prop_assert!((d.ccdf(x) - (1.0 - p)).abs() < 1e-9);
            }
        }
    }
}
