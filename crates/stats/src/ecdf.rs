//! Empirical distribution functions.
//!
//! Figures 7 and 8 of the paper are empirical CCDFs on log-log axes with a
//! Pareto line fitted through the tail; this module produces exactly those
//! curves.

/// An empirical distribution built from a sorted copy of the data.
///
/// # Examples
///
/// ```
/// use sst_stats::ecdf::Ecdf;
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.ccdf(2.5), 0.5);
/// assert_eq!(e.cdf(4.0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the empirical distribution of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot build an ECDF from no data");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Ecdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when built from no data (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Empirical CDF: fraction of observations `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Empirical CCDF: fraction of observations `> x`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The sorted observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CCDF on a log-spaced grid of `n` points between the
    /// smallest positive observation and the maximum, returning `(x, ccdf)`
    /// pairs with zero-probability tail points dropped — ready for a
    /// log-log plot or a tail fit.
    pub fn ccdf_curve_log(&self, n: usize) -> Vec<(f64, f64)> {
        let lo = match self.sorted.iter().copied().find(|&v| v > 0.0) {
            Some(v) => v,
            None => return Vec::new(),
        };
        let hi = *self.sorted.last().expect("non-empty");
        if hi <= lo || n < 2 {
            return vec![(lo, self.ccdf(lo))];
        }
        sst_sigproc::numeric::logspace(lo, hi, n)
            .into_iter()
            .map(|x| (x, self.ccdf(x)))
            .filter(|&(_, p)| p > 0.0)
            .collect()
    }

    /// Empirical quantile (type-1, inverse of the step CDF).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_and_ccdf_are_complementary() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        for x in [0.0, 1.5, 3.0, 10.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn cdf_step_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(2.5), 0.75);
        assert_eq!(e.cdf(3.0), 1.0);
    }

    #[test]
    fn quantile_hits_order_statistics() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
        assert_eq!(e.quantile(0.0), 10.0);
    }

    #[test]
    fn log_curve_is_monotone_decreasing() {
        let data: Vec<f64> = (1..1000).map(|i| i as f64).collect();
        let e = Ecdf::new(&data);
        let curve = e.ccdf_curve_log(50);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-15);
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn log_curve_handles_all_nonpositive() {
        let e = Ecdf::new(&[0.0, -1.0, 0.0]);
        assert!(e.ccdf_curve_log(10).is_empty());
    }

    #[test]
    fn log_curve_on_pareto_data_is_straight() {
        // CCDF of exact Pareto quantiles should fit slope -α in log-log.
        let alpha = 1.5;
        let data: Vec<f64> = (1..=2000)
            .map(|i| {
                let u = (i as f64 - 0.5) / 2000.0;
                (1.0 - u).powf(-1.0 / alpha)
            })
            .collect();
        let e = Ecdf::new(&data);
        let curve = e.ccdf_curve_log(40);
        let xs: Vec<f64> = curve.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = curve.iter().map(|p| p.1).collect();
        let (slope, _, fit) = sst_sigproc::regress::power_law_fit(&xs, &ys);
        assert!((slope + alpha).abs() < 0.1, "slope={slope}");
        assert!(fit.r_squared > 0.98);
    }
}
