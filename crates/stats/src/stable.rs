//! α-stable distributions — the limit law behind the paper's Eq. 32-33:
//! for heavy-tailed traffic, `V_n = N^{1−1/α}(X̄_s − X̄)` converges to an
//! α-stable distribution, which is why the sampled-mean deficit shrinks
//! like `η ∼ N^{1/α−1}` (Eq. 35) instead of the `N^{−1/2}` of the CLT.
//!
//! Sampling uses the Chambers-Mallows-Stuck construction; there is no
//! closed-form CDF, so the type exposes the exact asymptotic tail
//! instead of implementing the generic [`crate::dist::Distribution`]
//! trait (whose `ccdf`/`quantile` contract demands exactness).

use rand::Rng;
use std::f64::consts::{FRAC_PI_2, PI};

/// A stable distribution `S(α, β; γ, δ)` in the 1-parameterization
/// (Samorodnitsky-Taqqu): characteristic exponent `α ∈ (0, 2]`, skewness
/// `β ∈ [−1, 1]`, scale `γ > 0`, location `δ`.
///
/// # Examples
///
/// ```
/// use sst_stats::stable::Stable;
/// use sst_stats::rng::rng_from_seed;
///
/// // The totally skewed α = 1.5 law that governs Pareto(1.5) sums.
/// let s = Stable::new(1.5, 1.0, 1.0, 0.0).expect("valid parameters");
/// let mut rng = rng_from_seed(7);
/// let x = s.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stable {
    alpha: f64,
    beta: f64,
    scale: f64,
    location: f64,
}

/// Error for invalid stable parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidStableError {
    what: &'static str,
}

impl std::fmt::Display for InvalidStableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.what)
    }
}

impl std::error::Error for InvalidStableError {}

impl Stable {
    /// Creates a stable law.
    ///
    /// # Errors
    ///
    /// Rejects `α ∉ (0, 2]`, `β ∉ [−1, 1]`, or `γ <= 0`.
    pub fn new(
        alpha: f64,
        beta: f64,
        scale: f64,
        location: f64,
    ) -> Result<Self, InvalidStableError> {
        if !(alpha > 0.0 && alpha <= 2.0) {
            return Err(InvalidStableError {
                what: "alpha must lie in (0, 2]",
            });
        }
        if !(-1.0..=1.0).contains(&beta) {
            return Err(InvalidStableError {
                what: "beta must lie in [-1, 1]",
            });
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(InvalidStableError {
                what: "scale must be positive",
            });
        }
        if !location.is_finite() {
            return Err(InvalidStableError {
                what: "location must be finite",
            });
        }
        Ok(Stable {
            alpha,
            beta,
            scale,
            location,
        })
    }

    /// The characteristic exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The skewness β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The scale γ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The location δ (the mean, when `α > 1`).
    pub fn location(&self) -> f64 {
        self.location
    }

    /// Mean: `δ` for `α > 1`, undefined (NaN) otherwise.
    pub fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.location
        } else {
            f64::NAN
        }
    }

    /// Draws one sample (Chambers-Mallows-Stuck).
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let a = self.alpha;
        let b = self.beta;
        // V ~ U(−π/2, π/2), W ~ Exp(1).
        let v = (rng.gen::<f64>() - 0.5) * PI;
        let w = {
            let u: f64 = loop {
                let u = rng.gen::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            -u.ln()
        };
        let x = if (a - 1.0).abs() < 1e-12 {
            // α = 1 branch.
            let t = FRAC_PI_2 + b * v;
            (2.0 / PI) * (t * v.tan() - b * ((FRAC_PI_2 * w * v.cos()) / t).ln())
        } else if a == 2.0 {
            // Gaussian limit: S(2, ·; γ, δ) = N(δ, 2γ²); β is irrelevant.
            2.0 * w.sqrt() * v.sin()
        } else {
            let half_pi_a = FRAC_PI_2 * a;
            let b_ab = (b * half_pi_a.tan()).atan() / a;
            let s_ab = (1.0 + b * b * half_pi_a.tan().powi(2)).powf(0.5 / a);
            let t = a * (v + b_ab);
            s_ab * (t.sin() / v.cos().powf(1.0 / a))
                * ((v - t).cos().max(f64::MIN_POSITIVE) / w).powf((1.0 - a) / a)
        };
        self.location + self.scale * x
    }

    /// The exact right-tail asymptote `P(X > x) ~ C_α·(1+β)/2·(γ/x)^α`
    /// for `α < 2`, with `C_α = sin(πα/2)·Γ(α)/π · 2 … ` in the standard
    /// form `C_α = (1−α)/(Γ(2−α)·cos(πα/2))` for α ≠ 1.
    ///
    /// Returns 0 for `α = 2` (the Gaussian tail is lighter than any
    /// power law).
    ///
    /// # Panics
    ///
    /// Panics unless `x > 0` (the asymptote only makes sense deep in the
    /// right tail).
    pub fn tail_ccdf_asymptotic(&self, x: f64) -> f64 {
        assert!(x > 0.0, "tail asymptote needs x > 0");
        if self.alpha >= 2.0 {
            return 0.0;
        }
        let a = self.alpha;
        let c_a = if (a - 1.0).abs() < 1e-9 {
            2.0 / PI
        } else {
            (1.0 - a) / (sst_sigproc::special::ln_gamma(2.0 - a).exp() * (FRAC_PI_2 * a).cos())
        };
        c_a.abs() * (1.0 + self.beta) / 2.0 * (self.scale / x).powf(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn draw(s: &Stable, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| s.sample(&mut rng)).collect()
    }

    fn quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() as f64 - 1.0) * q) as usize]
    }

    #[test]
    fn parameter_validation() {
        assert!(Stable::new(0.0, 0.0, 1.0, 0.0).is_err());
        assert!(Stable::new(2.1, 0.0, 1.0, 0.0).is_err());
        assert!(Stable::new(1.5, 1.5, 1.0, 0.0).is_err());
        assert!(Stable::new(1.5, 0.0, 0.0, 0.0).is_err());
        assert!(Stable::new(1.5, -1.0, 2.0, 3.0).is_ok());
    }

    #[test]
    fn alpha_two_is_gaussian() {
        let s = Stable::new(2.0, 0.0, 1.0, 5.0).unwrap();
        let xs = draw(&s, 100_000, 3);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        // S(2, ·; γ, δ) = N(δ, 2γ²).
        assert!((var - 2.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn stability_property() {
        // (X₁ + X₂) / 2^{1/α} has the same distribution (β = 0, δ = 0):
        // compare central quantiles of n scaled pair-sums vs n draws.
        let a = 1.5;
        let s = Stable::new(a, 0.0, 1.0, 0.0).unwrap();
        let xs = draw(&s, 60_000, 1);
        let ys = draw(&s, 60_000, 2);
        let mut sums: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x + y) / 2f64.powf(1.0 / a))
            .collect();
        sums.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut plain = draw(&s, 60_000, 3);
        plain.sort_by(|p, q| p.partial_cmp(q).unwrap());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let qa = quantile(&sums, q);
            let qb = quantile(&plain, q);
            assert!(
                (qa - qb).abs() < 0.06,
                "quantile {q}: scaled-sum {qa:.4} vs plain {qb:.4}"
            );
        }
    }

    #[test]
    fn tail_index_matches_alpha() {
        // Hill-style check: the ratio of extreme quantiles follows the
        // power law q(1−u/10)/q(1−u) ≈ 10^{1/α}.
        for &a in &[1.3, 1.7] {
            let s = Stable::new(a, 0.0, 1.0, 0.0).unwrap();
            let mut xs = draw(&s, 400_000, 11);
            xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
            let q1 = quantile(&xs, 1.0 - 1e-3);
            let q2 = quantile(&xs, 1.0 - 1e-4);
            let implied_alpha = (10f64).ln() / (q2 / q1).ln();
            assert!(
                (implied_alpha - a).abs() < 0.25,
                "α = {a}: implied {implied_alpha:.3}"
            );
        }
    }

    #[test]
    fn total_skew_shifts_extremes_to_the_right() {
        let s = Stable::new(1.4, 1.0, 1.0, 0.0).unwrap();
        let xs = draw(&s, 100_000, 9);
        let big_right = xs.iter().filter(|&&x| x > 20.0).count();
        let big_left = xs.iter().filter(|&&x| x < -20.0).count();
        assert!(
            big_right > 10 * (big_left + 1),
            "β = 1 should put extremes on the right: {big_right} vs {big_left}"
        );
    }

    #[test]
    fn tail_asymptote_tracks_empirical_tail() {
        let s = Stable::new(1.5, 0.0, 1.0, 0.0).unwrap();
        let xs = draw(&s, 1_000_000, 21);
        for &x in &[20.0, 50.0] {
            let emp = xs.iter().filter(|&&v| v > x).count() as f64 / xs.len() as f64;
            let asy = s.tail_ccdf_asymptotic(x);
            assert!(
                (emp / asy - 1.0).abs() < 0.4,
                "x = {x}: empirical {emp:.3e} vs asymptote {asy:.3e}"
            );
        }
    }

    #[test]
    fn alpha_one_branch_is_finite_and_centered() {
        let s = Stable::new(1.0, 0.0, 1.0, 0.0).unwrap();
        let xs = draw(&s, 50_000, 5);
        assert!(xs.iter().all(|x| x.is_finite()));
        // Symmetric Cauchy: median ≈ 0.
        let mut sorted = xs;
        sorted.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let med = quantile(&sorted, 0.5);
        assert!(med.abs() < 0.05, "median {med}");
    }

    #[test]
    fn pareto_sums_obey_the_stable_scaling_law() {
        // The paper's Eq. 32-33: V_n = N^{1−1/α}(X̄_s − X̄) converges in
        // distribution, so its spread must be N-invariant — unlike the
        // CLT's N^{1/2} normalization, which would shrink it. This is
        // the mechanism behind η ∼ N^{1/α−1} (Eq. 35).
        use crate::dist::{Distribution, Pareto};
        let a = 1.5;
        let p = Pareto::new(a, 1.0);
        let truth = p.mean();
        let spread = |n: usize, seed: u64| {
            let mut rng = rng_from_seed(seed);
            let mut vns: Vec<f64> = (0..400)
                .map(|_| {
                    let m = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
                    (n as f64).powf(1.0 - 1.0 / a) * (m - truth)
                })
                .collect();
            vns.sort_by(|x, y| x.partial_cmp(y).unwrap());
            quantile(&vns, 0.75) - quantile(&vns, 0.25)
        };
        let s_small = spread(1_000, 1);
        let s_large = spread(10_000, 2);
        let ratio = s_large / s_small;
        assert!(
            (0.5..2.0).contains(&ratio),
            "stable-normalized IQR should be N-invariant, ratio {ratio:.3} \
             (small {s_small:.4}, large {s_large:.4})"
        );
    }

    #[test]
    fn mean_defined_only_above_one() {
        assert_eq!(Stable::new(1.5, 0.0, 1.0, 7.0).unwrap().mean(), 7.0);
        assert!(Stable::new(0.8, 0.0, 1.0, 7.0).unwrap().mean().is_nan());
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn tail_asymptote_rejects_nonpositive_x() {
        Stable::new(1.5, 0.0, 1.0, 0.0)
            .unwrap()
            .tail_ccdf_asymptotic(0.0);
    }
}
