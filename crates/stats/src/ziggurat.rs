//! Ziggurat sampler for the standard normal distribution.
//!
//! The Davies-Harte fGn generator draws `2N` Gaussians per Monte-Carlo
//! instance, and with the FFT cost halved by the real-transform layer
//! the Box-Muller `ln`/`sqrt`/`cos` chain became the next-largest cost
//! in the hot path. This module implements the Marsaglia-Tsang ziggurat
//! (256 layers): the common case (~98.5% of draws) costs one 64-bit RNG
//! word, one table lookup, one multiply, and one compare — no
//! transcendentals.
//!
//! The layer tables are built once per process (a few hundred `ln`/
//! `sqrt` calls) from the classic 256-layer constants `R` and `V`, and
//! shared through a `OnceLock`.
//!
//! The sampler is *distribution-exact* (the accept/reject structure
//! introduces no approximation), but it consumes a different RNG stream
//! than Box-Muller, so a given seed yields different — equally Gaussian
//! — values. The legacy stream remains available as
//! [`crate::dist::standard_normal_boxmuller`] for the determinism
//! suite.

use rand::{Rng, RngCore};
use std::sync::OnceLock;

/// Number of ziggurat layers.
const LAYERS: usize = 256;

/// Right-most layer boundary for the 256-layer normal ziggurat.
const R: f64 = 3.654_152_885_361_009;

/// Common layer area (including the tail) for the 256-layer normal
/// ziggurat.
const V: f64 = 0.00492867323399141;

/// Unnormalized standard-normal density `e^{−x²/2}`.
#[inline]
fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Precomputed layer tables: `x[i]` are the layer right edges
/// (decreasing, `x[256] = 0`), `f[i] = pdf(x[i])`.
struct Tables {
    x: [f64; LAYERS + 1],
    f: [f64; LAYERS + 1],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0; LAYERS + 1];
        let mut f = [0.0; LAYERS + 1];
        // Layer 0 is the base strip whose area includes the unbounded
        // tail: its *effective* width is V / pdf(R) > R, which makes
        // the tail rejection probability come out exactly right.
        x[0] = V / pdf(R);
        x[1] = R;
        for i in 1..LAYERS {
            // Equal-area recurrence: x_{i+1} = f⁻¹(V/x_i + f(x_i)).
            let y = V / x[i] + pdf(x[i]);
            x[i + 1] = if i == LAYERS - 1 {
                0.0
            } else {
                (-2.0 * y.ln()).sqrt()
            };
        }
        for i in 0..=LAYERS {
            f[i] = pdf(x[i]);
        }
        Tables { x, f }
    })
}

/// Draws a standard normal via the 256-layer ziggurat.
///
/// Generic over the generator so hot Monte-Carlo loops monomorphize and
/// inline the RNG; `?Sized` keeps `&mut dyn RngCore` callers working.
pub fn standard_normal_ziggurat<R2: RngCore + ?Sized>(rng: &mut R2) -> f64 {
    draw(tables(), rng)
}

/// Fills `out` with independent standard normals, bit-identical to
/// calling [`standard_normal_ziggurat`] once per slot with the same RNG
/// (the `batch_fill_matches_scalar_loop` test pins this).
///
/// The batch form hoists the layer-table borrow and the `OnceLock`
/// check out of the loop and gives the optimizer one tight loop to
/// schedule RNG block generation across — worthwhile for the `2N`
/// Gaussians each fGn instance draws.
pub fn fill_standard_normal<R2: RngCore + ?Sized>(rng: &mut R2, out: &mut [f64]) {
    let t = tables();
    for slot in out {
        *slot = draw(t, rng);
    }
}

/// One ziggurat draw against prefetched tables.
#[inline]
fn draw<R2: RngCore + ?Sized>(t: &Tables, rng: &mut R2) -> f64 {
    loop {
        // One 64-bit word carries the layer index (8 bits) and a
        // 53-bit uniform mantissa, folded to a symmetric u ∈ (−1, 1).
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let frac = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u = 2.0 * frac - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            // Wholly inside the layer below: accept with no further work.
            return x;
        }
        if i == 0 {
            // Base layer: the overhang is the unbounded tail beyond R.
            // Marsaglia's exact tail method: X = R + e where
            // e ~ Exp folded against the Gaussian tail.
            loop {
                let u1: f64 = loop {
                    let v = rng.gen::<f64>();
                    if v > 0.0 {
                        break v;
                    }
                };
                let u2: f64 = loop {
                    let v = rng.gen::<f64>();
                    if v > 0.0 {
                        break v;
                    }
                };
                let ex = -u1.ln() / R;
                let ey = -u2.ln();
                if ey + ey >= ex * ex {
                    let mag = R + ex;
                    return if u < 0.0 { -mag } else { mag };
                }
            }
        }
        // Wedge between x[i+1] and x[i]: exact accept/reject against
        // the density.
        let between = t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>();
        if between < pdf(x) {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn layer_edges_are_strictly_decreasing_to_zero() {
        let t = tables();
        assert!((t.x[1] - R).abs() < 1e-15);
        assert!(t.x[0] > t.x[1], "virtual base edge exceeds R");
        for i in 1..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "layer {i}");
        }
        assert_eq!(t.x[LAYERS], 0.0);
        assert_eq!(t.f[LAYERS], 1.0);
    }

    #[test]
    fn layers_have_equal_area() {
        // Strip i (1 ≤ i < 256) has area x[i]·(f(x[i+1]) − f(x[i])) = V.
        let t = tables();
        for i in 1..LAYERS - 1 {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - V).abs() < 1e-12, "layer {i}: area {area}");
        }
        // Base strip: rectangle R·f(R) plus the tail mass √(2π)·Q(R).
        let tail =
            (2.0 * std::f64::consts::PI).sqrt() * (1.0 - sst_sigproc::special::normal_cdf(R));
        let base = R * pdf(R) + tail;
        assert!((base - V).abs() < 1e-9, "base area {base}");
    }

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = rng_from_seed(12);
        let n = 400_000;
        let (mut m1, mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal_ziggurat(&mut rng);
            m1 += x;
            m2 += x * x;
            m3 += x * x * x;
            m4 += x * x * x * x;
        }
        let nf = n as f64;
        assert!((m1 / nf).abs() < 0.01, "mean={}", m1 / nf);
        assert!((m2 / nf - 1.0).abs() < 0.02, "var={}", m2 / nf);
        assert!((m3 / nf).abs() < 0.05, "skew={}", m3 / nf);
        assert!((m4 / nf - 3.0).abs() < 0.1, "kurtosis={}", m4 / nf);
    }

    #[test]
    fn kolmogorov_smirnov_against_normal_cdf() {
        let mut rng = rng_from_seed(3);
        let n = 100_000usize;
        let mut xs: Vec<f64> = (0..n).map(|_| standard_normal_ziggurat(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut d = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let cdf = sst_sigproc::special::normal_cdf(x);
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
        }
        // KS 1% critical value: 1.63/√n ≈ 0.00515 at n = 100 000.
        let crit = 1.63 / (n as f64).sqrt();
        assert!(d < crit, "KS statistic {d} exceeds {crit}");
    }

    #[test]
    fn tail_mass_beyond_r_is_reached_and_correct() {
        // The tail path must actually fire and with the right frequency:
        // P(|X| > R) = 2·Q(R) ≈ 2.59e-4.
        let mut rng = rng_from_seed(77);
        let n = 2_000_000;
        let mut beyond = 0usize;
        for _ in 0..n {
            if standard_normal_ziggurat(&mut rng).abs() > R {
                beyond += 1;
            }
        }
        let want = 2.0 * (1.0 - sst_sigproc::special::normal_cdf(R));
        let got = beyond as f64 / n as f64;
        assert!(beyond > 0, "tail never sampled");
        assert!(
            (got - want).abs() < 5.0 * (want / n as f64).sqrt(),
            "tail frequency {got} vs {want}"
        );
    }

    #[test]
    fn batch_fill_matches_scalar_loop() {
        // The batch fill must consume the RNG exactly like the scalar
        // call sequence — bit-for-bit, across sizes that straddle the
        // rare wedge/tail paths.
        for (seed, n) in [(0u64, 1usize), (5, 64), (9, 4097), (77, 100_000)] {
            let scalar: Vec<f64> = {
                let mut rng = rng_from_seed(seed);
                (0..n).map(|_| standard_normal_ziggurat(&mut rng)).collect()
            };
            let mut batch = vec![0.0; n];
            let mut rng = rng_from_seed(seed);
            fill_standard_normal(&mut rng, &mut batch);
            assert_eq!(batch, scalar, "seed={seed} n={n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut rng = rng_from_seed(5);
            (0..64)
                .map(|_| standard_normal_ziggurat(&mut rng))
                .collect()
        };
        let b: Vec<f64> = {
            let mut rng = rng_from_seed(5);
            (0..64)
                .map(|_| standard_normal_ziggurat(&mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = rng_from_seed(1);
        let dyn_rng: &mut dyn rand::RngCore = &mut rng;
        let x = standard_normal_ziggurat(dyn_rng);
        assert!(x.is_finite());
    }
}
