//! Heavy-tail detection and Pareto tail fitting.
//!
//! Two estimators: the log-log least-squares fit the paper uses for its
//! CCDF figures ("fit the measured CCDF to a Pareto line in a log-log
//! plot"), and the Hill estimator as an independent cross-check.

use crate::ecdf::Ecdf;
use sst_sigproc::regress::{power_law_fit, LineFit};

/// A fitted Pareto tail `P(X > x) ≈ (k/x)^α`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoFit {
    /// Estimated shape (tail index) α.
    pub alpha: f64,
    /// Estimated scale k.
    pub scale: f64,
    /// Goodness of the log-log line fit (R²); `NaN` for Hill fits.
    pub r_squared: f64,
    /// Number of tail points used.
    pub n_tail: usize,
}

impl ParetoFit {
    /// The fitted CCDF evaluated at `x`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            1.0
        } else {
            (self.scale / x).powf(self.alpha)
        }
    }
}

/// Fits a Pareto tail by least squares on the log-log CCDF, using the
/// observations above the `tail_from` quantile (e.g. `0.5` fits the upper
/// half — a typical choice for the traffic marginals of Fig. 8).
///
/// Returns `None` when fewer than 8 usable tail points remain (too little
/// information for a meaningful line).
pub fn fit_pareto_ccdf(data: &[f64], tail_from: f64) -> Option<ParetoFit> {
    assert!(
        (0.0..1.0).contains(&tail_from),
        "tail_from must be in [0,1)"
    );
    let positive: Vec<f64> = data.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.len() < 16 {
        return None;
    }
    let ecdf = Ecdf::new(&positive);
    let x0 = ecdf.quantile(tail_from);
    // Log-spaced CCDF curve restricted to the tail. The extreme tail where
    // fewer than ~10 observations remain is pure step noise and would bias
    // the slope, so it is excluded from the fit.
    let min_prob = 10.0 / positive.len() as f64;
    let curve: Vec<(f64, f64)> = ecdf
        .ccdf_curve_log(200)
        .into_iter()
        .filter(|&(x, p)| x >= x0 && p >= min_prob)
        .collect();
    if curve.len() < 8 {
        return None;
    }
    let xs: Vec<f64> = curve.iter().map(|c| c.0).collect();
    let ps: Vec<f64> = curve.iter().map(|c| c.1).collect();
    let (slope, prefactor, fit): (f64, f64, LineFit) = power_law_fit(&xs, &ps);
    let alpha = -slope;
    if !(alpha.is_finite() && alpha > 0.0) {
        return None;
    }
    // P(X > x) = c x^-α = (k/x)^α  =>  k = c^(1/α).
    let scale = prefactor.powf(1.0 / alpha);
    Some(ParetoFit {
        alpha,
        scale,
        r_squared: fit.r_squared,
        n_tail: curve.len(),
    })
}

/// Hill estimator of the tail index using the top `k` order statistics:
/// `α̂ = k / Σ_{i=1..k} ln(x_(n-i+1) / x_(n-k))`.
///
/// Returns `None` if fewer than `k + 1` positive observations exist or the
/// denominator degenerates (all tail values equal).
pub fn hill_estimator(data: &[f64], k: usize) -> Option<ParetoFit> {
    if k < 2 {
        return None;
    }
    let mut positive: Vec<f64> = data.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.len() <= k {
        return None;
    }
    positive.sort_by(|a, b| a.partial_cmp(b).expect("NaN in hill input"));
    let n = positive.len();
    let threshold = positive[n - k - 1];
    if threshold <= 0.0 {
        return None;
    }
    let sum: f64 = positive[n - k..]
        .iter()
        .map(|&x| (x / threshold).ln())
        .sum();
    if sum <= 0.0 {
        return None;
    }
    let alpha = k as f64 / sum;
    Some(ParetoFit {
        alpha,
        scale: threshold,
        r_squared: f64::NAN,
        n_tail: k,
    })
}

/// A crude straight-line-in-log-log heavy-tail test: fits the upper-tail
/// CCDF and reports whether the fit is both good (R² ≥ `min_r2`) and has a
/// small exponent (α ≤ `max_alpha`, default heavy-tail boundary 2).
pub fn looks_heavy_tailed(data: &[f64], min_r2: f64, max_alpha: f64) -> bool {
    match fit_pareto_ccdf(data, 0.5) {
        Some(fit) => fit.r_squared >= min_r2 && fit.alpha <= max_alpha,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential, Pareto};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pareto_sample(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let p = Pareto::new(alpha, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| p.sample(&mut rng)).collect()
    }

    #[test]
    fn ccdf_fit_recovers_alpha() {
        for &alpha in &[1.2, 1.5, 1.71] {
            let data = pareto_sample(alpha, 100_000, 9);
            let fit = fit_pareto_ccdf(&data, 0.5).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.15,
                "alpha={alpha} fitted={}",
                fit.alpha
            );
            assert!(fit.r_squared > 0.98);
        }
    }

    #[test]
    fn hill_recovers_alpha() {
        for &alpha in &[1.3, 1.65] {
            let data = pareto_sample(alpha, 100_000, 21);
            let fit = hill_estimator(&data, 5_000).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.1,
                "alpha={alpha} hill={}",
                fit.alpha
            );
        }
    }

    #[test]
    fn exponential_is_not_heavy_tailed() {
        let e = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..50_000).map(|_| e.sample(&mut rng)).collect();
        // A log-log line through an exponential CCDF bends; either the fit
        // is bad or the apparent exponent is large.
        assert!(!looks_heavy_tailed(&data, 0.99, 2.0));
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let data = pareto_sample(1.5, 50_000, 4);
        assert!(looks_heavy_tailed(&data, 0.95, 2.0));
    }

    #[test]
    fn fitted_ccdf_matches_at_scale() {
        let fit = ParetoFit {
            alpha: 1.5,
            scale: 2.0,
            r_squared: 1.0,
            n_tail: 10,
        };
        assert_eq!(fit.ccdf(1.0), 1.0);
        assert_eq!(fit.ccdf(2.0), 1.0);
        assert!((fit.ccdf(4.0) - 0.5f64.powf(1.5)).abs() < 1e-12);
    }

    #[test]
    fn too_little_data_returns_none() {
        assert!(fit_pareto_ccdf(&[1.0, 2.0, 3.0], 0.5).is_none());
        assert!(hill_estimator(&[1.0, 2.0], 5).is_none());
        assert!(hill_estimator(&[], 2).is_none());
    }

    #[test]
    fn hill_degenerate_tail_returns_none() {
        let data = vec![5.0; 100];
        assert!(hill_estimator(&data, 10).is_none());
    }

    #[test]
    fn zeros_are_ignored_in_fit() {
        // Mimics a binned rate process: mostly zeros + Pareto bursts.
        let mut data = pareto_sample(1.5, 20_000, 8);
        data.extend(std::iter::repeat_n(0.0, 80_000));
        let fit = fit_pareto_ccdf(&data, 0.5).unwrap();
        assert!((fit.alpha - 1.5).abs() < 0.2, "fitted={}", fit.alpha);
    }
}
