//! Packet and flow-key records — the tcpdump-level substrate.
//!
//! The paper's real workload is a Bell Labs tcpdump trace with "detailed
//! packet level information for hundreds of pairs of end hosts". These
//! types model exactly what the paper uses from such a trace: timestamps,
//! sizes, and origin-destination (OD) identity.

use serde::{Deserialize, Serialize};

/// Transport protocol of a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP segment.
    Tcp,
    /// UDP datagram.
    Udp,
}

/// An origin-destination flow key (the paper's "OD-flow").
///
/// Hosts are abstract numeric identifiers: the trace synthesizer assigns
/// them, and real-trace ingestion would map IPs onto them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source host id.
    pub src: u32,
    /// Destination host id.
    pub dst: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// The unordered OD pair `(min(src,dst), max(src,dst))` — the paper's
    /// host-pair granularity.
    pub fn od_pair(&self) -> (u32, u32) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

/// One captured packet.
///
/// `flow` indexes into the owning trace's flow table (a u32 keeps the
/// per-packet record at 16 bytes; multi-million-packet traces stay cheap).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Capture timestamp in seconds from trace start.
    pub time: f64,
    /// Wire size in bytes (IP length).
    pub size: u32,
    /// Index into the trace's flow table.
    pub flow: u32,
}

impl Packet {
    /// Creates a packet record.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative/NaN or `size == 0`.
    pub fn new(time: f64, size: u32, flow: u32) -> Self {
        assert!(
            time >= 0.0 && time.is_finite(),
            "timestamp must be non-negative finite"
        );
        assert!(size > 0, "packet size must be positive");
        Packet { time, size, flow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn od_pair_is_unordered() {
        let a = FlowKey {
            src: 5,
            dst: 9,
            src_port: 80,
            dst_port: 4000,
            proto: Protocol::Tcp,
        };
        let b = FlowKey {
            src: 9,
            dst: 5,
            src_port: 4000,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        assert_eq!(a.od_pair(), b.od_pair());
        assert_eq!(a.od_pair(), (5, 9));
    }

    #[test]
    fn packet_construction_validates() {
        let p = Packet::new(1.5, 1500, 0);
        assert_eq!(p.size, 1500);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        Packet::new(0.0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "timestamp")]
    fn negative_time_rejected() {
        Packet::new(-0.1, 100, 0);
    }

    #[test]
    fn flow_key_is_hashable_and_ordered() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FlowKey {
            src: 1,
            dst: 2,
            src_port: 1,
            dst_port: 2,
            proto: Protocol::Udp,
        });
        set.insert(FlowKey {
            src: 1,
            dst: 2,
            src_port: 1,
            dst_port: 2,
            proto: Protocol::Udp,
        });
        assert_eq!(set.len(), 1);
    }
}
