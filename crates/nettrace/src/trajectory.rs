//! Trajectory sampling (Duffield & Grossglauser, SIGCOMM 2000) — the
//! hash-based consistent packet selection the paper's §I reviews.
//!
//! Every router applies the same hash function to invariant packet
//! content and selects the packet iff the hash falls under a threshold.
//! Because the decision depends only on the packet (not the router, the
//! time, or an RNG), a selected packet is selected *everywhere*, so the
//! collected samples trace each packet's trajectory through the network.
//!
//! Our [`crate::Packet`] records carry no payload, so the "invariant content"
//! is modeled as (flow key, size, per-flow sequence number): constant
//! along a path, distinct across packets of a flow.

use crate::packet::FlowKey;
use crate::trace::PacketTrace;

/// A permutation-quality 64-bit mixer (splitmix64 finalizer). Public so
/// tests and downstream tools can reproduce selection decisions.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The invariant identity of one packet as seen by every router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketId {
    /// The packet's flow key.
    pub flow: FlowKey,
    /// Wire size in bytes.
    pub size: u32,
    /// Sequence number of this packet within its flow.
    pub seq_in_flow: u64,
}

impl PacketId {
    fn digest(&self, salt: u64) -> u64 {
        let f = &self.flow;
        let mut h = mix64(salt ^ 0x7261_6A65_6374_6F72); // "rajector"
        h = mix64(h ^ ((f.src as u64) << 32 | f.dst as u64));
        h = mix64(h ^ ((f.src_port as u64) << 32 | (f.dst_port as u64) << 16 | f.proto as u64));
        h = mix64(h ^ ((self.size as u64) << 32 | (self.seq_in_flow & 0xFFFF_FFFF)));
        h
    }
}

/// Hash-based consistent packet selector.
///
/// # Examples
///
/// ```
/// use sst_nettrace::trajectory::TrajectorySampler;
/// use sst_nettrace::TraceSynthesizer;
///
/// let trace = TraceSynthesizer::bell_labs_like().duration(2.0).synthesize(3);
/// let sampler = TrajectorySampler::new(0.01, 42);
/// let picked = sampler.sample(&trace);
/// // Two independent observation points agree exactly:
/// assert_eq!(picked, sampler.sample(&trace));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectorySampler {
    threshold: u64,
    fraction: f64,
    salt: u64,
}

impl TrajectorySampler {
    /// Creates a sampler selecting ≈ `fraction` of distinct packets.
    /// `salt` is the network-wide hash configuration (all routers must
    /// share it).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn new(fraction: f64, salt: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sampling fraction must be in (0,1], got {fraction}"
        );
        let threshold = if fraction >= 1.0 {
            u64::MAX
        } else {
            (fraction * u64::MAX as f64) as u64
        };
        TrajectorySampler {
            threshold,
            fraction,
            salt,
        }
    }

    /// The configured sampling fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The selection decision for one packet — identical at every
    /// observation point.
    pub fn selects(&self, id: &PacketId) -> bool {
        id.digest(self.salt) <= self.threshold
    }

    /// Applies the selector to a whole trace, returning selected packet
    /// indices. Per-flow sequence numbers are reconstructed from arrival
    /// order, as a router's flow table would.
    pub fn sample(&self, trace: &PacketTrace) -> Vec<usize> {
        let mut seq = vec![0u64; trace.flows().len()];
        let mut out = Vec::new();
        for (i, p) in trace.packets().iter().enumerate() {
            let flow_idx = p.flow as usize;
            let id = PacketId {
                flow: trace.flows()[flow_idx],
                size: p.size,
                seq_in_flow: seq[flow_idx],
            };
            seq[flow_idx] += 1;
            if self.selects(&id) {
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Protocol};
    use crate::synth::TraceSynthesizer;

    fn flow(src: u32) -> FlowKey {
        FlowKey {
            src,
            dst: 99,
            src_port: 1,
            dst_port: 2,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn selection_fraction_close_to_nominal() {
        // Large deterministic population: 50k distinct packet ids. The
        // binomial standard deviation is ~0.001, so a 0.01 band is 10σ —
        // a failure here means the hash is genuinely biased.
        let flows = vec![flow(1), flow(2), flow(3)];
        let packets = (0..50_000)
            .map(|i| Packet::new(i as f64 * 1e-4, 40 + (i % 1460) as u32, (i % 3) as u32))
            .collect();
        let trace = PacketTrace::new(flows, packets, 5.0);
        let s = TrajectorySampler::new(0.05, 7);
        let picked = s.sample(&trace);
        let got = picked.len() as f64 / trace.len() as f64;
        assert!((got - 0.05).abs() < 0.01, "fraction {got}");
    }

    #[test]
    fn consistent_across_observation_points() {
        // The same packets observed at a second "router" (same trace,
        // shifted timestamps) are selected identically: the decision
        // ignores time and position.
        let flows = vec![flow(1), flow(2)];
        let mk = |shift: f64| {
            let packets = (0..2000)
                .map(|i| {
                    Packet::new(
                        shift + i as f64 * 0.001,
                        40 + (i % 1460) as u32,
                        (i % 2) as u32,
                    )
                })
                .collect();
            PacketTrace::new(flows.clone(), packets, shift + 2.0)
        };
        let s = TrajectorySampler::new(0.1, 99);
        let at_ingress = s.sample(&mk(0.0));
        let at_egress = s.sample(&mk(5.0));
        assert_eq!(at_ingress, at_egress);
        assert!(!at_ingress.is_empty());
    }

    #[test]
    fn different_salts_give_independent_samples() {
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(5.0)
            .synthesize(8);
        let a = TrajectorySampler::new(0.1, 1).sample(&trace);
        let b = TrajectorySampler::new(0.1, 2).sample(&trace);
        assert_ne!(a, b);
        // Overlap should be near 10% of either (independent 10% picks).
        let bs: std::collections::HashSet<_> = b.iter().collect();
        let overlap = a.iter().filter(|i| bs.contains(i)).count() as f64;
        let frac = overlap / a.len() as f64;
        assert!(frac < 0.25, "salted samples too correlated: {frac}");
    }

    #[test]
    fn full_fraction_selects_everything() {
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(1.0)
            .synthesize(2);
        let s = TrajectorySampler::new(1.0, 0);
        assert_eq!(s.sample(&trace).len(), trace.len());
    }

    #[test]
    fn repeated_identical_flows_disambiguated_by_sequence() {
        // 100 byte-identical packets of one flow: without the sequence
        // number they would all hash alike (all-or-nothing); with it the
        // selection is a fair per-packet coin.
        let flows = vec![flow(1)];
        let packets = (0..1000).map(|i| Packet::new(i as f64, 100, 0)).collect();
        let trace = PacketTrace::new(flows, packets, 1000.0);
        let picked = TrajectorySampler::new(0.2, 5).sample(&trace);
        let frac = picked.len() as f64 / 1000.0;
        assert!((frac - 0.2).abs() < 0.06, "fraction {frac}");
    }

    #[test]
    fn mix64_is_a_sane_mixer() {
        // No fixed point at 0 and decent avalanche on one-bit flips.
        assert_ne!(mix64(0), 0);
        let a = mix64(0x1234);
        let b = mix64(0x1235);
        assert!((a ^ b).count_ones() > 16, "weak avalanche: {:#x}", a ^ b);
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn zero_fraction_rejected() {
        TrajectorySampler::new(0.0, 1);
    }
}
