//! Packet-level sampling with time-driven and event-driven triggers —
//! the Claffy-Polyzos-Braun design space the paper's related work opens
//! with (§I: "event-driven techniques outperform time-driven ones,
//! while the differences within each class are small").
//!
//! A packet sampler is the cross product of a *trigger* (what advances
//! the selection clock: packet arrivals or wall-clock time) and a
//! *selection pattern* (systematic, stratified random, or simple
//! random). The paper's time-series samplers in `sst-core` operate on a
//! pre-binned process; these operate on the raw packet stream, which is
//! what a router line card actually sees.

use crate::trace::PacketTrace;
use rand::Rng;
use sst_stats::ecdf::Ecdf;
use sst_stats::rng::{derive_seed, rng_from_seed};

/// How packets are selected once the trigger fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPattern {
    /// Deterministic: every bucket contributes its first element.
    Systematic,
    /// One uniformly random element per bucket.
    Stratified,
    /// Each element independently with the bucket-equivalent rate.
    Random,
}

/// What defines a bucket: a count of packets or a span of seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Buckets of `every` consecutive packets (count-driven).
    EventDriven {
        /// Packets per bucket (the `N` of 1-out-of-N).
        every: usize,
    },
    /// Buckets of `every` seconds (timer-driven).
    TimeDriven {
        /// Seconds per bucket.
        every: f64,
    },
}

/// A packet sampler: trigger × selection pattern.
///
/// # Examples
///
/// ```
/// use sst_nettrace::pktsampling::{PacketSampler, SelectionPattern, Trigger};
/// use sst_nettrace::TraceSynthesizer;
///
/// let trace = TraceSynthesizer::bell_labs_like().duration(5.0).synthesize(1);
/// let sampler = PacketSampler::new(Trigger::EventDriven { every: 100 }, SelectionPattern::Systematic);
/// let sampled = sampler.sample(&trace, 0);
/// assert!(sampled.indices().len() <= trace.len() / 100 + 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketSampler {
    trigger: Trigger,
    pattern: SelectionPattern,
}

impl PacketSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if the trigger interval is zero / non-positive.
    pub fn new(trigger: Trigger, pattern: SelectionPattern) -> Self {
        match trigger {
            Trigger::EventDriven { every } => {
                assert!(every >= 1, "packet interval must be >= 1");
            }
            Trigger::TimeDriven { every } => {
                assert!(
                    every > 0.0 && every.is_finite(),
                    "time interval must be positive"
                );
            }
        }
        PacketSampler { trigger, pattern }
    }

    /// The configured trigger.
    pub fn trigger(&self) -> Trigger {
        self.trigger
    }

    /// The configured selection pattern.
    pub fn pattern(&self) -> SelectionPattern {
        self.pattern
    }

    /// Short name like `"event/systematic"` for reports.
    pub fn name(&self) -> String {
        let t = match self.trigger {
            Trigger::EventDriven { .. } => "event",
            Trigger::TimeDriven { .. } => "time",
        };
        let p = match self.pattern {
            SelectionPattern::Systematic => "systematic",
            SelectionPattern::Stratified => "stratified",
            SelectionPattern::Random => "random",
        };
        format!("{t}/{p}")
    }

    /// Draws one sampling instance over the trace. The `seed` selects
    /// the instance (random draws, or the systematic phase).
    pub fn sample(&self, trace: &PacketTrace, seed: u64) -> SampledTrace {
        let indices = match self.trigger {
            Trigger::EventDriven { every } => self.sample_event(trace, every, seed),
            Trigger::TimeDriven { every } => self.sample_time(trace, every, seed),
        };
        SampledTrace::new(trace, indices)
    }

    fn sample_event(&self, trace: &PacketTrace, every: usize, seed: u64) -> Vec<usize> {
        let n = trace.len();
        let mut rng = rng_from_seed(derive_seed(seed, 0xC1AF));
        let mut out = Vec::new();
        match self.pattern {
            SelectionPattern::Systematic => {
                let offset = (seed as usize) % every;
                let mut i = offset;
                while i < n {
                    out.push(i);
                    i += every;
                }
            }
            SelectionPattern::Stratified => {
                let mut start = 0;
                while start < n {
                    let end = (start + every).min(n);
                    out.push(start + rng.gen_range(0..end - start));
                    start = end;
                }
            }
            SelectionPattern::Random => {
                let rate = 1.0 / every as f64;
                for i in 0..n {
                    if rng.gen::<f64>() < rate {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    fn sample_time(&self, trace: &PacketTrace, every: f64, seed: u64) -> Vec<usize> {
        let packets = trace.packets();
        if packets.is_empty() {
            return Vec::new();
        }
        let duration = trace.duration().max(every);
        let mut rng = rng_from_seed(derive_seed(seed, 0x71ED));
        // Selection instants; each picks the first packet at or after it
        // (a timer fires, the next packet is captured — how time-driven
        // collection works on a wire).
        let mut instants = Vec::new();
        match self.pattern {
            SelectionPattern::Systematic => {
                let phase = rng.gen::<f64>() * every;
                let mut t = phase;
                while t <= duration {
                    instants.push(t);
                    t += every;
                }
            }
            SelectionPattern::Stratified => {
                let mut start = 0.0;
                while start < duration {
                    let width = every.min(duration - start);
                    instants.push(start + rng.gen::<f64>() * width);
                    start += every;
                }
            }
            SelectionPattern::Random => {
                // Poisson instants with mean spacing `every`.
                let mut t = 0.0;
                loop {
                    let u: f64 = loop {
                        let u = rng.gen::<f64>();
                        if u > 0.0 {
                            break u;
                        }
                    };
                    t += -u.ln() * every;
                    if t > duration {
                        break;
                    }
                    instants.push(t);
                }
            }
        }
        // March the two sorted lists together; dedup (two instants inside
        // one inter-arrival gap capture the same packet once).
        let mut out = Vec::with_capacity(instants.len());
        let mut pi = 0usize;
        for t in instants {
            while pi < packets.len() && packets[pi].time < t {
                pi += 1;
            }
            if pi >= packets.len() {
                break;
            }
            if out.last() != Some(&pi) {
                out.push(pi);
            }
        }
        out
    }
}

/// The outcome of one packet-sampling instance: selected indices plus
/// summary statistics used to judge how faithful the sample is.
#[derive(Clone, Debug)]
pub struct SampledTrace {
    indices: Vec<usize>,
    sizes: Vec<f64>,
    times: Vec<f64>,
    parent_len: usize,
}

impl SampledTrace {
    fn new(trace: &PacketTrace, indices: Vec<usize>) -> Self {
        let packets = trace.packets();
        let sizes = indices.iter().map(|&i| packets[i].size as f64).collect();
        let times = indices.iter().map(|&i| packets[i].time).collect();
        SampledTrace {
            indices,
            sizes,
            times,
            parent_len: trace.len(),
        }
    }

    /// Indices of the selected packets in the parent trace.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of selected packets.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Achieved sampling rate (selected / parent packets).
    pub fn achieved_rate(&self) -> f64 {
        if self.parent_len == 0 {
            0.0
        } else {
            self.indices.len() as f64 / self.parent_len as f64
        }
    }

    /// Mean selected packet size in bytes (`None` when empty).
    pub fn mean_packet_size(&self) -> Option<f64> {
        if self.sizes.is_empty() {
            None
        } else {
            Some(self.sizes.iter().sum::<f64>() / self.sizes.len() as f64)
        }
    }

    /// Mean gap between consecutive selected packets' *parent* arrival
    /// times (`None` with fewer than two samples).
    pub fn mean_interarrival(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        Some(span / (self.times.len() - 1) as f64)
    }

    /// Kolmogorov-Smirnov distance between the sampled packet-size
    /// distribution and the parent's — Claffy et al.'s fidelity metric.
    /// Returns 1.0 for an empty sample (maximal distance).
    pub fn size_ks_distance(&self, trace: &PacketTrace) -> f64 {
        if self.sizes.is_empty() || trace.is_empty() {
            return 1.0;
        }
        let parent: Vec<f64> = trace.packets().iter().map(|p| p.size as f64).collect();
        ks_distance(&self.sizes, &parent)
    }

    /// KS distance between the distribution of the *preceding*
    /// inter-arrival gap of each selected packet and the parent's gap
    /// distribution. This is where the trigger classes genuinely differ:
    /// a timer selects the first packet after a tick, so the preceding
    /// gap is length-biased (P ∝ gap) — the dominant distortion Claffy
    /// et al. report for time-driven sampling. Returns 1.0 when either
    /// side has no gaps.
    pub fn gap_ks_distance(&self, trace: &PacketTrace) -> f64 {
        let packets = trace.packets();
        if packets.len() < 2 {
            return 1.0;
        }
        let parent: Vec<f64> = packets.windows(2).map(|w| w[1].time - w[0].time).collect();
        let sampled: Vec<f64> = self
            .indices
            .iter()
            .filter(|&&i| i > 0)
            .map(|&i| packets[i].time - packets[i - 1].time)
            .collect();
        if sampled.is_empty() {
            return 1.0;
        }
        ks_distance(&sampled, &parent)
    }
}

/// Two-sample Kolmogorov-Smirnov distance `sup_x |F_a(x) − F_b(x)|`.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS distance needs non-empty samples"
    );
    let ea = Ecdf::new(a);
    let eb = Ecdf::new(b);
    let mut d = 0.0f64;
    for &x in ea.sorted_values().iter().chain(eb.sorted_values()) {
        d = d.max((ea.cdf(x) - eb.cdf(x)).abs());
    }
    d
}

/// Convenience: all six trigger × pattern combinations at a matched
/// target rate, for side-by-side comparison. `mean_gap_pkts` sets the
/// event-driven interval; the time-driven interval is chosen so both
/// fire equally often on this trace.
pub fn all_samplers(trace: &PacketTrace, mean_gap_pkts: usize) -> Vec<PacketSampler> {
    let pkt_rate = if trace.duration() > 0.0 && !trace.is_empty() {
        trace.len() as f64 / trace.duration()
    } else {
        mean_gap_pkts as f64 // degenerate trace: any positive dt will do
    };
    let dt = mean_gap_pkts as f64 / pkt_rate;
    let patterns = [
        SelectionPattern::Systematic,
        SelectionPattern::Stratified,
        SelectionPattern::Random,
    ];
    let mut out = Vec::with_capacity(6);
    for &p in &patterns {
        out.push(PacketSampler::new(
            Trigger::EventDriven {
                every: mean_gap_pkts,
            },
            p,
        ));
    }
    for &p in &patterns {
        out.push(PacketSampler::new(Trigger::TimeDriven { every: dt }, p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Packet, Protocol};
    use crate::synth::TraceSynthesizer;

    fn uniform_trace(n: usize, gap: f64, size: u32) -> PacketTrace {
        let flows = vec![FlowKey {
            src: 1,
            dst: 2,
            src_port: 10,
            dst_port: 20,
            proto: Protocol::Udp,
        }];
        let packets = (0..n)
            .map(|i| Packet::new(i as f64 * gap, size, 0))
            .collect();
        PacketTrace::new(flows, packets, n as f64 * gap)
    }

    #[test]
    fn event_systematic_takes_every_nth() {
        let trace = uniform_trace(100, 0.1, 500);
        let s = PacketSampler::new(
            Trigger::EventDriven { every: 10 },
            SelectionPattern::Systematic,
        );
        let out = s.sample(&trace, 0);
        assert_eq!(out.indices(), &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        assert!((out.achieved_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn event_systematic_phase_from_seed() {
        let trace = uniform_trace(100, 0.1, 500);
        let s = PacketSampler::new(
            Trigger::EventDriven { every: 10 },
            SelectionPattern::Systematic,
        );
        let out = s.sample(&trace, 3);
        assert_eq!(out.indices()[0], 3);
    }

    #[test]
    fn event_stratified_one_per_bucket() {
        let trace = uniform_trace(97, 0.1, 500);
        let s = PacketSampler::new(
            Trigger::EventDriven { every: 10 },
            SelectionPattern::Stratified,
        );
        let out = s.sample(&trace, 5);
        assert_eq!(out.len(), 10);
        for (b, &i) in out.indices().iter().enumerate() {
            assert!(
                i >= b * 10 && i < ((b + 1) * 10).min(97),
                "bucket {b} idx {i}"
            );
        }
    }

    #[test]
    fn event_random_rate_converges() {
        let trace = uniform_trace(50_000, 0.001, 100);
        let s = PacketSampler::new(Trigger::EventDriven { every: 10 }, SelectionPattern::Random);
        let out = s.sample(&trace, 7);
        assert!(
            (out.achieved_rate() - 0.1).abs() < 0.01,
            "rate {}",
            out.achieved_rate()
        );
    }

    #[test]
    fn time_systematic_on_uniform_arrivals_matches_event() {
        // Uniformly spaced packets: one per 0.1 s. A 1-second timer
        // selects every 10th packet (up to phase).
        let trace = uniform_trace(1000, 0.1, 100);
        let s = PacketSampler::new(
            Trigger::TimeDriven { every: 1.0 },
            SelectionPattern::Systematic,
        );
        let out = s.sample(&trace, 9);
        assert!(!out.is_empty());
        let gaps: Vec<usize> = out.indices().windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g == 10), "gaps {gaps:?}");
    }

    #[test]
    fn time_driven_never_duplicates_packets() {
        // Timer much faster than packets: every instant captures the
        // same next packet; dedup must keep it once.
        let trace = uniform_trace(10, 10.0, 100);
        let s = PacketSampler::new(
            Trigger::TimeDriven { every: 0.5 },
            SelectionPattern::Systematic,
        );
        let out = s.sample(&trace, 1);
        let mut sorted = out.indices().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), out.indices().len());
        assert!(out.len() <= 10);
    }

    #[test]
    fn empty_trace_yields_empty_sample() {
        let trace = PacketTrace::new(vec![], vec![], 1.0);
        for s in all_samplers(&trace, 10) {
            let out = s.sample(&trace, 0);
            assert!(out.is_empty(), "{}", s.name());
            assert_eq!(out.achieved_rate(), 0.0);
            assert_eq!(out.mean_packet_size(), None);
        }
    }

    #[test]
    fn names_cover_the_design_space() {
        let trace = uniform_trace(10, 1.0, 100);
        let names: Vec<String> = all_samplers(&trace, 5).iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "event/systematic",
                "event/stratified",
                "event/random",
                "time/systematic",
                "time/stratified",
                "time/random"
            ]
        );
    }

    #[test]
    fn ks_distance_zero_on_identical_and_one_on_disjoint() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
        let b = vec![10.0, 11.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
    }

    #[test]
    fn event_driven_beats_time_driven_on_bursty_traffic() {
        // The Claffy finding: a timer selects the first packet after a
        // tick, so the preceding inter-arrival gap is length-biased
        // (P ∝ gap) — with bursty arrivals the timer lands inside long
        // idle periods and systematically reports burst heads. Event-
        // driven selection is position-uniform and has no such bias, so
        // its gap distribution matches the parent far better.
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(60.0)
            .synthesize(17);
        let every = 50;
        let ev = PacketSampler::new(Trigger::EventDriven { every }, SelectionPattern::Stratified);
        let dt = every as f64 * trace.duration() / trace.len() as f64;
        let td = PacketSampler::new(
            Trigger::TimeDriven { every: dt },
            SelectionPattern::Stratified,
        );
        let mut ev_d = 0.0;
        let mut td_d = 0.0;
        let runs = 9;
        for seed in 0..runs {
            ev_d += ev.sample(&trace, seed).gap_ks_distance(&trace);
            td_d += td.sample(&trace, seed).gap_ks_distance(&trace);
        }
        assert!(
            ev_d < td_d,
            "event-driven gap-KS {:.4} should beat time-driven {:.4}",
            ev_d / runs as f64,
            td_d / runs as f64
        );
    }

    #[test]
    #[should_panic(expected = "packet interval must be >= 1")]
    fn zero_event_interval_rejected() {
        PacketSampler::new(Trigger::EventDriven { every: 0 }, SelectionPattern::Random);
    }

    #[test]
    #[should_panic(expected = "time interval must be positive")]
    fn zero_time_interval_rejected() {
        PacketSampler::new(Trigger::TimeDriven { every: 0.0 }, SelectionPattern::Random);
    }
}
