//! Sample-and-hold (Estan & Varghese, IMW 2001) — size-dependent
//! sampling for large-flow identification, one of the related-work
//! baselines the paper positions against (§I: "a random sampling
//! algorithm to identify large flows, in which the sampling probability
//! is determined according to the inspected packet size").
//!
//! Each byte of an unmonitored flow triggers entry creation with
//! probability `p`; once a flow has an entry, *every* subsequent byte is
//! counted exactly. Large flows are caught almost surely while the flow
//! table stays small — precisely the bias-toward-big-values idea that
//! BSS applies to time series.

use crate::trace::PacketTrace;
use rand::Rng;
use sst_stats::rng::{derive_seed, rng_from_seed};
use std::collections::BTreeMap;

/// The sample-and-hold monitor configuration.
///
/// # Examples
///
/// ```
/// use sst_nettrace::heavyhitter::SampleAndHold;
/// use sst_nettrace::TraceSynthesizer;
///
/// let trace = TraceSynthesizer::bell_labs_like().duration(5.0).synthesize(1);
/// let report = SampleAndHold::new(1e-4).run(&trace, 7);
/// assert!(report.table_len() <= trace.flows().len());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleAndHold {
    byte_prob: f64,
}

impl SampleAndHold {
    /// Creates a monitor that starts tracking a flow with probability
    /// `byte_prob` per byte. Estan-Varghese's guidance: to catch flows
    /// above a fraction `f` of link capacity with oversampling factor
    /// `O`, set `byte_prob = O / (f · total_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < byte_prob <= 1`.
    pub fn new(byte_prob: f64) -> Self {
        assert!(
            byte_prob > 0.0 && byte_prob <= 1.0,
            "per-byte probability must be in (0,1], got {byte_prob}"
        );
        SampleAndHold { byte_prob }
    }

    /// The per-byte table-entry creation probability.
    pub fn byte_prob(&self) -> f64 {
        self.byte_prob
    }

    /// Sizes the monitor to catch flows above `threshold_bytes` with
    /// oversampling factor `oversampling` (≈ probability of missing
    /// such a flow is `e^{-oversampling}`).
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn for_threshold(threshold_bytes: f64, oversampling: f64) -> Self {
        assert!(threshold_bytes > 0.0, "threshold must be positive");
        assert!(oversampling > 0.0, "oversampling must be positive");
        SampleAndHold::new((oversampling / threshold_bytes).min(1.0))
    }

    /// Runs the monitor over a trace.
    pub fn run(&self, trace: &PacketTrace, seed: u64) -> SampleAndHoldReport {
        let mut rng = rng_from_seed(derive_seed(seed, 0xE57A));
        let mut table: BTreeMap<u32, u64> = BTreeMap::new();
        for p in trace.packets() {
            if let Some(bytes) = table.get_mut(&p.flow) {
                *bytes += p.size as u64;
                continue;
            }
            // P(entry created by this packet) = 1 − (1−p)^size.
            let p_pkt = 1.0 - (1.0 - self.byte_prob).powi(p.size as i32);
            if rng.gen::<f64>() < p_pkt {
                table.insert(p.flow, p.size as u64);
            }
        }
        SampleAndHoldReport {
            table,
            byte_prob: self.byte_prob,
        }
    }
}

/// The flow table after a sample-and-hold pass.
#[derive(Clone, Debug)]
pub struct SampleAndHoldReport {
    table: BTreeMap<u32, u64>,
    byte_prob: f64,
}

impl SampleAndHoldReport {
    /// Bytes counted per monitored flow (undercounts by the bytes seen
    /// before the entry was created).
    pub fn counted_bytes(&self) -> &BTreeMap<u32, u64> {
        &self.table
    }

    /// Number of flows that acquired a table entry.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Bias-corrected usage estimate per flow: sample-and-hold misses
    /// on average `1/p` bytes before the entry exists, so add it back.
    pub fn corrected_bytes(&self) -> BTreeMap<u32, f64> {
        self.table
            .iter()
            .map(|(&f, &b)| (f, b as f64 + 1.0 / self.byte_prob))
            .collect()
    }

    /// Flows whose counted bytes reach `threshold`, descending by count —
    /// the reported heavy hitters.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .table
            .iter()
            .filter(|&(_, &b)| b >= threshold)
            .map(|(&f, &b)| (f, b))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Exact per-flow byte totals — the ground truth the monitor is judged
/// against.
pub fn exact_flow_bytes(trace: &PacketTrace) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for p in trace.packets() {
        *out.entry(p.flow).or_insert(0) += p.size as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Packet, Protocol};
    use crate::synth::TraceSynthesizer;

    fn flow(src: u32) -> FlowKey {
        FlowKey {
            src,
            dst: 0,
            src_port: 1,
            dst_port: 2,
            proto: Protocol::Tcp,
        }
    }

    /// One elephant flow (1 MB) among 999 mice (1 kB each).
    fn elephant_trace() -> PacketTrace {
        let mut flows = vec![flow(0)];
        let mut packets = Vec::new();
        let mut t = 0.0;
        for _ in 0..1000 {
            packets.push(Packet::new(t, 1000, 0));
            t += 0.001;
        }
        for m in 1..1000u32 {
            flows.push(flow(m));
            packets.push(Packet::new(t, 1000, m));
            t += 0.001;
        }
        PacketTrace::new(flows, packets, t)
    }

    #[test]
    fn elephant_is_caught_mice_are_mostly_not() {
        let trace = elephant_trace();
        // p chosen so the elephant (1 MB) is near-certain, a mouse
        // (1 kB) has ~1% chance: p = 1e-5 per byte.
        let report = SampleAndHold::new(1e-5).run(&trace, 3);
        let hh = report.heavy_hitters(100_000);
        assert_eq!(hh.len(), 1, "exactly the elephant: {hh:?}");
        assert_eq!(hh[0].0, 0);
        assert!(
            report.table_len() < 100,
            "table stayed small: {}",
            report.table_len()
        );
    }

    #[test]
    fn miss_probability_matches_oversampling() {
        // With for_threshold(T, O), a flow of exactly T bytes is missed
        // with probability ≈ e^-O. Use O = 3 → ≈ 5%.
        let trace = elephant_trace();
        let sh = SampleAndHold::for_threshold(1_000_000.0, 3.0);
        let mut missed = 0;
        let runs = 200;
        for seed in 0..runs {
            if !SampleAndHold::run(&sh, &trace, seed)
                .counted_bytes()
                .contains_key(&0)
            {
                missed += 1;
            }
        }
        let miss_rate = missed as f64 / runs as f64;
        assert!(
            miss_rate < 0.12,
            "miss rate {miss_rate} (expect ≈ e^-3 ≈ 0.05)"
        );
    }

    #[test]
    fn counted_bytes_never_exceed_exact() {
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(5.0)
            .synthesize(4);
        let exact = exact_flow_bytes(&trace);
        let report = SampleAndHold::new(1e-4).run(&trace, 9);
        for (f, &counted) in report.counted_bytes() {
            assert!(
                counted <= exact[f],
                "flow {f}: counted {counted} > exact {}",
                exact[f]
            );
        }
    }

    #[test]
    fn correction_reduces_bias_on_average() {
        let trace = elephant_trace();
        let exact = exact_flow_bytes(&trace)[&0] as f64;
        let mut raw_err = 0.0;
        let mut corr_err = 0.0;
        let mut n = 0;
        for seed in 0..50 {
            let report = SampleAndHold::new(1e-5).run(&trace, seed);
            if let Some(&b) = report.counted_bytes().get(&0) {
                raw_err += exact - b as f64; // always >= 0
                corr_err += (exact - report.corrected_bytes()[&0]).abs();
                n += 1;
            }
        }
        assert!(n > 40, "elephant almost always caught");
        assert!(
            corr_err < raw_err,
            "correction should shrink the bias: raw {raw_err:.0} corrected {corr_err:.0}"
        );
    }

    #[test]
    fn full_probability_counts_everything_exactly() {
        let trace = elephant_trace();
        let report = SampleAndHold::new(1.0).run(&trace, 0);
        assert_eq!(report.counted_bytes(), &exact_flow_bytes(&trace));
    }

    #[test]
    fn empty_trace_is_benign() {
        let trace = PacketTrace::new(vec![], vec![], 1.0);
        let report = SampleAndHold::new(0.01).run(&trace, 0);
        assert_eq!(report.table_len(), 0);
        assert!(report.heavy_hitters(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "per-byte probability")]
    fn invalid_probability_rejected() {
        SampleAndHold::new(0.0);
    }
}
