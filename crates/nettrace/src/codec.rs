//! Compact binary codec for packet traces.
//!
//! Multi-million-packet traces are the norm here (the paper's Bell Labs
//! capture), so the wire format is a fixed-layout little-endian encoding
//! (16 bytes/packet) rather than a self-describing one. A serde model is
//! also derived on the types for interoperability; this codec is the
//! fast path.

use crate::packet::{FlowKey, Packet, Protocol};
use crate::trace::PacketTrace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes + version prefix of the format.
const MAGIC: &[u8; 6] = b"SSTRC1";

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not begin with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an invalid value (protocol tag, flow index, order).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("not a packet-trace buffer (bad magic)"),
            CodecError::Truncated => f.write_str("buffer truncated"),
            CodecError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a trace into a freshly allocated buffer.
pub fn encode(trace: &PacketTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        MAGIC.len() + 8 + 8 + 13 * trace.flows().len() + 8 + 20 * trace.len(),
    );
    buf.put_slice(MAGIC);
    buf.put_f64_le(trace.duration());
    buf.put_u64_le(trace.flows().len() as u64);
    for f in trace.flows() {
        buf.put_u32_le(f.src);
        buf.put_u32_le(f.dst);
        buf.put_u16_le(f.src_port);
        buf.put_u16_le(f.dst_port);
        buf.put_u8(match f.proto {
            Protocol::Tcp => 0,
            Protocol::Udp => 1,
        });
    }
    buf.put_u64_le(trace.len() as u64);
    for p in trace.packets() {
        buf.put_f64_le(p.time);
        buf.put_u32_le(p.size);
        buf.put_u32_le(p.flow);
    }
    buf.freeze()
}

/// Deserializes a trace from a buffer produced by [`encode`].
///
/// # Errors
///
/// Any structural problem yields a [`CodecError`]; the function never
/// panics on untrusted input.
pub fn decode(mut buf: &[u8]) -> Result<PacketTrace, CodecError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf.advance(MAGIC.len());
    if buf.remaining() < 16 {
        return Err(CodecError::Truncated);
    }
    let duration = buf.get_f64_le();
    if !(duration.is_finite() && duration >= 0.0) {
        return Err(CodecError::Corrupt("duration"));
    }
    let n_flows = buf.get_u64_le() as usize;
    if buf.remaining() < n_flows.saturating_mul(13) {
        return Err(CodecError::Truncated);
    }
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let src = buf.get_u32_le();
        let dst = buf.get_u32_le();
        let src_port = buf.get_u16_le();
        let dst_port = buf.get_u16_le();
        let proto = match buf.get_u8() {
            0 => Protocol::Tcp,
            1 => Protocol::Udp,
            _ => return Err(CodecError::Corrupt("protocol tag")),
        };
        flows.push(FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            proto,
        });
    }
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n_packets = buf.get_u64_le() as usize;
    if buf.remaining() < n_packets.saturating_mul(16) {
        return Err(CodecError::Truncated);
    }
    let mut packets = Vec::with_capacity(n_packets);
    let mut prev = 0.0f64;
    for _ in 0..n_packets {
        let time = buf.get_f64_le();
        let size = buf.get_u32_le();
        let flow = buf.get_u32_le();
        if !(time.is_finite() && time >= prev && time <= duration) {
            return Err(CodecError::Corrupt("packet time"));
        }
        if size == 0 {
            return Err(CodecError::Corrupt("packet size"));
        }
        if flow as usize >= flows.len() {
            return Err(CodecError::Corrupt("flow index"));
        }
        prev = time;
        packets.push(Packet { time, size, flow });
    }
    Ok(PacketTrace::new(flows, packets, duration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TraceSynthesizer;

    #[test]
    fn round_trip_synthesized_trace() {
        let t = TraceSynthesizer::bell_labs_like()
            .duration(30.0)
            .synthesize(7);
        let encoded = encode(&t);
        let back = decode(&encoded).expect("decode");
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_empty_trace() {
        let t = PacketTrace::new(vec![], vec![], 5.0);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTATRACE"), Err(CodecError::BadMagic));
        assert_eq!(decode(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let t = TraceSynthesizer::bell_labs_like()
            .duration(10.0)
            .synthesize(1);
        let encoded = encode(&t);
        for cut in [
            MAGIC.len(),
            MAGIC.len() + 4,
            encoded.len() / 2,
            encoded.len() - 1,
        ] {
            let r = decode(&encoded[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_protocol_rejected() {
        let t = PacketTrace::new(
            vec![FlowKey {
                src: 1,
                dst: 2,
                src_port: 1,
                dst_port: 2,
                proto: Protocol::Tcp,
            }],
            vec![Packet::new(0.5, 100, 0)],
            1.0,
        );
        let mut raw = encode(&t).to_vec();
        // Protocol byte is the last byte of the single 13-byte flow record.
        let proto_off = MAGIC.len() + 8 + 8 + 12;
        raw[proto_off] = 9;
        assert_eq!(decode(&raw), Err(CodecError::Corrupt("protocol tag")));
    }

    #[test]
    fn corrupt_flow_index_rejected() {
        let t = PacketTrace::new(
            vec![FlowKey {
                src: 1,
                dst: 2,
                src_port: 1,
                dst_port: 2,
                proto: Protocol::Udp,
            }],
            vec![Packet::new(0.5, 100, 0)],
            1.0,
        );
        let mut raw = encode(&t).to_vec();
        let flow_off = raw.len() - 4;
        raw[flow_off] = 7;
        assert_eq!(decode(&raw), Err(CodecError::Corrupt("flow index")));
    }

    #[test]
    fn size_is_compact() {
        let t = TraceSynthesizer::bell_labs_like()
            .duration(30.0)
            .synthesize(2);
        let encoded = encode(&t);
        let per_packet = encoded.len() as f64 / t.len().max(1) as f64;
        assert!(per_packet < 40.0, "bytes/packet = {per_packet}");
    }
}
