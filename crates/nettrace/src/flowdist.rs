//! Flow-length distribution inversion from sampled packet streams —
//! Duffield, Lund & Thorup ("Estimating Flow Distributions from Sampled
//! Flow Statistics", SIGCOMM 2003), the last related-work thread in the
//! paper's §I.
//!
//! Under independent packet sampling with probability `p`, a flow with
//! `j` packets appears in the sampled stream as a binomially thinned
//! flow with `k ~ B(j, p)` packets, and is *invisible* when `k = 0`.
//! Given the observed frequencies `g_k` (# flows seen with `k` sampled
//! packets, `k ≥ 1`), the expectation-maximization estimator recovers
//! the original flow-length frequencies `λ_j`:
//!
//! ```text
//! E-step:  P(j | k) = λ_j·B(k; j, p) / Σ_{j'} λ_{j'}·B(k; j', p)
//! M-step:  λ_j ← Σ_{k≥1} g_k·P(j | k)  +  λ_j·B(0; j, p)
//! ```
//!
//! (observed flows are attributed to original lengths by responsibility;
//! invisible flows are carried at their current expected mass).

use sst_sigproc::special::ln_choose;
use std::collections::BTreeMap;

/// Log of the binomial pmf `B(k; j, p)`.
fn ln_binom_pmf(k: usize, j: usize, p: f64) -> f64 {
    if k > j {
        return f64::NEG_INFINITY;
    }
    ln_choose(j as f64, k as f64) + (k as f64) * p.ln() + ((j - k) as f64) * (1.0 - p).ln_1p_safe()
}

trait Ln1pSafe {
    /// `ln(self)` computed as `ln1p(self − 1)` for accuracy near 1, with
    /// `p = 1` handled (`ln 0 = −∞` only multiplied by zero upstream).
    fn ln_1p_safe(self) -> f64;
}

impl Ln1pSafe for f64 {
    fn ln_1p_safe(self) -> f64 {
        if self <= 0.0 {
            f64::NEG_INFINITY
        } else {
            (self - 1.0).ln_1p()
        }
    }
}

/// Configuration for the EM inversion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EmConfig {
    /// Largest original flow length considered (support cutoff `J`).
    pub max_length: usize,
    /// EM iterations.
    pub iterations: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_length: 1 << 12,
            iterations: 60,
        }
    }
}

/// The estimated original flow-length distribution.
#[derive(Clone, Debug)]
pub struct FlowDistEstimate {
    /// Expected number of original flows of each length `j ≥ 1`
    /// (index 0 ↔ length 1).
    lambdas: Vec<f64>,
    sampling_prob: f64,
}

impl FlowDistEstimate {
    /// Expected flow counts per length, `λ_j` for `j = 1…J`.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Estimated total number of original flows (including the ones the
    /// sample never saw).
    pub fn total_flows(&self) -> f64 {
        self.lambdas.iter().sum()
    }

    /// Estimated mean original flow length in packets.
    pub fn mean_length(&self) -> f64 {
        let total = self.total_flows();
        if total <= 0.0 {
            return 0.0;
        }
        self.lambdas
            .iter()
            .enumerate()
            .map(|(i, &l)| (i + 1) as f64 * l)
            .sum::<f64>()
            / total
    }

    /// Estimated fraction of flows with length `> j`.
    pub fn ccdf(&self, j: usize) -> f64 {
        let total = self.total_flows();
        if total <= 0.0 {
            return 0.0;
        }
        self.lambdas.iter().skip(j).sum::<f64>() / total
    }

    /// The packet-sampling probability the estimate was computed for.
    pub fn sampling_prob(&self) -> f64 {
        self.sampling_prob
    }
}

/// Runs the EM inversion.
///
/// `observed` maps sampled-flow length `k ≥ 1` to the number of flows
/// observed with exactly `k` sampled packets; `p` is the packet-sampling
/// probability.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`, `config.max_length >= 1`, and every
/// observed length is `>= 1`.
pub fn invert_flow_distribution(
    observed: &BTreeMap<usize, u64>,
    p: f64,
    config: EmConfig,
) -> FlowDistEstimate {
    assert!(
        p > 0.0 && p <= 1.0,
        "sampling probability must be in (0,1], got {p}"
    );
    assert!(config.max_length >= 1, "support must be non-empty");
    assert!(
        observed.keys().all(|&k| k >= 1),
        "observed sampled lengths must be >= 1 (zero-packet flows are unobservable)"
    );

    // p = 1: nothing was thinned; the observation *is* the answer.
    if p >= 1.0 {
        let mut lambdas = vec![0.0; config.max_length];
        for (&k, &g) in observed {
            if k <= config.max_length {
                lambdas[k - 1] = g as f64;
            }
        }
        return FlowDistEstimate {
            lambdas,
            sampling_prob: p,
        };
    }

    let j_max = config.max_length;
    // Initialize λ uniformly over a plausible support: lengths up to
    // max(observed k)/p (longer flows are exponentially unlikely to be
    // invisible anyway).
    let k_max = observed.keys().copied().max().unwrap_or(1);
    let support = ((k_max as f64 / p).ceil() as usize * 2).clamp(k_max, j_max);
    let total_obs: f64 = observed.values().map(|&g| g as f64).sum();
    let mut lambdas = vec![0.0f64; j_max];
    for l in lambdas.iter_mut().take(support) {
        *l = total_obs / support as f64;
    }

    // Precompute B(0; j, p) = (1−p)^j.
    let miss: Vec<f64> = (1..=j_max).map(|j| (1.0 - p).powi(j as i32)).collect();

    for _ in 0..config.iterations {
        let mut next = vec![0.0f64; j_max];
        // Invisible mass stays put.
        for j in 0..j_max {
            next[j] += lambdas[j] * miss[j];
        }
        // Observed mass redistributed by responsibility.
        for (&k, &g) in observed {
            // Support of j for this k: j >= k; weights die off fast past
            // k/p, so truncate at a few fold for speed.
            let j_hi = (((k as f64 / p) * 4.0).ceil() as usize).clamp(k, j_max);
            let mut weights = Vec::with_capacity(j_hi - k + 1);
            let mut z = 0.0f64;
            for j in k..=j_hi {
                let w = lambdas[j - 1] * ln_binom_pmf(k, j, p).exp();
                weights.push(w);
                z += w;
            }
            if z <= 0.0 {
                // No support yet (e.g. λ zero there): attribute to j = k.
                next[k - 1] += g as f64;
                continue;
            }
            for (j, w) in (k..=j_hi).zip(weights) {
                next[j - 1] += g as f64 * w / z;
            }
        }
        lambdas = next;
    }

    FlowDistEstimate {
        lambdas,
        sampling_prob: p,
    }
}

/// Builds the observed `g_k` histogram from a sampled packet stream:
/// counts per flow id of the packets that survived sampling.
pub fn observed_flow_lengths<I: IntoIterator<Item = u32>>(
    sampled_flow_ids: I,
) -> BTreeMap<usize, u64> {
    let mut per_flow: BTreeMap<u32, usize> = BTreeMap::new();
    for f in sampled_flow_ids {
        *per_flow.entry(f).or_insert(0) += 1;
    }
    let mut g = BTreeMap::new();
    for (_, k) in per_flow {
        *g.entry(k).or_insert(0) += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sst_stats::rng::rng_from_seed;

    /// Synthesizes flows with geometric lengths, samples packets with
    /// probability `p`, and returns (g_k, true mean length, true #flows).
    fn thinned_geometric(
        n_flows: usize,
        mean_len: f64,
        p: f64,
        seed: u64,
    ) -> (BTreeMap<usize, u64>, f64, usize) {
        let mut rng = rng_from_seed(seed);
        let q = 1.0 - 1.0 / mean_len;
        let mut g = BTreeMap::new();
        let mut total_len = 0usize;
        for _ in 0..n_flows {
            // Geometric length >= 1.
            let mut j = 1usize;
            while rng.gen::<f64>() < q {
                j += 1;
            }
            total_len += j;
            let mut k = 0usize;
            for _ in 0..j {
                if rng.gen::<f64>() < p {
                    k += 1;
                }
            }
            if k > 0 {
                *g.entry(k).or_insert(0) += 1;
            }
        }
        (g, total_len as f64 / n_flows as f64, n_flows)
    }

    #[test]
    fn identity_at_full_sampling() {
        let mut obs = BTreeMap::new();
        obs.insert(1usize, 10u64);
        obs.insert(5, 3);
        let est = invert_flow_distribution(&obs, 1.0, EmConfig::default());
        assert_eq!(est.lambdas()[0], 10.0);
        assert_eq!(est.lambdas()[4], 3.0);
        assert_eq!(est.total_flows(), 13.0);
    }

    #[test]
    fn recovers_total_flow_count_under_thinning() {
        let (g, _, n) = thinned_geometric(20_000, 20.0, 0.1, 7);
        let est = invert_flow_distribution(&g, 0.1, EmConfig::default());
        let ratio = est.total_flows() / n as f64;
        assert!(
            (ratio - 1.0).abs() < 0.15,
            "estimated {} flows, truth {n} (ratio {ratio:.3})",
            est.total_flows()
        );
    }

    #[test]
    fn recovers_mean_flow_length_under_thinning() {
        let (g, true_mean, _) = thinned_geometric(20_000, 20.0, 0.1, 13);
        let est = invert_flow_distribution(&g, 0.1, EmConfig::default());
        let ratio = est.mean_length() / true_mean;
        assert!(
            (ratio - 1.0).abs() < 0.15,
            "estimated mean {:.2}, truth {true_mean:.2}",
            est.mean_length()
        );
    }

    #[test]
    fn naive_scaling_is_much_worse_for_short_flows() {
        // The estimator the EM replaces: count observed flows. It misses
        // all invisible flows, so its flow count is biased low — badly
        // when flows are short. (At p = 0.1 and mean length 4, ~70% of
        // flows are invisible.)
        let (g, _, n) = thinned_geometric(20_000, 4.0, 0.1, 3);
        let cfg = EmConfig {
            iterations: 200,
            ..EmConfig::default()
        };
        let est = invert_flow_distribution(&g, 0.1, cfg);
        let naive_count: f64 = g.values().map(|&v| v as f64).sum();
        let em_err = (est.total_flows() / n as f64 - 1.0).abs();
        let naive_err = (naive_count / n as f64 - 1.0).abs();
        assert!(
            em_err < naive_err / 2.0,
            "EM err {em_err:.3} should crush naive err {naive_err:.3}"
        );
    }

    #[test]
    fn ccdf_is_monotone_and_normalized() {
        let (g, _, _) = thinned_geometric(5_000, 10.0, 0.2, 1);
        let est = invert_flow_distribution(&g, 0.2, EmConfig::default());
        assert!(
            (est.ccdf(0) - 1.0).abs() < 1e-9,
            "ccdf(0) = {}",
            est.ccdf(0)
        );
        let mut prev = 1.0;
        for j in 1..100 {
            let c = est.ccdf(j);
            assert!(c <= prev + 1e-12, "ccdf not monotone at {j}");
            prev = c;
        }
    }

    #[test]
    fn observed_histogram_builder() {
        let g = observed_flow_lengths([1u32, 1, 2, 3, 3, 3]);
        assert_eq!(g[&1], 1); // flow 2
        assert_eq!(g[&2], 1); // flow 1
        assert_eq!(g[&3], 1); // flow 3
    }

    #[test]
    fn empty_observation_is_benign() {
        let est = invert_flow_distribution(&BTreeMap::new(), 0.5, EmConfig::default());
        assert_eq!(est.total_flows(), 0.0);
        assert_eq!(est.mean_length(), 0.0);
        assert_eq!(est.ccdf(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn invalid_probability_rejected() {
        invert_flow_distribution(&BTreeMap::new(), 0.0, EmConfig::default());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_length_observation_rejected() {
        let mut g = BTreeMap::new();
        g.insert(0usize, 5u64);
        invert_flow_distribution(&g, 0.5, EmConfig::default());
    }

    #[test]
    fn end_to_end_with_packet_sampling() {
        use crate::flowstats::sample_packets;
        use crate::synth::TraceSynthesizer;
        // Sample a synthesized trace and invert: the estimated total
        // flow count must land nearer the truth than the naive count of
        // observed flows.
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(120.0)
            .synthesize(5);
        let p = 0.2;
        let sampled = sample_packets(&trace, p, 3);
        let mut g: BTreeMap<usize, u64> = BTreeMap::new();
        for (_, k) in sampled.flow_counts() {
            *g.entry(k as usize).or_insert(0) += 1;
        }
        let est = invert_flow_distribution(&g, p, EmConfig::default());
        let truth = crate::heavyhitter::exact_flow_bytes(&trace).len() as f64;
        let naive: f64 = g.values().map(|&v| v as f64).sum();
        let em_err = (est.total_flows() - truth).abs();
        let naive_err = (naive - truth).abs();
        assert!(
            em_err <= naive_err,
            "EM {:.1} vs naive {naive:.1}, truth {truth}",
            est.total_flows()
        );
    }
}
