//! Flow-level trace synthesis — the Bell-Labs-trace substitute.
//!
//! The paper's real traces (Bell Labs, March 8 2000, ~40 minutes,
//! hundreds of host pairs) are no longer retrievable, so we synthesize a
//! packet trace calibrated to every property the paper reports about
//! them:
//!
//! * aggregate Hurst parameter ≈ **0.62**,
//! * marginal (binned-rate) tail index ≈ **1.71** (Fig. 8b),
//! * mean rate ≈ **1.21 × 10⁴ bytes/s** for the measured subset (Fig. 6b),
//! * hundreds of OD pairs, TCP/UDP mix, realistic packet sizes.
//!
//! The construction is flow-level (an M/G/∞ body): sessions arrive
//! Poisson, each transfers a Pareto-distributed byte volume at a bounded
//! random rate, so session *durations* are heavy-tailed with the same
//! shape `α_d`, and the aggregate rate process is LRD with
//! `H = (3 − α_d)/2` (Taqqu's limit). Choosing `α_d = 3 − 2·0.62 = 1.76`
//! pins the Hurst parameter; the burst concurrency then produces a
//! binned-rate tail that measures ≈ 1.7 like the paper's.

use crate::packet::{FlowKey, Packet, Protocol};
use crate::trace::PacketTrace;
use rand::Rng;
use sst_stats::dist::{poisson, BoundedPareto, Distribution, Pareto};
use sst_stats::rng::rng_from_seed;

/// Canonical packet sizes (bytes) and their probabilities — the classic
/// trimodal Internet mix (ACK / default-MTU / Ethernet-MTU).
const PACKET_SIZE_MIX: [(u32, f64); 3] = [(40, 0.5), (576, 0.25), (1500, 0.25)];

/// Configuration for the flow-level synthesizer.
///
/// # Examples
///
/// ```
/// use sst_nettrace::TraceSynthesizer;
/// let trace = TraceSynthesizer::bell_labs_like().duration(60.0).synthesize(7);
/// assert!(trace.len() > 0);
/// assert!(trace.duration() >= 60.0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceSynthesizer {
    duration: f64,
    target_hurst: f64,
    mean_rate: f64,
    mean_flow_bytes: f64,
    n_hosts: u32,
    min_flow_rate: f64,
    max_flow_rate: f64,
}

impl TraceSynthesizer {
    /// The Bell-Labs-calibrated preset: 40 minutes, H ≈ 0.62, mean rate
    /// 1.21e4 B/s, ~200 hosts. (Use [`TraceSynthesizer::duration`] and
    /// [`TraceSynthesizer::mean_rate`] to scale runs down for tests.)
    pub fn bell_labs_like() -> Self {
        TraceSynthesizer {
            duration: 2400.0,
            target_hurst: 0.62,
            mean_rate: 1.21e4,
            mean_flow_bytes: 3.0e4,
            n_hosts: 200,
            min_flow_rate: 5.0e4,
            max_flow_rate: 2.0e7,
        }
    }

    /// Sets the trace duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn duration(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "duration must be positive");
        self.duration = secs;
        self
    }

    /// Sets the target aggregate Hurst parameter (must be in `(1/2, 1)`).
    ///
    /// # Panics
    ///
    /// Panics outside `(1/2, 1)`.
    pub fn target_hurst(mut self, h: f64) -> Self {
        assert!(h > 0.5 && h < 1.0, "Hurst must be in (1/2,1)");
        self.target_hurst = h;
        self
    }

    /// Sets the target mean rate in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn mean_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "mean rate must be positive");
        self.mean_rate = rate;
        self
    }

    /// Sets the number of distinct hosts (OD endpoints).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2.
    pub fn hosts(mut self, n: u32) -> Self {
        assert!(n >= 2, "need at least two hosts");
        self.n_hosts = n;
        self
    }

    /// The flow-duration tail shape implied by the target Hurst:
    /// `α_d = 3 − 2H`.
    pub fn duration_shape(&self) -> f64 {
        3.0 - 2.0 * self.target_hurst
    }

    /// Synthesizes the packet trace deterministically from `seed`.
    pub fn synthesize(&self, seed: u64) -> PacketTrace {
        let mut rng = rng_from_seed(seed);
        let alpha_d = self.duration_shape();
        let size_dist = Pareto::with_mean(alpha_d, self.mean_flow_bytes);
        // λ flows/s so that λ·E[S] = mean_rate.
        let lambda = self.mean_rate / self.mean_flow_bytes;
        let trains = TrainModel::new(self.min_flow_rate, self.max_flow_rate);

        // Zipf-ish popularity over hosts: host i chosen ∝ 1/(i+1).
        let weights: Vec<f64> = (0..self.n_hosts).map(|i| 1.0 / (i + 1) as f64).collect();
        let total_w: f64 = weights.iter().sum();

        let mut flows: Vec<FlowKey> = Vec::new();
        let mut packets: Vec<Packet> = Vec::new();
        // Warm-up before t=0 so long flows already in progress at the
        // trace start contribute (stationarity).
        let warmup = (5.0 * self.mean_flow_bytes / self.min_flow_rate).max(30.0);
        let dt_arrivals = 0.1; // arrival bookkeeping granularity, seconds
        let mut t = -warmup;
        while t < self.duration {
            let n_new = poisson(&mut rng, lambda * dt_arrivals);
            for _ in 0..n_new {
                let start = t + rng.gen::<f64>() * dt_arrivals;
                let bytes = size_dist.sample(&mut rng);
                let key = self.random_flow_key(&mut rng, &weights, total_w);
                let flow_id = flows.len() as u32;
                flows.push(key);
                trains.emit_flow(&mut rng, &mut packets, flow_id, start, bytes, self.duration);
            }
            t += dt_arrivals;
        }
        packets.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        // Drop flows that produced no packets inside [0, duration] to keep
        // the table tight: rebuild the index mapping.
        let mut used = vec![false; flows.len()];
        for p in &packets {
            used[p.flow as usize] = true;
        }
        let mut remap = vec![u32::MAX; flows.len()];
        let mut kept: Vec<FlowKey> = Vec::new();
        for (i, flag) in used.iter().enumerate() {
            if *flag {
                remap[i] = kept.len() as u32;
                kept.push(flows[i]);
            }
        }
        let packets: Vec<Packet> = packets
            .into_iter()
            .map(|p| Packet {
                time: p.time,
                size: p.size,
                flow: remap[p.flow as usize],
            })
            .collect();
        PacketTrace::new(kept, packets, self.duration)
    }

    fn random_flow_key(&self, rng: &mut impl Rng, weights: &[f64], total_w: f64) -> FlowKey {
        fn pick(rng: &mut impl Rng, weights: &[f64], total_w: f64) -> u32 {
            let mut x = rng.gen::<f64>() * total_w;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i as u32;
                }
                x -= w;
            }
            (weights.len() - 1) as u32
        }
        let src = pick(rng, weights, total_w);
        let mut dst = pick(rng, weights, total_w);
        if dst == src {
            dst = (src + 1) % self.n_hosts;
        }
        let proto = if rng.gen::<f64>() < 0.9 {
            Protocol::Tcp
        } else {
            Protocol::Udp
        };
        FlowKey {
            src,
            dst,
            src_port: rng.gen_range(1024..65535),
            dst_port: *[80u16, 443, 8080, 25, 53]
                .get(rng.gen_range(0..5))
                .expect("in range"),
            proto,
        }
    }
}

/// Train-structured within-flow transmission.
///
/// A flow transfers its bytes as a sequence of packet *trains*: each
/// train has an instantaneous rate drawn from a bounded Pareto(1.71)
/// and a heavy-tailed duration, with short idle gaps in between. Two
/// calibration facts follow (both matching the paper's measurements of
/// the Bell Labs trace):
///
/// * the **time-weighted** distribution of the instantaneous rate — which
///   is what binning observes — inherits the train-rate tail (α ≈ 1.71,
///   Fig. 8b), because train durations are independent of train rates
///   (contrast: constant-rate flows weight fast flows by 1/rate and
///   lighten the observed tail by a full power);
/// * exceedance 1-bursts track train/flow durations and stay
///   heavy-tailed (Fig. 7b).
#[derive(Clone, Copy, Debug)]
struct TrainModel {
    rate_dist: BoundedPareto,
    duration_dist: Pareto,
    mean_gap: f64,
}

impl TrainModel {
    fn new(min_rate: f64, max_rate: f64) -> Self {
        TrainModel {
            rate_dist: BoundedPareto::new(1.71, min_rate, max_rate),
            // Train length: Pareto(1.5), mean 100 ms.
            duration_dist: Pareto::with_mean(1.5, 0.1),
            mean_gap: 0.15,
        }
    }

    /// Expected bytes delivered by one train, `E[R]·E[T]`.
    fn mean_train_volume(&self) -> f64 {
        self.rate_dist.mean() * self.duration_dist.mean()
    }

    /// Emits the packets of one flow from `start`; only packets landing
    /// in `[0, horizon]` are recorded.
    ///
    /// The flow's size sets its *train count* (`⌈bytes / E[R·T]⌉`), and
    /// every train then ships its full `R·T` volume. Capping a train at
    /// the flow's residual bytes would make fast trains brief (active
    /// time ∝ 1/R) and lighten the observed rate tail by one power — the
    /// train-count formulation keeps rate and active-time independent,
    /// which is what pins the binned marginal tail at the train-rate α.
    fn emit_flow(
        &self,
        rng: &mut impl Rng,
        packets: &mut Vec<Packet>,
        flow_id: u32,
        start: f64,
        bytes: f64,
        horizon: f64,
    ) {
        let n_trains = ((bytes / self.mean_train_volume()).round() as usize).max(1);
        let mut t = start;
        for _ in 0..n_trains {
            if t > horizon {
                return;
            }
            let rate = self.rate_dist.sample(rng);
            let train_len = self.duration_dist.sample(rng).min(10.0);
            let volume = rate * train_len;
            let mut shipped = 0.0f64;
            while shipped < volume {
                let size = draw_packet_size(rng);
                let effective = size.min((volume - shipped).ceil() as u32).max(40);
                if t >= 0.0 {
                    if t > horizon {
                        return;
                    }
                    packets.push(Packet {
                        time: t,
                        size: effective,
                        flow: flow_id,
                    });
                } else if t > horizon {
                    return;
                }
                shipped += effective as f64;
                t += effective as f64 / rate;
            }
            // Idle gap between trains (exponential, mean 150 ms).
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += (-u.ln()) * self.mean_gap;
        }
    }
}

fn draw_packet_size(rng: &mut impl Rng) -> u32 {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (size, p) in PACKET_SIZE_MIX {
        acc += p;
        if x < acc {
            return size;
        }
    }
    1500
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_trace(seed: u64) -> PacketTrace {
        TraceSynthesizer::bell_labs_like()
            .duration(120.0)
            .synthesize(seed)
    }

    #[test]
    fn determinism() {
        assert_eq!(quick_trace(3), quick_trace(3));
        assert_ne!(quick_trace(3), quick_trace(4));
    }

    #[test]
    fn mean_rate_close_to_target() {
        let t = TraceSynthesizer::bell_labs_like()
            .duration(600.0)
            .synthesize(11);
        let target = 1.21e4;
        // Heavy-tailed flow sizes: slow convergence; accept a wide band.
        assert!(
            (t.mean_rate() - target).abs() / target < 0.5,
            "rate={} target={target}",
            t.mean_rate()
        );
    }

    #[test]
    fn packets_sorted_and_in_horizon() {
        let t = quick_trace(5);
        let mut prev = 0.0;
        for p in t.packets() {
            assert!(p.time >= prev);
            assert!(p.time <= t.duration());
            assert!(p.size >= 40 && p.size <= 1500);
            prev = p.time;
        }
    }

    #[test]
    fn many_od_pairs() {
        let t = TraceSynthesizer::bell_labs_like()
            .duration(300.0)
            .synthesize(9);
        assert!(t.od_pair_count() > 50, "pairs={}", t.od_pair_count());
    }

    #[test]
    fn duration_shape_matches_target_hurst() {
        let s = TraceSynthesizer::bell_labs_like();
        assert!((s.duration_shape() - 1.76).abs() < 1e-12);
        let s2 = s.clone().target_hurst(0.8);
        assert!((s2.duration_shape() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn binned_series_is_lrd() {
        // Consensus Hurst of the 10 ms-binned rate should be in the LRD
        // band around the 0.62 target.
        let t = TraceSynthesizer::bell_labs_like()
            .duration(1200.0)
            .synthesize(21);
        let ts = t.to_rate_series(0.01);
        let h = sst_hurst_probe::consensus(ts.values());
        assert!(h > 0.52 && h < 0.8, "H={h}");
    }

    // Minimal local probe to avoid a dev-dependency cycle with sst-hurst:
    // aggregated-variance estimate, which is all this smoke test needs.
    mod sst_hurst_probe {
        pub fn consensus(values: &[f64]) -> f64 {
            let n = values.len();
            let var = |xs: &[f64]| {
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
            };
            let agg = |m: usize| {
                let blocks = n / m;
                let means: Vec<f64> = (0..blocks)
                    .map(|b| values[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
                    .collect();
                var(&means)
            };
            let (m1, m2) = (16usize, 1024usize);
            let (v1, v2) = (agg(m1), agg(m2));
            1.0 + ((v2 / v1).ln() / ((m2 as f64 / m1 as f64).ln())) / 2.0
        }
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn invalid_duration_panics() {
        TraceSynthesizer::bell_labs_like().duration(0.0);
    }
}
