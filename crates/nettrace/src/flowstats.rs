//! Flow statistics from sampled packet streams.
//!
//! The paper's related work (§I: Duffield, Lund & Thorup) estimates flow
//! properties from *sampled* packet streams rather than binned series.
//! This module provides that packet-level path: Bernoulli packet
//! sampling over a [`crate::PacketTrace`], inversion of per-flow packet
//! counts (`count/r` is unbiased), and detection-probability math for
//! flows of a given length — the quantities a NetFlow-style monitor
//! actually reports.

use crate::packet::Packet;
use crate::trace::PacketTrace;
use rand::Rng;
use sst_stats::rng::{derive_seed, rng_from_seed};
use std::collections::BTreeMap;

/// A packet-sampled view of a trace: the subset of packets an
/// independent-per-packet (Bernoulli) sampler at rate `r` would export.
#[derive(Clone, Debug)]
pub struct SampledPackets {
    rate: f64,
    packets: Vec<Packet>,
}

/// Bernoulli-samples the packets of `trace` at rate `rate`.
///
/// # Panics
///
/// Panics unless `0 < rate <= 1`.
pub fn sample_packets(trace: &PacketTrace, rate: f64, seed: u64) -> SampledPackets {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let mut rng = rng_from_seed(derive_seed(seed, 0xF10));
    let packets = trace
        .packets()
        .iter()
        .filter(|_| rng.gen::<f64>() < rate)
        .copied()
        .collect();
    SampledPackets { rate, packets }
}

impl SampledPackets {
    /// The sampling rate used.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of exported packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Unbiased estimate of the trace's total packet count
    /// (`exported / r`).
    pub fn estimated_total_packets(&self) -> f64 {
        self.packets.len() as f64 / self.rate
    }

    /// Unbiased estimate of the total byte volume (`Σ size / r`).
    pub fn estimated_total_bytes(&self) -> f64 {
        self.packets.iter().map(|p| p.size as f64).sum::<f64>() / self.rate
    }

    /// Per-flow exported packet counts (flow table index → count).
    pub fn flow_counts(&self) -> BTreeMap<u32, u64> {
        let mut counts = BTreeMap::new();
        for p in &self.packets {
            *counts.entry(p.flow).or_insert(0u64) += 1;
        }
        counts
    }

    /// Unbiased per-flow packet-count estimates (`count/r`) for flows
    /// with at least one exported packet. Flows missed entirely are
    /// absent — see [`detection_probability`] for how likely that is.
    pub fn estimated_flow_lengths(&self) -> BTreeMap<u32, f64> {
        self.flow_counts()
            .into_iter()
            .map(|(flow, c)| (flow, c as f64 / self.rate))
            .collect()
    }

    /// Estimated mean flow length corrected for missed flows: the naive
    /// per-detected-flow mean is biased up (short flows vanish), so the
    /// number of *flows* is also inverted through the length-dependent
    /// detection probability using the detected-length histogram.
    ///
    /// Returns `None` when no packets were exported.
    pub fn estimated_mean_flow_length(&self) -> Option<f64> {
        let counts = self.flow_counts();
        if counts.is_empty() {
            return None;
        }
        let total_pkts = self.estimated_total_packets();
        // For each detected flow, its true length estimate is c/r and the
        // detection probability of a flow of that length is
        // 1 − (1−r)^(c/r); 1/p_detect is the Horvitz-Thompson weight for
        // the flow-count denominator.
        let mut est_flows = 0.0;
        for &c in counts.values() {
            let len_est = c as f64 / self.rate;
            let p_detect = 1.0 - (1.0 - self.rate).powf(len_est);
            if p_detect > 1e-12 {
                est_flows += 1.0 / p_detect;
            }
        }
        (est_flows > 0.0).then(|| total_pkts / est_flows)
    }
}

/// Probability that a flow of `length` packets is detected at all under
/// Bernoulli sampling at `rate`: `1 − (1−r)^length`.
///
/// # Panics
///
/// Panics unless `0 < rate <= 1`.
pub fn detection_probability(length: u64, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
    1.0 - (1.0 - rate).powi(length.min(i32::MAX as u64) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TraceSynthesizer;

    fn test_trace() -> PacketTrace {
        TraceSynthesizer::bell_labs_like()
            .duration(300.0)
            .synthesize(5)
    }

    #[test]
    fn sampling_rate_is_respected() {
        let trace = test_trace();
        let s = sample_packets(&trace, 0.1, 1);
        let got = s.len() as f64 / trace.len() as f64;
        assert!((got - 0.1).abs() < 0.02, "rate={got}");
    }

    #[test]
    fn totals_are_unbiased() {
        let trace = test_trace();
        // Average the inversion over several sampling seeds.
        let (mut pkts, mut bytes) = (0.0, 0.0);
        let reps = 16;
        for seed in 0..reps {
            let s = sample_packets(&trace, 0.05, seed);
            pkts += s.estimated_total_packets();
            bytes += s.estimated_total_bytes();
        }
        pkts /= reps as f64;
        bytes /= reps as f64;
        assert!(
            (pkts - trace.len() as f64).abs() / (trace.len() as f64) < 0.1,
            "pkts={pkts} true={}",
            trace.len()
        );
        assert!(
            (bytes - trace.total_bytes() as f64).abs() / (trace.total_bytes() as f64) < 0.1,
            "bytes={bytes} true={}",
            trace.total_bytes()
        );
    }

    #[test]
    fn full_rate_is_identity() {
        let trace = test_trace();
        let s = sample_packets(&trace, 1.0, 3);
        assert_eq!(s.len(), trace.len());
        assert_eq!(s.estimated_total_packets(), trace.len() as f64);
        let per_flow = s.flow_counts();
        assert_eq!(per_flow.values().sum::<u64>() as usize, trace.len());
    }

    #[test]
    fn detection_probability_limits() {
        assert!((detection_probability(1, 0.01) - 0.01).abs() < 1e-12);
        assert!(detection_probability(1000, 0.01) > 0.99995);
        assert_eq!(detection_probability(5, 1.0), 1.0);
        assert!(detection_probability(0, 0.5) == 0.0);
    }

    #[test]
    fn mean_flow_length_correction_reduces_bias() {
        let trace = test_trace();
        // True mean packets per flow.
        let mut per_flow: BTreeMap<u32, u64> = BTreeMap::new();
        for p in trace.packets() {
            *per_flow.entry(p.flow).or_insert(0) += 1;
        }
        let true_mean = trace.len() as f64 / per_flow.len() as f64;

        let rate = 0.05;
        let (mut corrected_err, mut naive_err) = (0.0, 0.0);
        let reps = 8;
        for seed in 10..10 + reps {
            let s = sample_packets(&trace, rate, seed);
            let corrected = s.estimated_mean_flow_length().expect("packets exported");
            // Naive: average c/r over detected flows only.
            let lens = s.estimated_flow_lengths();
            let naive = lens.values().sum::<f64>() / lens.len() as f64;
            corrected_err += (corrected - true_mean).abs();
            naive_err += (naive - true_mean).abs();
        }
        assert!(
            corrected_err < naive_err,
            "HT correction should beat naive: {corrected_err:.1} vs {naive_err:.1} (truth {true_mean:.1})"
        );
    }

    #[test]
    fn empty_export_handled() {
        let trace = PacketTrace::new(vec![], vec![], 1.0);
        let s = sample_packets(&trace, 0.5, 0);
        assert!(s.is_empty());
        assert!(s.estimated_mean_flow_length().is_none());
        assert_eq!(s.estimated_total_bytes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_rejected() {
        sample_packets(&test_trace(), 0.0, 1);
    }
}
