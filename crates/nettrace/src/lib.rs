//! # sst-nettrace — packet-trace substrate
//!
//! The Bell-Labs-trace substitute for the He & Hou (ICDCS 2005)
//! reproduction: tcpdump-level packet records with OD-flow identity, a
//! flow-level synthesizer calibrated to everything the paper reports
//! about its real traces (H ≈ 0.62, marginal tail α ≈ 1.71, mean rate
//! 1.21e4 B/s, hundreds of host pairs, ~40 minutes), reductions to binned
//! rate processes, and a compact binary codec.
//!
//! ## Example
//!
//! ```
//! use sst_nettrace::TraceSynthesizer;
//!
//! let trace = TraceSynthesizer::bell_labs_like().duration(30.0).synthesize(1);
//! let rate = trace.to_rate_series(0.001); // 1 ms bins, bytes/second
//! assert_eq!(rate.len(), 30_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod flowdist;
pub mod flowstats;
pub mod heavyhitter;
pub mod packet;
pub mod pktsampling;
pub mod synth;
pub mod trace;
pub mod trajectory;

pub use codec::{decode, encode, CodecError};
pub use flowdist::{invert_flow_distribution, observed_flow_lengths, EmConfig, FlowDistEstimate};
pub use flowstats::{detection_probability, sample_packets, SampledPackets};
pub use heavyhitter::{exact_flow_bytes, SampleAndHold, SampleAndHoldReport};
pub use packet::{FlowKey, Packet, Protocol};
pub use pktsampling::{ks_distance, PacketSampler, SampledTrace, SelectionPattern, Trigger};
pub use synth::TraceSynthesizer;
pub use trace::PacketTrace;
pub use trajectory::{PacketId, TrajectorySampler};

#[cfg(test)]
mod proptests {
    use crate::codec::{decode, encode};
    use crate::packet::{FlowKey, Packet, Protocol};
    use crate::trace::PacketTrace;
    use proptest::prelude::*;

    fn arb_trace() -> impl Strategy<Value = PacketTrace> {
        (
            1usize..6,
            proptest::collection::vec((0.0f64..10.0, 1u32..2000), 0..50),
        )
            .prop_map(|(n_flows, mut raw)| {
                let flows: Vec<FlowKey> = (0..n_flows)
                    .map(|i| FlowKey {
                        src: i as u32,
                        dst: (i + 1) as u32,
                        src_port: 1000 + i as u16,
                        dst_port: 80,
                        proto: if i % 2 == 0 {
                            Protocol::Tcp
                        } else {
                            Protocol::Udp
                        },
                    })
                    .collect();
                raw.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let packets: Vec<Packet> = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (t, s))| Packet::new(t, s, (i % n_flows) as u32))
                    .collect();
                PacketTrace::new(flows, packets, 10.0)
            })
    }

    proptest! {
        #[test]
        fn codec_round_trip(trace in arb_trace()) {
            let back = decode(&encode(&trace)).unwrap();
            prop_assert_eq!(trace, back);
        }

        #[test]
        fn binning_conserves_bytes(trace in arb_trace(), dt in 0.01f64..1.0) {
            let ts = trace.to_rate_series(dt);
            let binned_bytes: f64 = ts.values().iter().map(|r| r * dt).sum();
            prop_assert!((binned_bytes - trace.total_bytes() as f64).abs() < 1e-6);
        }

        #[test]
        fn od_volumes_sum_to_total(trace in arb_trace()) {
            let total: u64 = trace.od_volumes().into_iter().map(|(_, v)| v).sum();
            prop_assert_eq!(total, trace.total_bytes());
        }
    }
}
