//! The packet-trace container and its reductions to time series.

use crate::packet::{FlowKey, Packet};
use serde::{Deserialize, Serialize};
use sst_stats::TimeSeries;
use std::collections::BTreeMap;

/// A captured (or synthesized) packet trace with its flow table.
///
/// Packets are kept sorted by timestamp; flows are deduplicated into a
/// table and packets reference them by index.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PacketTrace {
    flows: Vec<FlowKey>,
    packets: Vec<Packet>,
    duration: f64,
}

impl PacketTrace {
    /// Creates a trace from parts.
    ///
    /// # Panics
    ///
    /// Panics if any packet references a missing flow, timestamps exceed
    /// `duration`, or packets are not sorted by time.
    pub fn new(flows: Vec<FlowKey>, packets: Vec<Packet>, duration: f64) -> Self {
        assert!(duration >= 0.0 && duration.is_finite(), "invalid duration");
        let mut prev = 0.0f64;
        for p in &packets {
            assert!(
                (p.flow as usize) < flows.len(),
                "packet references unknown flow {}",
                p.flow
            );
            assert!(
                p.time <= duration,
                "packet at {} beyond duration {duration}",
                p.time
            );
            assert!(p.time >= prev, "packets must be sorted by time");
            prev = p.time;
        }
        PacketTrace {
            flows,
            packets,
            duration,
        }
    }

    /// The flow table.
    pub fn flows(&self) -> &[FlowKey] {
        &self.flows
    }

    /// The packets, sorted by time.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size as u64).sum()
    }

    /// Mean rate in bytes/second over the full duration.
    pub fn mean_rate(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.duration
        }
    }

    /// Bins the trace into a rate process: `f(t)` = bytes in bin `t`
    /// divided by `dt`, i.e. instantaneous rate in bytes/second at
    /// granularity `dt` — exactly the measured process the paper samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn to_rate_series(&self, dt: f64) -> TimeSeries {
        self.to_rate_series_filtered(dt, |_| true)
    }

    /// [`PacketTrace::to_rate_series`] restricted to packets whose flow
    /// satisfies `keep` — the "one or several OD-flows" measurement the
    /// paper motivates (§I).
    pub fn to_rate_series_filtered<F>(&self, dt: f64, keep: F) -> TimeSeries
    where
        F: Fn(&FlowKey) -> bool,
    {
        assert!(dt > 0.0 && dt.is_finite(), "bin width must be positive");
        let n = (self.duration / dt).ceil().max(1.0) as usize;
        let mut bins = vec![0.0f64; n];
        for p in &self.packets {
            if !keep(&self.flows[p.flow as usize]) {
                continue;
            }
            let idx = ((p.time / dt) as usize).min(n - 1);
            bins[idx] += p.size as f64;
        }
        for b in bins.iter_mut() {
            *b /= dt;
        }
        TimeSeries::from_values(dt, bins)
    }

    /// Rate series for a single OD pair (unordered host pair).
    pub fn od_rate_series(&self, pair: (u32, u32), dt: f64) -> TimeSeries {
        let pair = if pair.0 <= pair.1 {
            pair
        } else {
            (pair.1, pair.0)
        };
        self.to_rate_series_filtered(dt, |k| k.od_pair() == pair)
    }

    /// Byte volume per OD pair, descending — the "which pairs matter"
    /// view used by the accounting example.
    pub fn od_volumes(&self) -> Vec<((u32, u32), u64)> {
        let mut by_pair: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for p in &self.packets {
            let pair = self.flows[p.flow as usize].od_pair();
            *by_pair.entry(pair).or_insert(0) += p.size as u64;
        }
        let mut out: Vec<_> = by_pair.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// OD-keyed monitoring points: one `(key, bytes)` pair per packet,
    /// in arrival order, where the key packs the packet's unordered OD
    /// pair (`lo << 32 | hi`) — the natural feed for a per-flow
    /// monitoring engine (`sst-monitor`), which routes streams by key.
    pub fn od_keyed_points(&self) -> Vec<(u64, f64)> {
        self.packets
            .iter()
            .map(|p| {
                let (a, b) = self.flows[p.flow as usize].od_pair();
                (((a as u64) << 32) | b as u64, p.size as f64)
            })
            .collect()
    }

    /// Monitoring points keyed by an arbitrary flow attribute: one
    /// `(key(flow), bytes)` pair per packet in arrival order. The
    /// generalization behind [`PacketTrace::od_keyed_points`] — pick
    /// the key granularity the monitor should shard on.
    pub fn keyed_points_by<F>(&self, key: F) -> Vec<(u64, f64)>
    where
        F: Fn(&FlowKey) -> u64,
    {
        self.packets
            .iter()
            .map(|p| (key(&self.flows[p.flow as usize]), p.size as f64))
            .collect()
    }

    /// Monitoring points keyed by the full 5-tuple (src, dst, ports,
    /// protocol — mixed into a single u64). Where OD-pair keys bound
    /// stream cardinality by the host count, 5-tuple keys grow with
    /// *connection* churn — the workload that makes eviction and
    /// compaction in a monitoring engine load-bearing.
    pub fn flow_keyed_points(&self) -> Vec<(u64, f64)> {
        self.keyed_points_by(flow_tuple_key)
    }

    /// Distinct 5-tuple flows in the trace (the key cardinality
    /// [`PacketTrace::flow_keyed_points`] exposes to a monitor).
    pub fn flow_key_count(&self) -> usize {
        let mut keys: Vec<u64> = self.flows.iter().map(flow_tuple_key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Number of distinct OD pairs.
    pub fn od_pair_count(&self) -> usize {
        let mut pairs: Vec<(u32, u32)> = self
            .packets
            .iter()
            .map(|p| self.flows[p.flow as usize].od_pair())
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }
}

/// Packs a 5-tuple into a well-mixed u64 key (SplitMix64 finalizer over
/// the packed fields) — deterministic across runs and platforms.
fn flow_tuple_key(k: &FlowKey) -> u64 {
    let hi = ((k.src as u64) << 32) | k.dst as u64;
    let lo = ((k.src_port as u64) << 48) | ((k.dst_port as u64) << 32) | (k.proto as u8 as u64);
    let mut z = hi ^ lo.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lo ^ 0xA5);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;

    fn key(src: u32, dst: u32) -> FlowKey {
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    fn tiny_trace() -> PacketTrace {
        let flows = vec![key(1, 2), key(3, 4)];
        let packets = vec![
            Packet::new(0.1, 100, 0),
            Packet::new(0.6, 200, 1),
            Packet::new(1.2, 300, 0),
            Packet::new(1.9, 400, 1),
        ];
        PacketTrace::new(flows, packets, 2.0)
    }

    #[test]
    fn totals_and_rate() {
        let t = tiny_trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_bytes(), 1000);
        assert!((t.mean_rate() - 500.0).abs() < 1e-12);
        assert_eq!(t.od_pair_count(), 2);
    }

    #[test]
    fn binning_into_rate_series() {
        let t = tiny_trace();
        let ts = t.to_rate_series(1.0);
        assert_eq!(ts.len(), 2);
        assert!((ts.values()[0] - 300.0).abs() < 1e-12);
        assert!((ts.values()[1] - 700.0).abs() < 1e-12);
        // Mean of the rate series equals the trace mean rate.
        assert!((ts.mean() - t.mean_rate()).abs() < 1e-12);
    }

    #[test]
    fn od_filter_selects_one_pair() {
        let t = tiny_trace();
        let ts = t.od_rate_series((2, 1), 1.0);
        assert!((ts.values()[0] - 100.0).abs() < 1e-12);
        assert!((ts.values()[1] - 300.0).abs() < 1e-12);
    }

    #[test]
    fn od_volumes_sorted_desc() {
        let t = tiny_trace();
        let v = t.od_volumes();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], ((3, 4), 600));
        assert_eq!(v[1], ((1, 2), 400));
    }

    #[test]
    fn flow_keyed_points_distinguish_five_tuples() {
        // Same OD pair, different ports → one OD key but two flow keys.
        let mut k2 = key(1, 2);
        k2.src_port = 2000;
        let flows = vec![key(1, 2), k2];
        let packets = vec![
            Packet::new(0.1, 100, 0),
            Packet::new(0.2, 200, 1),
            Packet::new(0.3, 300, 0),
        ];
        let t = PacketTrace::new(flows, packets, 1.0);
        assert_eq!(t.od_pair_count(), 1);
        assert_eq!(t.flow_key_count(), 2);
        let pts = t.flow_keyed_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0, pts[2].0, "same 5-tuple, same key");
        assert_ne!(pts[0].0, pts[1].0, "different ports, different key");
        assert_eq!(pts[1].1, 200.0);
        // The generic form with a constant key collapses everything.
        let one = t.keyed_points_by(|_| 7);
        assert!(one.iter().all(|&(k, _)| k == 7));
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = PacketTrace::new(vec![], vec![], 1.0);
        assert!(t.is_empty());
        assert_eq!(t.mean_rate(), 0.0);
        let ts = t.to_rate_series(0.1);
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_packets_rejected() {
        PacketTrace::new(
            vec![key(1, 2)],
            vec![Packet::new(1.0, 10, 0), Packet::new(0.5, 10, 0)],
            2.0,
        );
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn dangling_flow_rejected() {
        PacketTrace::new(vec![], vec![Packet::new(0.0, 10, 0)], 1.0);
    }

    #[test]
    fn last_bin_boundary_packet_is_kept() {
        let t = PacketTrace::new(vec![key(1, 2)], vec![Packet::new(2.0, 100, 0)], 2.0);
        let ts = t.to_rate_series(1.0);
        assert_eq!(ts.len(), 2);
        assert!((ts.values()[1] - 100.0).abs() < 1e-12);
    }
}
