//! `trace-tool` — synthesize, inspect, and convert packet traces.
//!
//! ```text
//! trace-tool synth [--seed N] [--duration SECS] OUT.sst   # synthesize a Bell-Labs-like trace
//! trace-tool info IN.sst                                  # summary statistics
//! trace-tool top IN.sst [K]                               # top-K OD pairs by volume
//! trace-tool rates IN.sst DT                              # binned rate series (rate per line)
//! ```
//!
//! Traces are stored in the crate's compact binary format
//! (`sst_nettrace::codec`).

use sst_nettrace::{decode, encode, PacketTrace, TraceSynthesizer};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("synth") => synth(it.collect()),
        Some("info") => info(&load(&expect_path(it.next()))),
        Some("top") => {
            let path = expect_path(it.next());
            let k = it.next().and_then(|s| s.parse().ok()).unwrap_or(10);
            top(&load(&path), k);
        }
        Some("rates") => {
            let path = expect_path(it.next());
            let dt: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die("rates needs a bin width in seconds"));
            rates(&load(&path), dt);
        }
        _ => die("usage: trace-tool synth|info|top|rates …  (see --help in the module docs)"),
    }
}

fn synth(rest: Vec<String>) {
    let mut seed = 1u64;
    let mut duration = 60.0f64;
    let mut out: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--duration" => {
                duration = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--duration needs seconds"));
            }
            other if out.is_none() => out = Some(other.to_string()),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let out = out.unwrap_or_else(|| die("synth needs an output path"));
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(duration)
        .synthesize(seed);
    let bytes = encode(&trace);
    std::fs::write(&out, &bytes).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    eprintln!(
        "wrote {out}: {} packets, {} flows, {:.0}s, {} bytes on disk",
        trace.len(),
        trace.flows().len(),
        trace.duration(),
        bytes.len()
    );
}

fn info(trace: &PacketTrace) {
    println!("packets      : {}", trace.len());
    println!("flows        : {}", trace.flows().len());
    println!("od pairs     : {}", trace.od_pair_count());
    println!("duration     : {:.3} s", trace.duration());
    println!("total bytes  : {}", trace.total_bytes());
    println!("mean rate    : {:.1} B/s", trace.mean_rate());
    if !trace.is_empty() {
        let sizes: Vec<f64> = trace.packets().iter().map(|p| p.size as f64).collect();
        let mean_size = sizes.iter().sum::<f64>() / sizes.len() as f64;
        println!("mean pkt size: {mean_size:.1} B");
    }
}

fn top(trace: &PacketTrace, k: usize) {
    println!("{:>12} {:>12} {:>14}", "src", "dst", "bytes");
    for ((a, b), bytes) in trace.od_volumes().into_iter().take(k) {
        println!("{a:>12} {b:>12} {bytes:>14}");
    }
}

fn rates(trace: &PacketTrace, dt: f64) {
    if dt <= 0.0 {
        die("bin width must be positive");
    }
    let ts = trace.to_rate_series(dt);
    let stdout = std::io::stdout();
    let mut w = std::io::BufWriter::new(stdout.lock());
    for v in ts.values() {
        writeln!(w, "{v}").expect("stdout");
    }
}

fn load(path: &str) -> PacketTrace {
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    decode(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
}

fn expect_path(arg: Option<String>) -> String {
    arg.unwrap_or_else(|| die("missing trace path"))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
