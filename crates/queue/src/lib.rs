//! # sst-queue — queueing substrate
//!
//! The downstream consumer the paper motivates: §I argues the Hurst
//! parameter "is crucial for queueing analysis", so this crate closes
//! the loop — a fluid FIFO queue driven by [`sst_stats::TimeSeries`]
//! traces, overflow statistics, and the Norros fractional-Brownian
//! dimensioning approximation. The `capacity_planning` example and the
//! queueing ablation bench feed sampled/estimated H into these tools.
//!
//! ## Example
//!
//! ```
//! use sst_queue::FluidQueue;
//! use sst_stats::TimeSeries;
//!
//! let arrivals = TimeSeries::from_values(0.001, vec![1200.0; 1000]);
//! let path = FluidQueue::new(1500.0).drive(&arrivals);
//! assert_eq!(path.mean_occupancy(), 0.0); // under-loaded: empty buffer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimensioning;
pub mod fifo;

pub use dimensioning::{effective_bandwidth, measured_buffer, required_buffer};
pub use fifo::{norros_overflow, FluidQueue, QueuePath};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sst_stats::TimeSeries;

    proptest! {
        #[test]
        fn occupancy_is_nonnegative_and_bounded(
            rates in proptest::collection::vec(0.0f64..10.0, 1..200),
            service in 0.5f64..10.0,
        ) {
            let arr = TimeSeries::from_values(1.0, rates.clone());
            let q = FluidQueue::new(service).drive(&arr);
            let total_in: f64 = rates.iter().sum();
            for &v in q.occupancy().values() {
                prop_assert!(v >= 0.0);
                prop_assert!(v <= total_in + 1e-9);
            }
        }

        #[test]
        fn higher_service_never_increases_occupancy(
            rates in proptest::collection::vec(0.0f64..10.0, 1..100),
            service in 1.0f64..5.0,
        ) {
            let arr = TimeSeries::from_values(1.0, rates);
            let slow = FluidQueue::new(service).drive(&arr);
            let fast = FluidQueue::new(service * 2.0).drive(&arr);
            for (s, f) in slow.occupancy().values().iter().zip(fast.occupancy().values()) {
                prop_assert!(*f <= s + 1e-9);
            }
        }

        #[test]
        fn overflow_curve_is_decreasing(
            rates in proptest::collection::vec(0.0f64..10.0, 16..200),
        ) {
            let arr = TimeSeries::from_values(1.0, rates);
            let q = FluidQueue::new(1.0).drive(&arr);
            let curve = q.overflow_curve(20);
            for w in curve.windows(2) {
                prop_assert!(w[1].1 <= w[0].1 + 1e-12);
            }
        }
    }
}
