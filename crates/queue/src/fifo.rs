//! Discrete-time fluid FIFO queue driven by a traffic trace.
//!
//! The Lindley recursion `Q(t+1) = max(0, Q(t) + A(t) − C·dt)` turns an
//! arrival-rate process into a buffer-occupancy process. For
//! long-range-dependent input the occupancy tail decays like a Weibull
//! (`log P(Q > b) ∝ −b^{2−2H}`) rather than exponentially — the reason
//! the paper calls the Hurst parameter "crucial for queueing analysis".

use sst_stats::{Ecdf, TimeSeries};

/// A fixed-rate fluid FIFO queue.
///
/// # Examples
///
/// ```
/// use sst_queue::FluidQueue;
/// use sst_stats::TimeSeries;
///
/// let arrivals = TimeSeries::from_values(1.0, vec![2.0, 0.0, 3.0, 0.0]);
/// let q = FluidQueue::new(1.5).drive(&arrivals);
/// assert_eq!(q.occupancy().values(), &[0.5, 0.0, 1.5, 0.0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidQueue {
    service_rate: f64,
}

impl FluidQueue {
    /// Creates a queue draining at `service_rate` (same units as the
    /// arrival process values, per second).
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn new(service_rate: f64) -> Self {
        assert!(
            service_rate > 0.0 && service_rate.is_finite(),
            "service rate must be positive"
        );
        FluidQueue { service_rate }
    }

    /// Queue sized for utilization `rho = mean(arrivals)/service_rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rho < 1` and the trace has positive mean.
    pub fn for_utilization(arrivals: &TimeSeries, rho: f64) -> Self {
        assert!(rho > 0.0 && rho < 1.0, "utilization must be in (0,1)");
        let mean = arrivals.mean();
        assert!(mean > 0.0, "arrival process must have positive mean");
        FluidQueue::new(mean / rho)
    }

    /// The configured service rate.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Runs the Lindley recursion over the arrival-rate trace and
    /// returns the occupancy sample path (in value·seconds, e.g. bytes
    /// if arrivals are bytes/s).
    pub fn drive(&self, arrivals: &TimeSeries) -> QueuePath {
        let dt = arrivals.dt();
        let mut q = 0.0f64;
        let mut path = Vec::with_capacity(arrivals.len());
        for &rate in arrivals.values() {
            q = (q + (rate - self.service_rate) * dt).max(0.0);
            path.push(q);
        }
        QueuePath {
            occupancy: TimeSeries::from_values(dt, path),
            service_rate: self.service_rate,
            offered_mean: arrivals.mean(),
        }
    }
}

/// The buffer-occupancy sample path plus its summary statistics.
#[derive(Clone, Debug)]
pub struct QueuePath {
    occupancy: TimeSeries,
    service_rate: f64,
    offered_mean: f64,
}

impl QueuePath {
    /// The occupancy process Q(t).
    pub fn occupancy(&self) -> &TimeSeries {
        &self.occupancy
    }

    /// The service rate of the queue that produced this path.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Offered load / service rate.
    pub fn utilization(&self) -> f64 {
        self.offered_mean / self.service_rate
    }

    /// Fraction of time the buffer level exceeds `b`.
    pub fn overflow_probability(&self, b: f64) -> f64 {
        if self.occupancy.is_empty() {
            return 0.0;
        }
        let over = self.occupancy.values().iter().filter(|&&q| q > b).count();
        over as f64 / self.occupancy.len() as f64
    }

    /// `(buffer, P(Q > buffer))` on a log-spaced buffer grid — the
    /// overflow curve whose shape distinguishes SRD from LRD input.
    pub fn overflow_curve(&self, points: usize) -> Vec<(f64, f64)> {
        let positive: Vec<f64> = self
            .occupancy
            .values()
            .iter()
            .copied()
            .filter(|&q| q > 0.0)
            .collect();
        if positive.is_empty() {
            return Vec::new();
        }
        let e = Ecdf::new(&positive);
        let busy = positive.len() as f64 / self.occupancy.len() as f64;
        e.ccdf_curve_log(points)
            .into_iter()
            .map(|(b, p)| (b, p * busy))
            .collect()
    }

    /// The buffer size needed so that `P(Q > b) <= target` (empirical
    /// quantile of the occupancy); `None` if even the largest observed
    /// occupancy is exceeded more often than `target`.
    pub fn buffer_for_loss(&self, target: f64) -> Option<f64> {
        assert!(target > 0.0 && target < 1.0, "loss target must be in (0,1)");
        let n = self.occupancy.len();
        if n == 0 {
            return Some(0.0);
        }
        let mut sorted = self.occupancy.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite occupancy"));
        let idx = ((1.0 - target) * n as f64).ceil() as usize;
        if idx >= n {
            return None;
        }
        Some(sorted[idx])
    }

    /// Mean occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        self.occupancy.mean()
    }
}

/// Norros' fractional-Brownian-storage overflow approximation:
/// `P(Q > b) ≈ exp(−(c−m)^{2H} b^{2−2H} / (2 κ(H)² σ² ))` with
/// `κ(H) = H^H (1−H)^{1−H}`. Used as the analytic reference curve next
/// to the measured overflow curve.
///
/// # Panics
///
/// Panics unless `0.5 <= h < 1`, `service > mean_rate`, `sigma > 0`.
pub fn norros_overflow(b: f64, h: f64, mean_rate: f64, sigma: f64, service: f64) -> f64 {
    assert!((0.5..1.0).contains(&h), "H must be in [0.5, 1)");
    assert!(
        service > mean_rate,
        "queue must be stable (service > mean rate)"
    );
    assert!(sigma > 0.0, "sigma must be positive");
    if b <= 0.0 {
        return 1.0;
    }
    let kappa = h.powf(h) * (1.0 - h).powf(1.0 - h);
    let num = (service - mean_rate).powf(2.0 * h) * b.powf(2.0 - 2.0 * h);
    (-num / (2.0 * kappa * kappa * sigma * sigma)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_trace(rate: f64, n: usize) -> TimeSeries {
        TimeSeries::from_values(1.0, vec![rate; n])
    }

    #[test]
    fn underloaded_queue_stays_empty() {
        let q = FluidQueue::new(2.0).drive(&constant_trace(1.0, 100));
        assert_eq!(q.mean_occupancy(), 0.0);
        assert_eq!(q.overflow_probability(0.0), 0.0);
        assert!((q.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overloaded_queue_grows_linearly() {
        let q = FluidQueue::new(1.0).drive(&constant_trace(2.0, 10));
        let vals = q.occupancy().values();
        for (i, &v) in vals.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn lindley_recursion_example() {
        let arr = TimeSeries::from_values(1.0, vec![3.0, 0.0, 0.0, 5.0]);
        let q = FluidQueue::new(1.0).drive(&arr);
        assert_eq!(q.occupancy().values(), &[2.0, 1.0, 0.0, 4.0]);
    }

    #[test]
    fn utilization_constructor() {
        let arr = constant_trace(4.0, 50);
        let q = FluidQueue::for_utilization(&arr, 0.8);
        assert!((q.service_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_probability_counts_exceedances() {
        let arr = TimeSeries::from_values(1.0, vec![2.0, 2.0, 0.0, 0.0]);
        let q = FluidQueue::new(1.0).drive(&arr);
        // occupancy: 1, 2, 1, 0
        assert!((q.overflow_probability(0.5) - 0.75).abs() < 1e-12);
        assert!((q.overflow_probability(1.5) - 0.25).abs() < 1e-12);
        assert_eq!(q.overflow_probability(10.0), 0.0);
    }

    #[test]
    fn buffer_for_loss_is_monotone_in_target() {
        let arr = TimeSeries::from_values(
            1.0,
            (0..1000)
                .map(|i| if i % 10 == 0 { 5.0 } else { 0.5 })
                .collect(),
        );
        let q = FluidQueue::new(1.0).drive(&arr);
        let strict = q.buffer_for_loss(0.001).unwrap_or(f64::INFINITY);
        let loose = q.buffer_for_loss(0.2).unwrap();
        assert!(strict >= loose);
    }

    #[test]
    fn norros_curve_properties() {
        // Decays in b, and a higher H makes large buffers exceed more.
        let p1 = norros_overflow(10.0, 0.6, 1.0, 1.0, 2.0);
        let p2 = norros_overflow(100.0, 0.6, 1.0, 1.0, 2.0);
        assert!(p2 < p1);
        let lrd = norros_overflow(100.0, 0.9, 1.0, 1.0, 2.0);
        assert!(lrd > p2, "LRD tail {lrd} should dominate SRD {p2}");
        assert_eq!(norros_overflow(0.0, 0.7, 1.0, 1.0, 2.0), 1.0);
    }

    #[test]
    fn lrd_input_needs_bigger_buffers_than_white() {
        use sst_traffic::FgnGenerator;
        let n = 1 << 16;
        let scale = |ts: Vec<f64>| {
            TimeSeries::from_values(1.0, ts.into_iter().map(|x| 10.0 + 2.0 * x).collect())
        };
        let lrd = scale(FgnGenerator::new(0.85).unwrap().generate_values(n, 4));
        let white = scale(FgnGenerator::new(0.5).unwrap().generate_values(n, 4));
        let q_lrd = FluidQueue::for_utilization(&lrd, 0.8).drive(&lrd);
        let q_white = FluidQueue::for_utilization(&white, 0.8).drive(&white);
        let b_lrd = q_lrd.buffer_for_loss(0.01).unwrap_or(f64::INFINITY);
        let b_white = q_white.buffer_for_loss(0.01).unwrap_or(f64::INFINITY);
        assert!(
            b_lrd > 2.0 * b_white,
            "LRD buffer {b_lrd} should dwarf white-noise buffer {b_white}"
        );
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn invalid_rate_rejected() {
        FluidQueue::new(0.0);
    }
}
