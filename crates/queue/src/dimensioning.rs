//! Capacity and buffer dimensioning for LRD traffic — the inverse
//! problems of the Norros overflow formula. This is what the Hurst
//! parameter is *for* operationally (the paper's §I: H "is crucial for
//! queuing analysis"): given measured `(mean, σ, H)` and a loss target,
//! how much capacity or buffer does the link need?
//!
//! All formulas invert Norros' fractional-Brownian-storage approximation
//! `P(Q > b) ≈ exp(−(c−m)^{2H} b^{2−2H} / (2 κ(H)² σ²))`,
//! `κ(H) = H^H (1−H)^{1−H}`.

use crate::fifo::FluidQueue;
use sst_stats::TimeSeries;

fn kappa(h: f64) -> f64 {
    h.powf(h) * (1.0 - h).powf(1.0 - h)
}

fn check_params(h: f64, mean_rate: f64, sigma: f64) {
    assert!((0.5..1.0).contains(&h), "H must lie in [0.5, 1), got {h}");
    assert!(
        mean_rate > 0.0 && mean_rate.is_finite(),
        "mean rate must be positive"
    );
    assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
}

/// The buffer `b` needed so that `P(Q > b) <= loss` at service rate
/// `service`, per the Norros approximation.
///
/// # Panics
///
/// Panics unless `0.5 <= H < 1`, `mean_rate`, `sigma` positive,
/// `service > mean_rate`, and `0 < loss < 1`.
///
/// # Examples
///
/// ```
/// use sst_queue::dimensioning::required_buffer;
///
/// let b_mild = required_buffer(0.6, 100.0, 10.0, 120.0, 1e-6);
/// let b_lrd = required_buffer(0.9, 100.0, 10.0, 120.0, 1e-6);
/// assert!(b_lrd > 10.0 * b_mild, "LRD needs far more buffer");
/// ```
pub fn required_buffer(h: f64, mean_rate: f64, sigma: f64, service: f64, loss: f64) -> f64 {
    check_params(h, mean_rate, sigma);
    assert!(
        service > mean_rate,
        "queue must be stable (service > mean rate)"
    );
    assert!(loss > 0.0 && loss < 1.0, "loss target must lie in (0,1)");
    // exp(−(c−m)^{2H} b^{2−2H} / (2κ²σ²)) = loss
    // ⇒ b = [ −ln(loss) · 2κ²σ² / (c−m)^{2H} ]^{1/(2−2H)}
    let k = kappa(h);
    let num = -loss.ln() * 2.0 * k * k * sigma * sigma;
    let den = (service - mean_rate).powf(2.0 * h);
    (num / den).powf(1.0 / (2.0 - 2.0 * h))
}

/// The service rate (capacity) needed so that `P(Q > buffer) <= loss` —
/// Norros' *effective bandwidth* of the fBm source.
///
/// # Panics
///
/// Panics unless `0.5 <= H < 1`, `mean_rate`, `sigma`, `buffer` positive,
/// and `0 < loss < 1`.
pub fn effective_bandwidth(h: f64, mean_rate: f64, sigma: f64, buffer: f64, loss: f64) -> f64 {
    check_params(h, mean_rate, sigma);
    assert!(
        buffer > 0.0 && buffer.is_finite(),
        "buffer must be positive"
    );
    assert!(loss > 0.0 && loss < 1.0, "loss target must lie in (0,1)");
    // Solve (c−m)^{2H} = −ln(loss)·2κ²σ² / b^{2−2H} for c.
    let k = kappa(h);
    let rhs = -loss.ln() * 2.0 * k * k * sigma * sigma / buffer.powf(2.0 - 2.0 * h);
    mean_rate + rhs.powf(1.0 / (2.0 * h))
}

/// Empirical counterpart of [`required_buffer`]: drives a [`FluidQueue`]
/// with the trace and reads off the occupancy quantile. `None` when the
/// loss target is stricter than the trace can resolve.
///
/// # Panics
///
/// Propagates the [`FluidQueue`] validation panics (`service` positive,
/// loss target in `(0,1)`).
pub fn measured_buffer(trace: &TimeSeries, service: f64, loss: f64) -> Option<f64> {
    FluidQueue::new(service).drive(trace).buffer_for_loss(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn buffer_grows_with_hurst() {
        let mut prev = 0.0;
        for &h in &[0.55, 0.65, 0.75, 0.85, 0.95] {
            let b = required_buffer(h, 100.0, 10.0, 110.0, 1e-6);
            assert!(b > prev, "H={h}: buffer {b} should exceed {prev}");
            prev = b;
        }
    }

    #[test]
    fn buffer_shrinks_with_headroom_and_looser_loss() {
        let tight = required_buffer(0.8, 100.0, 10.0, 105.0, 1e-6);
        let roomy = required_buffer(0.8, 100.0, 10.0, 150.0, 1e-6);
        assert!(roomy < tight);
        let strict = required_buffer(0.8, 100.0, 10.0, 110.0, 1e-9);
        let lax = required_buffer(0.8, 100.0, 10.0, 110.0, 1e-2);
        assert!(lax < strict);
    }

    #[test]
    fn effective_bandwidth_inverts_required_buffer() {
        // Round-trip: the capacity that makes buffer b meet the target
        // must, plugged back in, require buffer ≈ b.
        let (h, m, s, loss) = (0.8, 100.0, 15.0, 1e-4);
        for &b in &[10.0, 100.0, 1000.0] {
            let c = effective_bandwidth(h, m, s, b, loss);
            assert!(c > m);
            let b_back = required_buffer(h, m, s, c, loss);
            assert!(
                (b_back / b - 1.0).abs() < 1e-9,
                "round trip: {b} -> c={c} -> {b_back}"
            );
        }
    }

    #[test]
    fn effective_bandwidth_exceeds_mean_and_decreases_with_buffer() {
        let c_small = effective_bandwidth(0.85, 100.0, 10.0, 10.0, 1e-6);
        let c_large = effective_bandwidth(0.85, 100.0, 10.0, 10_000.0, 1e-6);
        assert!(c_small > c_large);
        assert!(c_large > 100.0);
    }

    #[test]
    fn norros_prediction_tracks_measured_buffer_on_fgn() {
        // Order-of-magnitude agreement between the formula and a real
        // Lindley run on fGn input (Norros is an asymptotic bound, not
        // an equality — a factor of a few is expected).
        let h = 0.8;
        let (mean, sigma) = (100.0, 10.0);
        let vals: Vec<f64> = FgnGenerator::new(h)
            .unwrap()
            .generate_values(1 << 17, 9)
            .into_iter()
            .map(|x| mean + sigma * x)
            .collect();
        let trace = TimeSeries::from_values(1.0, vals);
        let service = 105.0;
        let loss = 1e-2;
        let predicted = required_buffer(h, mean, sigma, service, loss);
        let measured = measured_buffer(&trace, service, loss).expect("resolvable");
        let ratio = predicted / measured.max(1e-9);
        assert!(
            (0.1..10.0).contains(&ratio),
            "predicted {predicted:.1} vs measured {measured:.1}"
        );
    }

    #[test]
    fn measured_buffer_unresolvable_when_target_too_strict() {
        // A short constant trace never exceeds zero occupancy at
        // undersaturation; any positive loss target is met with b = 0.
        let trace = TimeSeries::from_values(1.0, vec![1.0; 100]);
        let b = measured_buffer(&trace, 2.0, 0.01).expect("resolvable");
        assert_eq!(b, 0.0);
    }

    #[test]
    #[should_panic(expected = "H must lie in")]
    fn invalid_h_rejected() {
        required_buffer(1.0, 100.0, 10.0, 110.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "stable")]
    fn unstable_queue_rejected() {
        required_buffer(0.8, 100.0, 10.0, 90.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "loss target")]
    fn invalid_loss_rejected() {
        effective_bandwidth(0.8, 100.0, 10.0, 10.0, 0.0);
    }
}
