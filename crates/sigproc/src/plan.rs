//! Precomputed FFT plans.
//!
//! The free functions in [`crate::fft`] recompute twiddle factors and the
//! bit-reversal permutation on every call. Monte-Carlo workloads (the
//! Davies-Harte fGn generator runs one same-size FFT per instance per
//! figure) pay that cost thousands of times, so this module hoists it:
//!
//! * [`FftPlan`] — per-stage twiddle tables plus the bit-reversal swap
//!   list for one power-of-two size; `forward`/`inverse` run in place
//!   with zero allocation.
//! * [`BluesteinPlan`] — the chirp sequence and the pre-transformed
//!   chirp filter for one arbitrary size, turning a Bluestein call from
//!   three FFTs plus trigonometry into two table-driven FFTs.
//! * [`plan_for`] — a small process-wide LRU so the [`crate::fft`] free
//!   functions transparently reuse plans.
//!
//! ## Bit-compatibility
//!
//! The twiddle tables are filled with the *same iterative product*
//! (`w *= wlen`) the free functions used, and the butterfly executes the
//! same operations in the same order, so a planned transform returns
//! **bit-identical** results to the original code — the determinism
//! tests in `sst-traffic` and `sst-core` rely on this.
//!
//! ## Example
//!
//! ```
//! use sst_sigproc::{fft, Complex, FftPlan};
//!
//! let plan = FftPlan::new(8);
//! let mut data = [Complex::ONE; 8];
//! plan.forward(&mut data);
//! assert_eq!(data, {
//!     let mut d = [Complex::ONE; 8];
//!     fft::fft_pow2_in_place(&mut d);
//!     d
//! });
//! ```

use crate::complex::Complex;
use crate::fft::{is_power_of_two, next_pow2};
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable FFT plan for one power-of-two length.
///
/// Holds per-stage twiddle tables (forward sign; the inverse conjugates
/// on the fly, which is exact) and the bit-reversal permutation as a
/// swap list.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Concatenated twiddles for stages `len = 2, 4, …, n`; stage `s`
    /// (0-based) occupies `[2^s - 1, 2^(s+1) - 1)` and holds `2^s`
    /// factors.
    twiddles: Vec<Complex>,
    /// Pairs `(i, j)` with `i < j` to swap for the bit-reversal pass.
    swaps: Vec<(u32, u32)>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_power_of_two(n), "fft length {n} is not a power of two");
        // Twiddle tables: replicate the iterative product of the
        // original loop exactly (do NOT replace with direct `cis(k·ang)`
        // — that would change low-order bits).
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            let mut w = Complex::ONE;
            for _ in 0..len / 2 {
                twiddles.push(w);
                w *= wlen;
            }
            len <<= 1;
        }
        // Bit-reversal swap list, identical traversal to the in-place
        // permutation loop.
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        FftPlan { n, twiddles, swaps }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the degenerate length-≤1 transform.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length does not match plan length");
        if n <= 1 {
            return;
        }
        self.permute(data);
        let mut stage_off = 0usize;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage = &self.twiddles[stage_off..stage_off + half];
            // Split-borrow butterflies: same operations in the same
            // order as the historical loop, expressed through iterators
            // so the hot loop carries no bounds checks. conj() is exact,
            // so the inverse path matches the original sign-flipped
            // iterative twiddle product bit for bit.
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                if inverse {
                    for ((x, y), &tw) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                        let u = *x;
                        let v = *y * tw.conj();
                        *x = u + v;
                        *y = u - v;
                    }
                } else {
                    for ((x, y), &tw) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                        let u = *x;
                        let v = *y * tw;
                        *x = u + v;
                        *y = u - v;
                    }
                }
            }
            stage_off += half;
            len <<= 1;
        }
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    /// In-place inverse FFT, normalized by `1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }

    /// In-place inverse FFT without the `1/n` normalization.
    pub fn inverse_unnormalized(&self, data: &mut [Complex]) {
        self.transform(data, true);
    }
}

/// Scratch buffers for [`BluesteinPlan::transform`], reusable across
/// calls to avoid per-transform allocation.
#[derive(Clone, Debug, Default)]
pub struct BluesteinScratch {
    a: Vec<Complex>,
}

/// A reusable Bluestein (chirp-z) plan for one arbitrary length.
///
/// Precomputes the chirp sequence and the forward transform of the
/// chirp filter **per direction**, so each call runs exactly two
/// table-driven FFTs and reproduces the historical free-standing
/// implementation bit for bit (the two filter spectra are equal only
/// mathematically, not in floating point, so sharing one table would
/// drift low-order bits on the inverse path).
#[derive(Clone, Debug)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    /// `chirp[k] = exp(-iπ k²/n)` (forward sign; the inverse chirp is
    /// its exact conjugate).
    chirp: Vec<Complex>,
    /// Forward FFT of the forward-direction chirp filter `b`.
    b_fft_fwd: Vec<Complex>,
    /// Forward FFT of the inverse-direction chirp filter.
    b_fft_inv: Vec<Complex>,
    inner: Arc<FftPlan>,
}

impl BluesteinPlan {
    /// Builds a plan for length `n ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "bluestein length must be >= 1");
        let m = next_pow2(2 * n - 1);
        let inner = plan_for(m);
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            // k² mod 2n keeps the angle small for numeric stability.
            let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
            chirp.push(Complex::cis(-std::f64::consts::PI * k2 / n as f64));
        }
        // b[k] = conj(direction chirp[k]); the inverse chirp is
        // conj(chirp), so its filter holds the chirp values themselves.
        let mut b_fwd = vec![Complex::ZERO; m];
        let mut b_inv = vec![Complex::ZERO; m];
        b_fwd[0] = chirp[0].conj();
        b_inv[0] = chirp[0];
        for k in 1..n {
            let c = chirp[k].conj();
            b_fwd[k] = c;
            b_fwd[m - k] = c;
            b_inv[k] = chirp[k];
            b_inv[m - k] = chirp[k];
        }
        inner.forward(&mut b_fwd);
        inner.forward(&mut b_inv);
        BluesteinPlan {
            n,
            m,
            chirp,
            b_fft_fwd: b_fwd,
            b_fft_inv: b_inv,
            inner,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the degenerate length-≤1 transform.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Computes the DFT of `input` into a new vector.
    ///
    /// `inverse` gives the unnormalized inverse DFT (the caller divides
    /// by `n`, matching [`crate::fft::ifft`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn transform(
        &self,
        input: &[Complex],
        inverse: bool,
        scratch: &mut BluesteinScratch,
    ) -> Vec<Complex> {
        assert_eq!(
            input.len(),
            self.n,
            "input length does not match plan length"
        );
        // conj(chirp) is exact (cos is even, sin is odd), so the data
        // path reproduces the historical chirp values bit for bit in
        // both directions; the filter spectrum comes from the matching
        // per-direction table.
        let a = &mut scratch.a;
        a.clear();
        a.resize(self.m, Complex::ZERO);
        for k in 0..self.n {
            let c = if inverse {
                self.chirp[k].conj()
            } else {
                self.chirp[k]
            };
            a[k] = input[k] * c;
        }
        self.inner.forward(a);
        let b_fft = if inverse {
            &self.b_fft_inv
        } else {
            &self.b_fft_fwd
        };
        for (za, zb) in a.iter_mut().zip(b_fft) {
            *za *= *zb;
        }
        self.inner.inverse(a);
        (0..self.n)
            .map(|k| {
                let c = if inverse {
                    self.chirp[k].conj()
                } else {
                    self.chirp[k]
                };
                a[k] * c
            })
            .collect()
    }
}

/// Process-wide plan cache capacity (distinct power-of-two sizes kept).
const PLAN_CACHE_CAP: usize = 16;

/// Shared mutex-guarded LRU used by every plan cache in the workspace
/// (FFT, Bluestein, and the fGn plans in `sst-traffic`).
///
/// The builder runs **outside** the lock, so a panicking or erroring
/// construction can never poison the cache (and a poisoned mutex from
/// an unrelated panic is recovered, not propagated — the cached `Arc`s
/// are always internally consistent). If two threads race to build the
/// same entry, the first insertion wins and both get the same `Arc`.
pub fn lru_fetch<T, E>(
    cache: &Mutex<Vec<Arc<T>>>,
    cap: usize,
    hit: impl Fn(&T) -> bool,
    build: impl FnOnce() -> Result<T, E>,
) -> Result<Arc<T>, E> {
    {
        let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = guard.iter().position(|p| hit(p)) {
            // Move to the back (most recently used).
            let plan = guard.remove(pos);
            guard.push(Arc::clone(&plan));
            return Ok(plan);
        }
    }
    // Lock released while building: construction may be slow or panic.
    let plan = Arc::new(build()?);
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(pos) = guard.iter().position(|p| hit(p)) {
        // A racing builder inserted first; share its entry.
        let existing = guard.remove(pos);
        guard.push(Arc::clone(&existing));
        return Ok(existing);
    }
    if guard.len() >= cap {
        guard.remove(0);
    }
    guard.push(Arc::clone(&plan));
    Ok(plan)
}

/// Returns the shared plan for power-of-two length `n`, building and
/// caching it on first use (small LRU, capacity [`PLAN_CACHE_CAP`]).
///
/// # Panics
///
/// Panics if `n` is not a power of two (before touching the cache, so
/// the panic is per-call, never cache-wide).
pub fn plan_for(n: usize) -> Arc<FftPlan> {
    assert!(is_power_of_two(n), "fft length {n} is not a power of two");
    static CACHE: OnceLock<Mutex<Vec<Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let result: Result<_, std::convert::Infallible> = lru_fetch(
        cache,
        PLAN_CACHE_CAP,
        |p| p.len() == n,
        || Ok(FftPlan::new(n)),
    );
    result.expect("infallible")
}

/// Returns the shared Bluestein plan for arbitrary length `n`, building
/// and caching it on first use (small LRU, capacity [`PLAN_CACHE_CAP`]).
///
/// # Panics
///
/// Panics if `n == 0` (before touching the cache).
pub fn bluestein_for(n: usize) -> Arc<BluesteinPlan> {
    assert!(n >= 1, "bluestein length must be >= 1");
    static CACHE: OnceLock<Mutex<Vec<Arc<BluesteinPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let result: Result<_, std::convert::Infallible> = lru_fetch(
        cache,
        PLAN_CACHE_CAP,
        |p| p.len() == n,
        || Ok(BluesteinPlan::new(n)),
    );
    result.expect("infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64).sin()))
            .collect()
    }

    /// The seed's transform loop, kept verbatim as the bit-compatibility
    /// reference (the `fft::*` free functions now delegate to plans, so
    /// comparing against them would be circular).
    fn seed_transform_pow2(data: &mut [Complex], inverse: bool) {
        let n = data.len();
        assert!(n != 0 && n & (n - 1) == 0);
        if n <= 1 {
            return;
        }
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                data.swap(i, j);
            }
        }
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            let half = len / 2;
            for start in (0..n).step_by(len) {
                let mut w = Complex::ONE;
                for k in 0..half {
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
    }

    /// The seed's Bluestein transform, verbatim, as the pinned
    /// bit-compatibility reference for both directions.
    fn seed_bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = input.len();
        let m = next_pow2(2 * n - 1);
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
            chirp.push(Complex::cis(sign * std::f64::consts::PI * k2 / n as f64));
        }
        let mut a = vec![Complex::ZERO; m];
        for k in 0..n {
            a[k] = input[k] * chirp[k];
        }
        let mut b = vec![Complex::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            b[k] = c;
            b[m - k] = c;
        }
        seed_transform_pow2(&mut a, false);
        seed_transform_pow2(&mut b, false);
        for k in 0..m {
            a[k] *= b[k];
        }
        seed_transform_pow2(&mut a, true);
        let scale = 1.0 / m as f64;
        for z in a.iter_mut() {
            *z = z.scale(scale);
        }
        (0..n).map(|k| a[k] * chirp[k]).collect()
    }

    #[test]
    fn bluestein_plan_is_bit_identical_to_the_pinned_seed_transform() {
        let mut scratch = BluesteinScratch::default();
        for &n in &[3usize, 7, 100, 257, 1000] {
            let plan = BluesteinPlan::new(n);
            let x = ramp(n);
            assert_eq!(
                plan.transform(&x, false, &mut scratch),
                seed_bluestein(&x, false),
                "forward n={n}"
            );
            assert_eq!(
                plan.transform(&x, true, &mut scratch),
                seed_bluestein(&x, true),
                "inverse n={n}"
            );
        }
    }

    #[test]
    fn plan_is_bit_identical_to_the_pinned_seed_loop() {
        for &n in &[1usize, 2, 8, 64, 1024, 1 << 15] {
            let plan = FftPlan::new(n);
            let orig = ramp(n);
            let mut got = orig.clone();
            let mut want = orig.clone();
            plan.forward(&mut got);
            seed_transform_pow2(&mut want, false);
            assert_eq!(got, want, "forward n={n}");
            let mut got = orig.clone();
            let mut want = orig;
            plan.inverse(&mut got);
            seed_transform_pow2(&mut want, true);
            let scale = 1.0 / n as f64;
            for z in want.iter_mut() {
                *z = z.scale(scale);
            }
            assert_eq!(got, want, "inverse n={n}");
        }
    }

    #[test]
    fn planned_forward_is_bit_identical_to_free_fft() {
        for &n in &[1usize, 2, 4, 8, 64, 1024, 1 << 14] {
            let plan = FftPlan::new(n);
            let mut a = ramp(n);
            let mut b = a.clone();
            plan.forward(&mut a);
            fft::fft_pow2_in_place(&mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn planned_inverse_is_bit_identical_to_free_ifft() {
        for &n in &[2usize, 16, 256, 4096] {
            let plan = FftPlan::new(n);
            let mut a = ramp(n);
            let mut b = a.clone();
            plan.inverse(&mut a);
            fft::ifft_pow2_in_place(&mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        let plan = FftPlan::new(128);
        let orig = ramp(128);
        let mut data = orig.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        for (x, y) in data.iter().zip(&orig) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_pow2() {
        FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn bluestein_plan_matches_free_fft() {
        for &n in &[3usize, 5, 7, 12, 31, 100, 257] {
            let plan = BluesteinPlan::new(n);
            let mut scratch = BluesteinScratch::default();
            let x = ramp(n);
            let got = plan.transform(&x, false, &mut scratch);
            let want = fft::fft(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn bluestein_plan_inverse_matches_free_ifft() {
        for &n in &[3usize, 7, 100] {
            let plan = BluesteinPlan::new(n);
            let mut scratch = BluesteinScratch::default();
            let x = ramp(n);
            let mut got = plan.transform(&x, true, &mut scratch);
            let inv = 1.0 / n as f64;
            for z in got.iter_mut() {
                *z = z.scale(inv);
            }
            let want = fft::ifft(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let plan = BluesteinPlan::new(31);
        let mut scratch = BluesteinScratch::default();
        let x = ramp(31);
        let first = plan.transform(&x, false, &mut scratch);
        let second = plan.transform(&x, false, &mut scratch);
        assert_eq!(first, second);
    }

    #[test]
    fn shared_cache_returns_same_plan() {
        let a = plan_for(512);
        let b = plan_for(512);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 512);
    }

    #[test]
    fn invalid_length_panic_does_not_poison_the_cache() {
        let bad = std::panic::catch_unwind(|| plan_for(12));
        assert!(bad.is_err(), "non-power-of-two must panic");
        // The cache must still serve valid lengths afterwards.
        let plan = plan_for(256);
        let mut data = ramp(256);
        plan.forward(&mut data);
        assert!(data.iter().all(|z| z.is_finite()));
    }
}
