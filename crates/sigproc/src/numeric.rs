//! Scalar numerical routines: root bracketing/bisection and golden-section
//! minimization.
//!
//! Used by the BSS parameter solver (finding the unbiased-threshold roots
//! ε₁, ε₂ of ξ(ε) = target) and by the local-Whittle Hurst estimator
//! (1-D likelihood minimization over H).

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Returns `None` when `f(lo)` and `f(hi)` have the same sign (no bracketed
/// root). Otherwise iterates until the interval is shorter than `tol` or
/// 200 iterations, whichever comes first, and returns the midpoint.
///
/// # Panics
///
/// Panics if `lo >= hi` or `tol <= 0`.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Option<f64> {
    assert!(lo < hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Some(a);
    }
    if fb == 0.0 {
        return Some(b);
    }
    if fa.signum() == fb.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) < tol {
            return Some(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

/// Scans `[lo, hi]` in `steps` uniform panels and returns every sub-interval
/// across which `f` changes sign, refined by bisection. This is how the BSS
/// solver finds *both* roots ε₁ < ε₂ of ξ(ε) − target.
pub fn find_roots<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    steps: usize,
    tol: f64,
) -> Vec<f64> {
    assert!(steps >= 1);
    let mut roots = Vec::new();
    let dx = (hi - lo) / steps as f64;
    let mut x0 = lo;
    let mut f0 = f(x0);
    for i in 1..=steps {
        let x1 = lo + dx * i as f64;
        let f1 = f(x1);
        if f0 == 0.0 {
            roots.push(x0);
        } else if f0.signum() != f1.signum() && f1 != 0.0 {
            if let Some(r) = bisect(&mut f, x0, x1, tol) {
                roots.push(r);
            }
        }
        x0 = x1;
        f0 = f1;
    }
    if f0 == 0.0 {
        roots.push(x0);
    }
    roots.dedup_by(|a, b| (*a - *b).abs() < tol);
    roots
}

/// Golden-section search for the minimizer of a unimodal `f` on `[lo, hi]`.
///
/// Returns `(argmin, min)` once the bracket is shorter than `tol`.
///
/// # Panics
///
/// Panics if `lo >= hi` or `tol <= 0`.
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> (f64, f64) {
    assert!(lo < hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Linearly spaced grid of `n` points including both endpoints.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least 2 points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Logarithmically spaced grid of `n` points from `lo` to `hi` (inclusive).
///
/// # Panics
///
/// Panics if `lo` or `hi` is not strictly positive or `n < 2`.
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace endpoints must be positive");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_returns_none_without_sign_change() {
        assert!(bisect(|x| x * x + 1.0, -5.0, 5.0, 1e-9).is_none());
    }

    #[test]
    fn bisect_accepts_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9), Some(0.0));
    }

    #[test]
    fn find_roots_locates_both_quadratic_roots() {
        let roots = find_roots(|x| (x - 1.0) * (x - 3.0), 0.0, 4.0, 100, 1e-10);
        assert_eq!(roots.len(), 2);
        assert!((roots[0] - 1.0).abs() < 1e-8);
        assert!((roots[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn find_roots_empty_when_no_crossing() {
        assert!(find_roots(|x| x * x + 0.5, -2.0, 2.0, 50, 1e-9).is_empty());
    }

    #[test]
    fn golden_section_minimizes_parabola() {
        // Near the minimum the offset parabola is flat to machine precision
        // (δ² underflows against 2.0), so only μ-level accuracy is testable.
        let (x, v) = golden_section_min(|x| (x - 0.3) * (x - 0.3) + 2.0, -4.0, 5.0, 1e-8);
        assert!((x - 0.3).abs() < 1e-6);
        assert!((v - 2.0).abs() < 1e-11);
    }

    #[test]
    fn golden_section_tight_accuracy_without_offset() {
        let (x, v) = golden_section_min(|x| (x - 0.3) * (x - 0.3), -4.0, 5.0, 1e-12);
        assert!((x - 0.3).abs() < 1e-7);
        assert!(v < 1e-14);
    }

    #[test]
    fn linspace_endpoints_and_count() {
        let g = linspace(-1.0, 1.0, 5);
        assert_eq!(g, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1e-5, 1e-1, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1e-5).abs() < 1e-18);
        assert!((g[4] - 1e-1).abs() < 1e-12);
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }
}
