//! Real-valued FFT plans.
//!
//! A real signal's spectrum is Hermitian (`X[n−k] = conj(X[k])`), so a
//! complex FFT wastes half its arithmetic and half its memory on
//! redundant bins. [`RealFftPlan`] exploits the symmetry with the
//! classic half-size trick: an `n`-point real transform is computed as
//! one `n/2`-point **complex** FFT over the even/odd interleaving, plus
//! an `O(n)` split/merge twiddle pass — roughly halving the dominant
//! FFT cost. The Davies-Harte fGn synthesis in `sst-traffic` is the
//! main consumer: its circulant spectrum is Hermitian by construction,
//! so the whole Monte-Carlo hot path runs through [`RealFftPlan::c2r`].
//!
//! Conventions (matching `fftw`/`numpy.fft.rfft`):
//!
//! * [`RealFftPlan::r2c`]: `X[k] = Σ_t x[t]·e^{−2πikt/n}` for
//!   `k = 0..=n/2` — the non-redundant half-spectrum of `n/2 + 1` bins.
//! * [`RealFftPlan::c2r`]: the normalized inverse,
//!   `x[t] = (1/n)·Σ_k X_full[k]·e^{+2πikt/n}` over the Hermitian
//!   extension of the half-spectrum, so `c2r(r2c(x)) == x` up to
//!   round-off. Bins `0` and `n/2` are treated as purely real (their
//!   imaginary parts are ignored, as in FFTW).
//!
//! Power-of-two lengths run the half-size fast path **in place and
//! allocation-free** (the caller's spectrum buffer doubles as the
//! complex work area). Other lengths fall back to the full complex
//! transform (Bluestein for non-powers of two) so every `n ≥ 1` works;
//! the fallback allocates internally and is meant for correctness, not
//! the hot path.

use crate::complex::Complex;
use crate::fft::is_power_of_two;
use crate::plan::{bluestein_for, lru_fetch, plan_for, BluesteinPlan, BluesteinScratch, FftPlan};
use std::sync::{Arc, Mutex, OnceLock};

/// How a [`RealFftPlan`] executes for its length.
#[derive(Clone, Debug)]
enum Backend {
    /// `n == 1`: the transform is the identity.
    Trivial,
    /// Power-of-two `n ≥ 2`: half-size complex FFT + twiddle merge.
    Half {
        /// Complex plan for length `n/2`.
        half: Arc<FftPlan>,
        /// `tw[k] = e^{−2πik/n}` for `k = 0..n/2` (forward sign; the
        /// inverse pass uses the exact conjugate).
        twiddles: Vec<Complex>,
    },
    /// Arbitrary `n`: full complex transform via Bluestein.
    Bluestein(Arc<BluesteinPlan>),
}

/// A reusable real-to-complex / complex-to-real FFT plan for one length.
///
/// # Examples
///
/// ```
/// use sst_sigproc::rfft::RealFftPlan;
/// use sst_sigproc::Complex;
///
/// let plan = RealFftPlan::new(8);
/// let x: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
/// let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
/// plan.r2c(&x, &mut spec);
/// let mut back = vec![0.0; 8];
/// plan.c2r(&mut spec, &mut back);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct RealFftPlan {
    n: usize,
    backend: Backend,
}

impl RealFftPlan {
    /// Builds a plan for real length `n ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "real fft length must be >= 1");
        let backend = if n == 1 {
            Backend::Trivial
        } else if is_power_of_two(n) {
            let half_n = n / 2;
            let half = plan_for(half_n);
            let mut twiddles = Vec::with_capacity(half_n + 1);
            for k in 0..=half_n {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                twiddles.push(Complex::cis(ang));
            }
            Backend::Half { half, twiddles }
        } else {
            Backend::Bluestein(bluestein_for(n))
        };
        RealFftPlan { n, backend }
    }

    /// The real transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan transforms zero-length signals (never true;
    /// plans require `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the packed half-spectrum: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward real-to-complex transform: writes the non-redundant
    /// half-spectrum (`n/2 + 1` bins) of `input` into `spec`.
    ///
    /// The power-of-two path is allocation-free: `spec` doubles as the
    /// half-size complex work buffer.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()` or
    /// `spec.len() != self.spectrum_len()`.
    pub fn r2c(&self, input: &[f64], spec: &mut [Complex]) {
        assert_eq!(input.len(), self.n, "input length does not match plan");
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum length must be n/2 + 1"
        );
        match &self.backend {
            Backend::Trivial => {
                spec[0] = Complex::from_real(input[0]);
            }
            Backend::Half { half, twiddles } => {
                let half_n = self.n / 2;
                // Pack even/odd samples into the complex work area.
                for (t, slot) in spec.iter_mut().take(half_n).enumerate() {
                    *slot = Complex::new(input[2 * t], input[2 * t + 1]);
                }
                half.forward(&mut spec[..half_n]);
                // Split pass: with Z = FFT(even + i·odd),
                //   E[k] = (Z[k] + conj(Z[N−k]))/2   (spectrum of evens)
                //   O[k] = (Z[k] − conj(Z[N−k]))/(2i) (spectrum of odds)
                //   X[k]      = E[k] + tw[k]·O[k]
                //   X[N−k]    = conj(E[k] − tw[k]·O[k])
                // processed pairwise in place from the outside in.
                let z0 = spec[0];
                spec[0] = Complex::from_real(z0.re + z0.im);
                spec[half_n] = Complex::from_real(z0.re - z0.im);
                for k in 1..=half_n / 2 {
                    let a = spec[k];
                    let b = spec[half_n - k].conj();
                    let even = (a + b).scale(0.5);
                    let odd = (a - b).scale(0.5); // = tw-free (Z[k]−conj(Z[N−k]))/2
                                                  // tw[k]·O[k] = tw[k]·odd/i = −i·tw[k]·odd.
                    let t = (Complex::new(odd.im, -odd.re)) * twiddles[k];
                    let xk = even + t;
                    let xnk = (even - t).conj();
                    spec[k] = xk;
                    spec[half_n - k] = xnk;
                }
            }
            Backend::Bluestein(plan) => {
                let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
                let mut scratch = BluesteinScratch::default();
                let full = plan.transform(&buf, false, &mut scratch);
                spec.copy_from_slice(&full[..self.spectrum_len()]);
            }
        }
    }

    /// Normalized inverse complex-to-real transform: reconstructs the
    /// `n` real samples whose half-spectrum is `spec`, so
    /// `c2r(r2c(x)) == x` up to round-off. Destroys `spec` (it is the
    /// in-place work buffer on the power-of-two path).
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.spectrum_len()` or
    /// `out.len() != self.len()`.
    pub fn c2r(&self, spec: &mut [Complex], out: &mut [f64]) {
        assert_eq!(out.len(), self.n, "output length does not match plan");
        self.c2r_prefix(spec, out);
    }

    /// Like [`RealFftPlan::c2r`] but writes only the first `out.len()`
    /// samples (`out.len() ≤ n`) — the Davies-Harte generator embeds an
    /// `n`-point trace in a `2N`-point circulant and only needs the
    /// prefix, so this skips the dead unpacking work.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.spectrum_len()` or
    /// `out.len() > self.len()`.
    pub fn c2r_prefix(&self, spec: &mut [Complex], out: &mut [f64]) {
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum length must be n/2 + 1"
        );
        assert!(out.len() <= self.n, "prefix length exceeds the plan length");
        match &self.backend {
            Backend::Trivial => {
                if let Some(slot) = out.first_mut() {
                    *slot = spec[0].re;
                }
            }
            Backend::Half { half, twiddles } => {
                let half_n = self.n / 2;
                // Merge pass, exact inverse of the r2c split: recover
                //   E[k] = (X[k] + conj(X[N−k]))/2
                //   O[k] = conj(tw[k])·(X[k] − conj(X[N−k]))/2
                //   Z[k] = E[k] + i·O[k],  Z[N−k] = conj(E[k] − i·O[k])
                // Bins 0 and N are treated as purely real.
                let x0 = spec[0].re;
                let xn = spec[half_n].re;
                spec[0] = Complex::new((x0 + xn) * 0.5, (x0 - xn) * 0.5);
                for k in 1..=half_n / 2 {
                    let a = spec[k];
                    let b = spec[half_n - k].conj();
                    let even = (a + b).scale(0.5);
                    let diff = (a - b).scale(0.5);
                    let o = diff * twiddles[k].conj();
                    // Z[k] = even + i·o; Z[N−k] = conj(even − i·o).
                    let io = Complex::new(-o.im, o.re);
                    let zk = even + io;
                    let znk = (even - io).conj();
                    spec[k] = zk;
                    spec[half_n - k] = znk;
                }
                half.inverse(&mut spec[..half_n]);
                // Unpack the interleaving: z[t] = x[2t] + i·x[2t+1].
                let tail = out.len() / 2;
                let mut pairs = out.chunks_exact_mut(2);
                for (t, pair) in (&mut pairs).enumerate() {
                    pair[0] = spec[t].re;
                    pair[1] = spec[t].im;
                }
                if let Some(slot) = pairs.into_remainder().first_mut() {
                    *slot = spec[tail].re;
                }
            }
            Backend::Bluestein(plan) => {
                // Hermitian extension, then the full complex inverse.
                let full = self.hermitian_extend(spec);
                let mut scratch = BluesteinScratch::default();
                let inv = plan.transform(&full, true, &mut scratch);
                let scale = 1.0 / self.n as f64;
                for (slot, z) in out.iter_mut().zip(&inv) {
                    *slot = z.re * scale;
                }
            }
        }
    }

    /// Expands a packed half-spectrum into the full `n`-bin Hermitian
    /// spectrum (`full[n−k] = conj(full[k])`), applying the same
    /// conventions as [`RealFftPlan::c2r`]: bins `0` and `n/2` are
    /// treated as purely real. This is the single definition of the
    /// packing convention — tests and benches that need the full
    /// spectrum go through it rather than re-rolling the expansion.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.spectrum_len()`.
    pub fn hermitian_extend(&self, spec: &[Complex]) -> Vec<Complex> {
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum length must be n/2 + 1"
        );
        let mut full = vec![Complex::ZERO; self.n];
        full[0] = Complex::from_real(spec[0].re);
        for k in 1..self.spectrum_len() {
            if 2 * k == self.n {
                full[k] = Complex::from_real(spec[k].re);
            } else {
                full[k] = spec[k];
                full[self.n - k] = spec[k].conj();
            }
        }
        full
    }
}

/// Process-wide cache capacity for real plans (distinct lengths kept).
const REAL_PLAN_CACHE_CAP: usize = 16;

/// Returns the shared real-FFT plan for length `n`, building and caching
/// it on first use (same poison-safe LRU machinery as
/// [`crate::plan::plan_for`]).
///
/// # Panics
///
/// Panics if `n == 0` (before touching the cache).
pub fn real_plan_for(n: usize) -> Arc<RealFftPlan> {
    assert!(n >= 1, "real fft length must be >= 1");
    static CACHE: OnceLock<Mutex<Vec<Arc<RealFftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let result: Result<_, std::convert::Infallible> = lru_fetch(
        cache,
        REAL_PLAN_CACHE_CAP,
        |p| p.len() == n,
        || Ok(RealFftPlan::new(n)),
    );
    result.expect("infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.25 * (i as f64 * 2.3).cos() - 0.1)
            .collect()
    }

    fn reference_spectrum(x: &[f64]) -> Vec<Complex> {
        fft::rfft(x).into_iter().take(x.len() / 2 + 1).collect()
    }

    #[test]
    fn r2c_matches_complex_fft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 64, 100, 257, 1024, 1 << 13] {
            let plan = RealFftPlan::new(n);
            let x = wave(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.r2c(&x, &mut spec);
            let want = reference_spectrum(&x);
            for (k, (g, w)) in spec.iter().zip(&want).enumerate() {
                assert!(
                    (*g - *w).abs() < 1e-9 * (n as f64).max(1.0),
                    "n={n} k={k} got={g:?} want={w:?}"
                );
            }
        }
    }

    #[test]
    fn c2r_matches_complex_ifft_on_hermitian_spectra() {
        for &n in &[2usize, 4, 8, 100, 256, 1024, 1 << 13] {
            let plan = RealFftPlan::new(n);
            // Build a Hermitian spectrum from a real signal.
            let x = wave(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.r2c(&x, &mut spec);
            let full = plan.hermitian_extend(&spec);
            let want: Vec<f64> = fft::ifft(&full).into_iter().map(|z| z.re).collect();
            let mut got = vec![0.0; n];
            plan.c2r(&mut spec, &mut got);
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "n={n} t={t} got={g} want={w}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for &n in &[1usize, 2, 4, 6, 8, 31, 100, 4096] {
            let plan = RealFftPlan::new(n);
            let x = wave(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.r2c(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.c2r(&mut spec, &mut back);
            for (t, (a, b)) in x.iter().zip(&back).enumerate() {
                assert!((a - b).abs() < 1e-10, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn c2r_prefix_matches_full_inverse() {
        let n = 512;
        let plan = RealFftPlan::new(n);
        let x = wave(n);
        let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
        plan.r2c(&x, &mut spec);
        let spec2 = spec.clone();
        let mut full = vec![0.0; n];
        plan.c2r(&mut spec, &mut full);
        // Odd and even prefix lengths both hit the tail handling.
        for &len in &[0usize, 1, 7, 128, 511] {
            let mut prefix = vec![0.0; len];
            let mut s = spec2.clone();
            plan.c2r_prefix(&mut s, &mut prefix);
            assert_eq!(prefix, full[..len], "len={len}");
        }
    }

    #[test]
    fn parseval_on_half_spectrum() {
        let n = 1024;
        let plan = RealFftPlan::new(n);
        let x = wave(n);
        let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
        plan.r2c(&x, &mut spec);
        let time: f64 = x.iter().map(|v| v * v).sum();
        // Interior bins count twice (their mirror images are implied).
        let mut freq = spec[0].norm_sqr() + spec[n / 2].norm_sqr();
        for z in &spec[1..n / 2] {
            freq += 2.0 * z.norm_sqr();
        }
        freq /= n as f64;
        assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    #[test]
    fn trivial_length_one() {
        let plan = RealFftPlan::new(1);
        let mut spec = vec![Complex::ZERO; 1];
        plan.r2c(&[3.25], &mut spec);
        assert_eq!(spec[0], Complex::from_real(3.25));
        let mut out = [0.0];
        plan.c2r(&mut spec, &mut out);
        assert_eq!(out[0], 3.25);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_zero_length() {
        RealFftPlan::new(0);
    }

    #[test]
    #[should_panic(expected = "does not match plan")]
    fn rejects_wrong_input_length() {
        let plan = RealFftPlan::new(8);
        let mut spec = vec![Complex::ZERO; 5];
        plan.r2c(&[0.0; 4], &mut spec);
    }

    #[test]
    fn shared_cache_returns_same_plan() {
        let a = real_plan_for(256);
        let b = real_plan_for(256);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 256);
        assert_eq!(a.spectrum_len(), 129);
    }
}
