//! Fast Fourier transforms.
//!
//! Provides an iterative radix-2 Cooley-Tukey FFT for power-of-two lengths
//! and a Bluestein (chirp-z) fallback for arbitrary lengths, so every public
//! entry point accepts any `n ≥ 1`. The inverse transform is normalized by
//! `1/n`, i.e. `ifft(fft(x)) == x`.
//!
//! The paper's SNC checker (Theorem 1, steps S1-S3) and the Davies-Harte
//! fractional-Gaussian-noise generator are the two main consumers.

use crate::complex::Complex;
use crate::plan::{bluestein_for, plan_for, BluesteinScratch};
use crate::rfft::real_plan_for;

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Next power of two that is `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT for power-of-two `data.len()`.
///
/// Thin wrapper over the shared [`crate::plan::FftPlan`] cache; results
/// are bit-identical to the historical free-standing implementation.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_pow2_in_place(data: &mut [Complex]) {
    plan_for(data.len()).forward(data);
}

/// In-place inverse FFT (normalized by `1/n`) for power-of-two lengths.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_pow2_in_place(data: &mut [Complex]) {
    plan_for(data.len()).inverse(data);
}

/// Forward FFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns a new vector of the same length.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = input.to_vec();
        fft_pow2_in_place(&mut buf);
        buf
    } else {
        let mut scratch = BluesteinScratch::default();
        bluestein_for(n).transform(input, false, &mut scratch)
    }
}

/// Inverse FFT of arbitrary length, normalized by `1/n`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = input.to_vec();
        ifft_pow2_in_place(&mut buf);
        buf
    } else {
        let mut scratch = BluesteinScratch::default();
        let mut out = bluestein_for(n).transform(input, true, &mut scratch);
        let inv = 1.0 / n as f64;
        for z in out.iter_mut() {
            *z = z.scale(inv);
        }
        out
    }
}

/// Forward FFT of a real signal; returns the full complex spectrum.
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&buf)
}

/// Inverse FFT returning only the real parts (caller asserts the spectrum
/// is conjugate-symmetric so the imaginary parts are round-off noise).
pub fn irfft_real(input: &[Complex]) -> Vec<f64> {
    ifft(input).into_iter().map(|z| z.re).collect()
}

/// Power spectral density estimate of a real signal via the periodogram:
/// `I(λ_j) = |Σ x_t e^{-iλ_j t}|² / (2πn)` at Fourier frequencies
/// `λ_j = 2πj/n`, `j = 1..n/2`.
///
/// Returns `(frequencies, intensities)`; the zero frequency is excluded so
/// the mean of the signal does not leak into the estimate.
pub fn periodogram(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    if n < 2 {
        return (Vec::new(), Vec::new());
    }
    // Only the non-redundant half-spectrum is needed, so this runs
    // through the shared real-FFT plan (half-size complex FFT for
    // power-of-two lengths) instead of a full complex transform.
    let plan = real_plan_for(n);
    let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
    plan.r2c(signal, &mut spec);
    let half = n / 2;
    let norm = 1.0 / (2.0 * std::f64::consts::PI * n as f64);
    let mut freqs = Vec::with_capacity(half);
    let mut dens = Vec::with_capacity(half);
    for (j, z) in spec.iter().enumerate().take(half + 1).skip(1) {
        freqs.push(2.0 * std::f64::consts::PI * j as f64 / n as f64);
        dens.push(z.norm_sqr() * norm);
    }
    (freqs, dens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc += x * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64).sin()))
            .collect()
    }

    #[test]
    fn pow2_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = ramp(n);
            let err = max_err(&fft(&x), &dft_naive(&x));
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 31, 100] {
            let x = ramp(n);
            let err = max_err(&fft(&x), &dft_naive(&x));
            assert!(err < 1e-8, "n={n} err={err}");
        }
    }

    #[test]
    fn round_trip_identity() {
        for &n in &[1usize, 2, 7, 16, 33, 128] {
            let x = ramp(n);
            let err = max_err(&ifft(&fft(&x)), &x);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        for z in fft(&x) {
            assert!((z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![Complex::from_real(2.0); 8];
        let spec = fft(&x);
        assert!((spec[0] - Complex::from_real(16.0)).abs() < 1e-12);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let x = ramp(64);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn periodogram_peaks_at_sine_frequency() {
        let n = 1024;
        let j0 = 50;
        let sig: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * j0 as f64 * t as f64 / n as f64).sin())
            .collect();
        let (_, dens) = periodogram(&sig);
        let argmax = dens
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // dens[j-1] corresponds to Fourier index j.
        assert_eq!(argmax + 1, j0);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(fft(&[]).is_empty());
        let one = [Complex::new(3.5, -1.0)];
        assert_eq!(fft(&one), one.to_vec());
        assert_eq!(ifft(&one), one.to_vec());
    }
}
