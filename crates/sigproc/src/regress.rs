//! Least-squares regression helpers.
//!
//! Every estimator in the reproduction ends in a line fit: the Hurst
//! estimators regress log-energy against octave or log-variance against
//! log-block-size, and the SNC checker fits `log R_g(τ)` against `log τ`.

/// Result of a (weighted) simple linear regression `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when the
    /// model explains nothing; may be negative for weighted fits).
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Number of points used.
    pub n: usize,
}

impl LineFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares fit of `y` on `x`.
///
/// # Panics
///
/// Panics if the slices differ in length or fewer than 2 points are given.
pub fn ols(x: &[f64], y: &[f64]) -> LineFit {
    let w = vec![1.0; x.len()];
    weighted_ols(x, y, &w)
}

/// Weighted least squares fit minimizing `Σ wᵢ (yᵢ - a xᵢ - b)²`.
///
/// The Abry-Veitch wavelet estimator weights each octave by the inverse
/// variance of its log-energy, which is what makes it asymptotically
/// efficient; this is the fit it uses.
///
/// # Panics
///
/// Panics if slice lengths differ, fewer than 2 points are given, any
/// weight is negative, or all weights are zero.
pub fn weighted_ols(x: &[f64], y: &[f64], w: &[f64]) -> LineFit {
    assert_eq!(x.len(), y.len(), "x and y length mismatch");
    assert_eq!(x.len(), w.len(), "x and w length mismatch");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    assert!(
        w.iter().all(|&wi| wi >= 0.0),
        "weights must be non-negative"
    );
    let sw: f64 = w.iter().sum();
    assert!(sw > 0.0, "at least one weight must be positive");

    let mx = x.iter().zip(w).map(|(xi, wi)| xi * wi).sum::<f64>() / sw;
    let my = y.iter().zip(w).map(|(yi, wi)| yi * wi).sum::<f64>() / sw;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..x.len() {
        let dx = x[i] - mx;
        sxx += w[i] * dx * dx;
        sxy += w[i] * dx * (y[i] - my);
    }
    assert!(sxx > 0.0, "x values are all identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..x.len() {
        let resid = y[i] - slope * x[i] - intercept;
        ss_res += w[i] * resid * resid;
        let dy = y[i] - my;
        ss_tot += w[i] * dy * dy;
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    let dof = (x.len() as f64 - 2.0).max(1.0);
    let slope_stderr = (ss_res / dof / sxx).sqrt();
    LineFit {
        slope,
        intercept,
        r_squared,
        slope_stderr,
        n: x.len(),
    }
}

/// Fits `y = c · x^p` by OLS on `(log10 x, log10 y)`, returning the fitted
/// exponent `p`, the prefactor `c`, and the underlying line fit.
///
/// Pairs with non-positive `x` or `y` are skipped (they have no logarithm);
/// the fit uses the remaining points.
///
/// # Panics
///
/// Panics if fewer than 2 usable pairs remain.
pub fn power_law_fit(x: &[f64], y: &[f64]) -> (f64, f64, LineFit) {
    assert_eq!(x.len(), y.len());
    let mut lx = Vec::with_capacity(x.len());
    let mut ly = Vec::with_capacity(y.len());
    for i in 0..x.len() {
        if x[i] > 0.0 && y[i] > 0.0 {
            lx.push(x[i].log10());
            ly.push(y[i].log10());
        }
    }
    let fit = ols(&lx, &ly);
    (fit.slope, 10f64.powf(fit.intercept), fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 3.0 * xi - 2.0).collect();
        let fit = ols(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-10);
    }

    #[test]
    fn noisy_line_slope_close() {
        // Deterministic "noise".
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| 0.5 * xi + 1.0 + 0.01 * ((i * 2654435761) % 100) as f64 / 100.0)
            .collect();
        let fit = ols(&x, &y);
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn weights_zero_points_are_ignored() {
        let x = [0.0, 1.0, 2.0, 100.0];
        let y = [0.0, 1.0, 2.0, -500.0];
        let w = [1.0, 1.0, 1.0, 0.0];
        let fit = weighted_ols(&x, &y, &w);
        assert!((fit.slope - 1.0).abs() < 1e-12);
        assert!(fit.intercept.abs() < 1e-12);
    }

    #[test]
    fn weighting_pulls_fit_toward_heavy_points() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 4.0];
        let uniform = weighted_ols(&x, &y, &[1.0, 1.0, 1.0]);
        let heavy_last = weighted_ols(&x, &y, &[1.0, 1.0, 10.0]);
        assert!(heavy_last.slope > uniform.slope);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let x: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 2.5 * xi.powf(-0.7)).collect();
        let (p, c, fit) = power_law_fit(&x, &y);
        assert!((p + 0.7).abs() < 1e-10);
        assert!((c - 2.5).abs() < 1e-9);
        assert!(fit.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn power_law_fit_skips_nonpositive_pairs() {
        let x = [0.0, 1.0, 2.0, 4.0, 8.0];
        let y = [5.0, 1.0, 0.5, 0.25, 0.125];
        let (p, _, fit) = power_law_fit(&x, &y);
        assert_eq!(fit.n, 4);
        assert!((p + 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        ols(&[1.0], &[2.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_panics() {
        ols(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }
}
