//! Special functions: log-gamma, error function, and the standard normal
//! CDF/quantile.
//!
//! These back the negative-binomial log-pmf of Eq. (9)/(11) in the paper
//! (which overflows in direct form for the lags the paper plots, so the
//! evaluation must happen in log space) and the Gaussian-copula marginal
//! transform in `sst-traffic`.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~1e-13 over the positive axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is intentionally unsupported:
/// every caller in this workspace passes positive arguments, and a silent
/// reflection would mask bugs).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small-argument accuracy.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Log of the binomial coefficient `C(n, k)` for real-valued `n` (the
/// generalized binomial coefficient used by the negative binomial pmf).
pub fn ln_choose(n: f64, k: f64) -> f64 {
    if k < 0.0 || k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0.0 || k == n {
        return 0.0;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Error function, Abramowitz & Stegun 7.1.26-style rational approximation
/// refined with one Newton step against the complementary integral;
/// accurate to ~1e-12.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function with good relative accuracy in the far
/// tail (needed when mapping fGn values through Φ for copula transforms).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // W. J. Cody-style rational expansion via the scaled complementary
    // error function erfcx; here we use the continued-fraction/series split.
    if x < 2.2 {
        // Maclaurin series for erf: Σ (-1)^k x^{2k+1} / (k! (2k+1)), then complement.
        let x2 = x * x;
        let mut sum = 0.0f64;
        let mut t = x;
        let mut k = 0usize;
        loop {
            let contrib = t / (2.0 * k as f64 + 1.0);
            sum += contrib;
            if contrib.abs() < 1e-17 * sum.abs() || k > 200 {
                break;
            }
            k += 1;
            t *= -x2 / k as f64;
        }
        1.0 - sum * 2.0 / std::f64::consts::PI.sqrt()
    } else {
        // Continued fraction for erfc, evaluated by backward recursion:
        // erfc(x) = exp(-x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))
        // Converges rapidly for x >= 2.2; 120 levels is far past convergence.
        let x2 = x * x;
        let mut t = 0.0f64;
        for k in (1..=120u32).rev() {
            t = (k as f64 / 2.0) / (x + t);
        }
        (-x2).exp() / std::f64::consts::PI.sqrt() / (x + t)
    }
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile Φ⁻¹(p), Acklam's rational approximation
/// polished by one Halley step (|error| < 1e-13 for p in (0,1)).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against Φ(x) - p.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Hurwitz-style tail of the Riemann zeta derivative used by the wavelet
/// estimator's octave-variance weights: `ζ(2, x) = Σ_{k≥0} 1/(x+k)²`.
pub fn hurwitz_zeta_2(x: f64) -> f64 {
    assert!(x > 0.0, "hurwitz_zeta_2 requires x > 0");
    // Sum the first terms directly, then Euler-Maclaurin tail.
    let mut sum = 0.0;
    let cutoff = 32usize;
    for k in 0..cutoff {
        let v = x + k as f64;
        sum += 1.0 / (v * v);
    }
    let a = x + cutoff as f64;
    // ∫_a^∞ t^-2 dt + 0.5 a^-2 + (1/6)·2·a^-3/2! ...
    sum + 1.0 / a + 0.5 / (a * a) + 1.0 / (6.0 * a * a * a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // Γ(n) = (n-1)!
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n={n}");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(5.0, 2.0) - 10.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10.0, 5.0) - 252.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(5.0, 0.0), 0.0);
        assert_eq!(ln_choose(3.0, 4.0), f64::NEG_INFINITY);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (-1.0, -0.842_700_792_949_714_9),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-10, "x={x} got={}", erf(x));
        }
    }

    #[test]
    fn erfc_far_tail_relative_accuracy() {
        // erfc(5) = 1.537459794428035e-12
        let got = erfc(5.0);
        let want = 1.537_459_794_428_035e-12;
        assert!((got / want - 1.0).abs() < 1e-6, "got={got}");
    }

    #[test]
    fn normal_cdf_symmetry_and_landmarks() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.975_002_104_851_78).abs() < 1e-9);
        for x in [-3.0, -1.0, 0.3, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-9, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-11, "p={p} x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn hurwitz_zeta_2_matches_basel_at_one() {
        // ζ(2,1) = π²/6
        let want = std::f64::consts::PI.powi(2) / 6.0;
        assert!((hurwitz_zeta_2(1.0) - want).abs() < 1e-9);
    }

    #[test]
    fn hurwitz_zeta_2_decreases() {
        assert!(hurwitz_zeta_2(1.0) > hurwitz_zeta_2(2.0));
        assert!(hurwitz_zeta_2(2.0) > hurwitz_zeta_2(10.0));
    }
}
