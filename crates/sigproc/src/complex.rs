//! Minimal complex arithmetic for the FFT and spectral estimators.
//!
//! The workspace is built offline without `num-complex`, so this module
//! provides the small amount of complex arithmetic the substrate needs.
//! The type is `Copy` and all operations are `#[inline]`; the FFT hot loop
//! compiles down to the same code the `num-complex` version would.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use sst_sigproc::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `e^{iθ}` (a unit phasor with the given angle in radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z / z, Complex::ONE));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < 1e-12);
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(0.9, 0.2);
        let mut acc = Complex::ONE;
        for n in 0..12u32 {
            assert!(close(z.powi(n), acc));
            acc *= z;
        }
    }

    #[test]
    fn division_by_nonzero() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-2.5, 0.5);
        let q = a / b;
        assert!(close(q * b, a));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
