//! # sst-sigproc — signal-processing substrate
//!
//! Self-contained numerical kernels for the reproduction of He & Hou,
//! *"An In-Depth, Analytical Study of Sampling Techniques for Self-Similar
//! Internet Traffic"* (ICDCS 2005). The workspace builds offline, so FFTs,
//! wavelets, regression and special functions are implemented here rather
//! than pulled from crates.io.
//!
//! ## Contents
//!
//! * [`complex`] — minimal `f64` complex arithmetic.
//! * [`fft`] — radix-2 + Bluestein FFT, periodogram (thin wrappers over
//!   the shared plan cache).
//! * [`plan`] — precomputed FFT/Bluestein plans (twiddle tables,
//!   bit-reversal lists, reusable scratch) with a process-wide LRU.
//! * [`rfft`] — real-valued transforms (`r2c`/`c2r`) that exploit
//!   Hermitian symmetry through a half-size complex FFT.
//! * [`conv`] — convolution, τ-fold pmf self-convolution (the `k(u, τ)` of
//!   the paper's Theorem 1), FFT autocorrelation.
//! * [`wavelet`] — Daubechies DWT pyramid for the Abry-Veitch Hurst
//!   estimator.
//! * [`regress`] — OLS / weighted OLS / power-law fits.
//! * [`special`] — `ln Γ`, `erf`, normal CDF/quantile, `ζ(2, x)`.
//! * [`numeric`] — bisection, multi-root scan, golden section, grids.
//!
//! ## Example
//!
//! ```
//! use sst_sigproc::{fft, Complex};
//!
//! let signal = [1.0, 0.0, 0.0, 0.0].map(Complex::from_real);
//! let spectrum = fft::fft(&signal);
//! assert!(spectrum.iter().all(|z| (z.abs() - 1.0).abs() < 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod conv;
pub mod fft;
pub mod numeric;
pub mod plan;
pub mod regress;
pub mod rfft;
pub mod special;
pub mod wavelet;

pub use complex::Complex;
pub use plan::{BluesteinPlan, BluesteinScratch, FftPlan};
pub use regress::LineFit;
pub use rfft::RealFftPlan;
pub use wavelet::{DwtPyramid, Wavelet};

#[cfg(test)]
mod proptests {
    use crate::complex::Complex;
    use crate::conv::{autocovariance, autocovariance_direct, convolve_direct, convolve_fft};
    use crate::fft::{fft, ifft};
    use crate::rfft::RealFftPlan;
    use proptest::prelude::*;

    fn small_signal() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, 2..128)
    }

    /// Signals whose lengths exercise both real-FFT backends: arbitrary
    /// lengths hit the Bluestein fallback, and padding to the next power
    /// of two (done in the tests) hits the half-size fast path.
    fn real_signal() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, 1..200)
    }

    proptest! {
        #[test]
        fn fft_round_trip(xs in small_signal()) {
            let z: Vec<Complex> = xs.iter().map(|&x| Complex::from_real(x)).collect();
            let back = ifft(&fft(&z));
            for (a, b) in z.iter().zip(&back) {
                prop_assert!((*a - *b).abs() < 1e-7);
            }
        }

        #[test]
        fn fft_is_linear(xs in small_signal(), k in -10.0f64..10.0) {
            let z: Vec<Complex> = xs.iter().map(|&x| Complex::from_real(x)).collect();
            let scaled: Vec<Complex> = z.iter().map(|&v| v.scale(k)).collect();
            let f1 = fft(&scaled);
            let f2: Vec<Complex> = fft(&z).into_iter().map(|v| v.scale(k)).collect();
            for (a, b) in f1.iter().zip(&f2) {
                prop_assert!((*a - *b).abs() < 1e-6);
            }
        }

        #[test]
        fn parseval(xs in small_signal()) {
            let z: Vec<Complex> = xs.iter().map(|&x| Complex::from_real(x)).collect();
            let spec = fft(&z);
            let te: f64 = z.iter().map(|v| v.norm_sqr()).sum();
            let fe: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / z.len() as f64;
            prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
        }

        #[test]
        fn convolution_agreement(
            a in proptest::collection::vec(-10.0f64..10.0, 1..40),
            b in proptest::collection::vec(-10.0f64..10.0, 1..40),
        ) {
            let d = convolve_direct(&a, &b);
            let f = convolve_fft(&a, &b);
            prop_assert_eq!(d.len(), f.len());
            for (x, y) in d.iter().zip(&f) {
                prop_assert!((x - y).abs() < 1e-7);
            }
        }

        #[test]
        fn convolution_commutes(
            a in proptest::collection::vec(-10.0f64..10.0, 1..30),
            b in proptest::collection::vec(-10.0f64..10.0, 1..30),
        ) {
            let ab = convolve_direct(&a, &b);
            let ba = convolve_direct(&b, &a);
            for (x, y) in ab.iter().zip(&ba) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn autocovariance_agreement(xs in proptest::collection::vec(-50.0f64..50.0, 4..100)) {
            let fft_ver = autocovariance(&xs, 10);
            let direct = autocovariance_direct(&xs, 10);
            for (x, y) in fft_ver.iter().zip(&direct) {
                prop_assert!((x - y).abs() < 1e-7);
            }
        }

        #[test]
        fn normal_quantile_round_trip(p in 0.0001f64..0.9999) {
            let x = crate::special::normal_quantile(p);
            prop_assert!((crate::special::normal_cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn real_fft_round_trip_bluestein_sizes(xs in real_signal()) {
            // Arbitrary lengths: mostly non-powers of two, i.e. the
            // Bluestein fallback, with the occasional pow2 mixed in.
            let plan = RealFftPlan::new(xs.len());
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.r2c(&xs, &mut spec);
            let mut back = vec![0.0; xs.len()];
            plan.c2r(&mut spec, &mut back);
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-7);
            }
        }

        #[test]
        fn real_fft_round_trip_pow2_sizes(xs in real_signal()) {
            // Zero-pad to the next power of two: the half-size fast path.
            let n = xs.len().next_power_of_two().max(2);
            let mut padded = xs.clone();
            padded.resize(n, 0.0);
            let plan = RealFftPlan::new(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.r2c(&padded, &mut spec);
            let mut back = vec![0.0; n];
            plan.c2r(&mut spec, &mut back);
            for (a, b) in padded.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }

        #[test]
        fn real_fft_matches_hermitian_complex_spectrum(xs in real_signal()) {
            // The half-spectrum must equal the first n/2+1 bins of the
            // full complex FFT, and the discarded bins must be their
            // mirror conjugates (Hermitian symmetry) — for both the
            // pow2 fast path and the Bluestein fallback.
            for pad in [false, true] {
                let mut x = xs.clone();
                if pad {
                    x.resize(x.len().next_power_of_two().max(2), 0.0);
                }
                let n = x.len();
                let plan = RealFftPlan::new(n);
                let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
                plan.r2c(&x, &mut spec);
                let z: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
                let full = fft(&z);
                let tol = 1e-7 * (1.0 + x.iter().map(|v| v.abs()).sum::<f64>());
                for k in 0..plan.spectrum_len() {
                    prop_assert!((spec[k] - full[k]).abs() < tol, "bin {k}");
                }
                for k in 1..n - n / 2 {
                    prop_assert!((full[n - k] - full[k].conj()).abs() < tol, "mirror {k}");
                }
            }
        }
    }
}
