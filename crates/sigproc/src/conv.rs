//! Convolution and autocorrelation.
//!
//! The SNC checker needs the τ-fold self-convolution of a probability mass
//! function (computed in the frequency domain), and the Hurst estimators
//! need sample autocovariance/autocorrelation sequences for long series
//! (computed with the FFT in O(n log n)).

use crate::complex::Complex;
use crate::fft::{fft_pow2_in_place, ifft_pow2_in_place, next_pow2, rfft};

/// Direct (time-domain) linear convolution; O(n·m). Used as the reference
/// implementation and for short inputs.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution; O((n+m) log(n+m)).
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = next_pow2(out_len);
    let mut fa = vec![Complex::ZERO; m];
    let mut fb = vec![Complex::ZERO; m];
    for (dst, &src) in fa.iter_mut().zip(a) {
        *dst = Complex::from_real(src);
    }
    for (dst, &src) in fb.iter_mut().zip(b) {
        *dst = Complex::from_real(src);
    }
    fft_pow2_in_place(&mut fa);
    fft_pow2_in_place(&mut fb);
    for k in 0..m {
        fa[k] *= fb[k];
    }
    ifft_pow2_in_place(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re).collect()
}

/// Linear convolution, choosing direct vs FFT by size.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= 4096 {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// The k-fold self-convolution of a probability mass function supported on
/// `0..pmf.len()`, truncated to `max_len` entries.
///
/// This is the distribution of the sum of `k` i.i.d. draws — exactly the
/// `k(u, τ)` of Theorem 1 in the paper (τ-th order convolution of the
/// inter-sample-gap distribution `H`).
///
/// Computed in the frequency domain as `IFFT(FFT(pmf)^k)` on a grid large
/// enough to hold the untruncated support (`k · (len-1) + 1`), then clipped,
/// so no circular aliasing can contaminate the kept prefix.
///
/// # Panics
///
/// Panics if `k == 0` or `pmf` is empty.
pub fn self_convolve_pmf(pmf: &[f64], k: usize, max_len: usize) -> Vec<f64> {
    assert!(k >= 1, "convolution order must be >= 1");
    assert!(!pmf.is_empty(), "pmf must be non-empty");
    let full = (pmf.len() - 1)
        .saturating_mul(k)
        .saturating_add(1)
        .min(max_len.saturating_mul(2).max(pmf.len()));
    let m = next_pow2(full.max(max_len));
    let mut fa = vec![Complex::ZERO; m];
    for (dst, &src) in fa.iter_mut().zip(pmf) {
        *dst = Complex::from_real(src);
    }
    fft_pow2_in_place(&mut fa);
    for z in fa.iter_mut() {
        *z = z.powi(k as u32);
    }
    ifft_pow2_in_place(&mut fa);
    let mut out: Vec<f64> = fa
        .into_iter()
        .take(max_len)
        .map(|z| z.re.max(0.0))
        .collect();
    // Clean up tiny negative round-off and renormalize the kept mass when
    // it should sum to ~1 (truncation may legitimately cut real mass; only
    // rescale overshoot).
    let total: f64 = out.iter().sum();
    if total > 1.0 {
        for v in out.iter_mut() {
            *v /= total;
        }
    }
    out
}

/// Biased sample autocovariance `γ̂(k) = (1/n) Σ_{t} (x_t - x̄)(x_{t+k} - x̄)`
/// for `k = 0..max_lag`, computed with the FFT.
pub fn autocovariance(signal: &[f64], max_lag: usize) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mean = signal.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
    // Zero-pad to >= 2n to avoid circular wrap-around.
    let m = next_pow2(2 * n);
    let mut buf = vec![Complex::ZERO; m];
    for (dst, &src) in buf.iter_mut().zip(&centered) {
        *dst = Complex::from_real(src);
    }
    fft_pow2_in_place(&mut buf);
    for z in buf.iter_mut() {
        *z = Complex::from_real(z.norm_sqr());
    }
    ifft_pow2_in_place(&mut buf);
    (0..=max_lag).map(|k| buf[k].re / n as f64).collect()
}

/// Sample autocorrelation `ρ̂(k) = γ̂(k)/γ̂(0)` for `k = 0..max_lag`.
///
/// Returns all-zero (after lag 0) for constant signals, whose autocovariance
/// is identically zero.
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> Vec<f64> {
    let acov = autocovariance(signal, max_lag);
    if acov.is_empty() {
        return acov;
    }
    let var = acov[0];
    if var <= 0.0 {
        let mut out = vec![0.0; acov.len()];
        out[0] = 1.0;
        return out;
    }
    acov.into_iter().map(|g| g / var).collect()
}

/// Direct O(n·k) autocovariance, the reference implementation for tests.
pub fn autocovariance_direct(signal: &[f64], max_lag: usize) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mean = signal.iter().sum::<f64>() / n as f64;
    (0..=max_lag)
        .map(|k| {
            let mut acc = 0.0;
            for t in 0..n - k {
                acc += (signal[t] - mean) * (signal[t + k] - mean);
            }
            acc / n as f64
        })
        .collect()
}

/// Cross-energy spectrum helper: squared-magnitude FFT of a real signal
/// (the unnormalized periodogram numerator), exposed for estimators that
/// need the raw spectrum.
pub fn power_spectrum(signal: &[f64]) -> Vec<f64> {
    rfft(signal).into_iter().map(|z| z.norm_sqr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_convolution_small_case() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 1.0];
        assert_eq!(convolve_direct(&a, &b), vec![0.5, 2.0, 3.5, 3.0]);
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let a: Vec<f64> = (0..57).map(|i| ((i * 7919) % 23) as f64 - 11.0).collect();
        let b: Vec<f64> = (0..91).map(|i| ((i * 104729) % 17) as f64 * 0.25).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_eq!(d.len(), f.len());
        for (x, y) in d.iter().zip(&f) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_convolution_is_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn self_convolution_of_degenerate_pmf_is_shifted_impulse() {
        // P(T = 3) = 1  =>  sum of 4 draws is 12 with probability 1.
        let mut pmf = vec![0.0; 4];
        pmf[3] = 1.0;
        let out = self_convolve_pmf(&pmf, 4, 20);
        for (u, &p) in out.iter().enumerate() {
            if u == 12 {
                assert!((p - 1.0).abs() < 1e-9);
            } else {
                assert!(p.abs() < 1e-9, "u={u} p={p}");
            }
        }
    }

    #[test]
    fn self_convolution_matches_repeated_direct() {
        let pmf = [0.2, 0.5, 0.3];
        let k = 5;
        let mut direct = pmf.to_vec();
        for _ in 1..k {
            direct = convolve_direct(&direct, &pmf);
        }
        let fast = self_convolve_pmf(&pmf, k, direct.len());
        for (x, y) in direct.iter().zip(&fast) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn self_convolution_mass_sums_to_one_when_untruncated() {
        let pmf = [0.1, 0.4, 0.25, 0.25];
        let out = self_convolve_pmf(&pmf, 8, 64);
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn autocovariance_fft_matches_direct() {
        let sig: Vec<f64> = (0..200)
            .map(|i| ((i * 31) % 13) as f64 + (i as f64 / 50.0).sin())
            .collect();
        let a = autocovariance(&sig, 40);
        let b = autocovariance_direct(&sig, 40);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn autocorrelation_of_constant_is_degenerate() {
        let sig = vec![5.0; 64];
        let rho = autocorrelation(&sig, 10);
        assert_eq!(rho[0], 1.0);
        assert!(rho[1..].iter().all(|&r| r == 0.0));
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let sig: Vec<f64> = (0..128).map(|i| (i as f64 * 0.7).cos()).collect();
        let rho = autocorrelation(&sig, 5);
        assert!((rho[0] - 1.0).abs() < 1e-12);
        assert!(rho[1..].iter().all(|&r| r.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn alternating_signal_has_negative_lag_one_correlation() {
        let sig: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = autocorrelation(&sig, 2);
        assert!(rho[1] < -0.9);
        assert!(rho[2] > 0.9);
    }
}
