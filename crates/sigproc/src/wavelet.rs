//! Discrete wavelet transform (Mallat pyramid) with Daubechies filters.
//!
//! The paper estimates the Hurst parameter of sampled processes with the
//! wavelet tool of Roughan, Veitch & Abry \[22\]. That estimator needs, for
//! each octave `j`, the detail coefficients `d_{j,k}` of a dyadic DWT; the
//! log2 of their average energy is linear in `j` with slope `2H - 1` for
//! long-range-dependent input. This module provides the transform; the
//! estimator itself lives in `sst-hurst`.

/// Supported orthonormal wavelet families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Wavelet {
    /// Haar (Daubechies-1), 2 taps.
    Haar,
    /// Daubechies-2, 4 taps ("db2"/"D4").
    Db2,
    /// Daubechies-3, 6 taps.
    Db3,
    /// Daubechies-4, 8 taps.
    Db4,
    /// Daubechies-6, 12 taps.
    Db6,
}

impl Wavelet {
    /// Scaling (low-pass) filter coefficients, normalized so that
    /// `Σ h[k] = √2` (orthonormal convention).
    pub fn lowpass(self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR,
            Wavelet::Db2 => &DB2,
            Wavelet::Db3 => &DB3,
            Wavelet::Db4 => &DB4,
            Wavelet::Db6 => &DB6,
        }
    }

    /// Wavelet (high-pass) filter via the quadrature-mirror relation
    /// `g[k] = (-1)^k h[L-1-k]`.
    pub fn highpass(self) -> Vec<f64> {
        let h = self.lowpass();
        let l = h.len();
        (0..l)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * h[l - 1 - k]
            })
            .collect()
    }

    /// Number of vanishing moments (the Daubechies order).
    pub fn vanishing_moments(self) -> usize {
        match self {
            Wavelet::Haar => 1,
            Wavelet::Db2 => 2,
            Wavelet::Db3 => 3,
            Wavelet::Db4 => 4,
            Wavelet::Db6 => 6,
        }
    }
}

// Coefficients from Daubechies, "Ten Lectures on Wavelets", Table 6.1,
// normalized to Σh = √2.
const HAAR: [f64; 2] = [
    std::f64::consts::FRAC_1_SQRT_2,
    std::f64::consts::FRAC_1_SQRT_2,
];
const DB2: [f64; 4] = [
    0.482_962_913_144_690_2,
    0.836_516_303_737_469,
    0.224_143_868_041_857_35,
    -0.129_409_522_550_921_45,
];
const DB3: [f64; 6] = [
    0.332_670_552_950_082_8,
    0.806_891_509_311_092_3,
    0.459_877_502_118_491_4,
    -0.135_011_020_010_254_58,
    -0.085_441_273_882_026_66,
    0.035_226_291_882_100_656,
];
const DB4: [f64; 8] = [
    0.230_377_813_308_896_4,
    0.714_846_570_552_915_5,
    0.630_880_767_929_859_5,
    -0.027_983_769_416_859_854,
    -0.187_034_811_719_093_1,
    0.030_841_381_835_560_763,
    0.032_883_011_666_885_17,
    -0.010_597_401_785_069_032,
];
const DB6: [f64; 12] = [
    0.111_540_743_350_109_52,
    0.494_623_890_398_453_3,
    0.751_133_908_021_095_9,
    0.315_250_351_709_198_46,
    -0.226_264_693_965_440_46,
    -0.129_766_867_567_262_26,
    0.097_501_605_587_322_5,
    0.027_522_865_530_305_727,
    -0.031_582_039_318_486_6,
    0.000_553_842_201_161_602_2,
    0.004_777_257_511_010_651,
    -0.001_077_301_085_308_479_8,
];

/// Result of a multi-level pyramid decomposition.
#[derive(Clone, Debug)]
pub struct DwtPyramid {
    /// Detail coefficient vectors; `details[j]` holds octave `j+1`
    /// (finest scale first).
    pub details: Vec<Vec<f64>>,
    /// Approximation (scaling) coefficients at the coarsest level.
    pub approx: Vec<f64>,
    /// The wavelet used for the decomposition.
    pub wavelet: Wavelet,
}

impl DwtPyramid {
    /// Number of decomposition levels actually computed.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Average energy `μ_j = (1/n_j) Σ_k d_{j,k}²` of octave `j`
    /// (1-based, as in the wavelet-estimator literature).
    ///
    /// Returns `None` if the octave was not computed or is empty.
    pub fn octave_energy(&self, j: usize) -> Option<f64> {
        let d = self.details.get(j.checked_sub(1)?)?;
        if d.is_empty() {
            return None;
        }
        Some(d.iter().map(|c| c * c).sum::<f64>() / d.len() as f64)
    }

    /// Number of detail coefficients at octave `j` (1-based).
    pub fn octave_len(&self, j: usize) -> usize {
        j.checked_sub(1)
            .and_then(|i| self.details.get(i))
            .map_or(0, Vec::len)
    }

    /// Total energy across all detail octaves plus the approximation.
    pub fn total_energy(&self) -> f64 {
        let d: f64 = self
            .details
            .iter()
            .flat_map(|v| v.iter())
            .map(|c| c * c)
            .sum();
        let a: f64 = self.approx.iter().map(|c| c * c).sum();
        d + a
    }
}

/// One analysis step: circular convolution with the low/high-pass pair and
/// dyadic downsampling into caller-provided buffers. Periodic
/// ("wraparound") boundary handling keeps the transform orthonormal so
/// Parseval holds exactly.
fn analysis_step_into(
    signal: &[f64],
    low: &[f64],
    high: &[f64],
    a: &mut Vec<f64>,
    d: &mut Vec<f64>,
) {
    let n = signal.len();
    debug_assert!(n.is_multiple_of(2));
    let half = n / 2;
    a.clear();
    a.reserve(half);
    d.clear();
    d.reserve(half);
    for i in 0..half {
        let mut sa = 0.0;
        let mut sd = 0.0;
        for (k, (&lo, &hi)) in low.iter().zip(high).enumerate() {
            let idx = (2 * i + k) % n;
            let x = signal[idx];
            sa += lo * x;
            sd += hi * x;
        }
        a.push(sa);
        d.push(sd);
    }
}

/// Reusable buffers for [`dwt_with`]: the approximation ping-pong pair
/// and the per-wavelet high-pass filter, so repeated transforms (e.g. the
/// Abry-Veitch estimator inside a Monte-Carlo experiment loop) allocate
/// only for the detail vectors they return.
#[derive(Clone, Debug, Default)]
pub struct DwtWorkspace {
    current: Vec<f64>,
    next: Vec<f64>,
    highpass: Vec<f64>,
    highpass_of: Option<Wavelet>,
}

impl DwtWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Full pyramid decomposition of `signal` down to `max_levels` octaves (or
/// as deep as the dyadic length allows, whichever is smaller).
///
/// The input is truncated to the largest power-of-two-divisible prefix
/// needed for the requested depth; octave `j` then has `⌊n/2^j⌋`
/// coefficients. The signal is **not** mean-centered — the wavelet filters
/// annihilate constants by construction (vanishing moments ≥ 1).
///
/// # Panics
///
/// Panics if `signal.len() < 2` or `max_levels == 0`.
pub fn dwt(signal: &[f64], wavelet: Wavelet, max_levels: usize) -> DwtPyramid {
    dwt_with(signal, wavelet, max_levels, &mut DwtWorkspace::new())
}

/// [`dwt`] with caller-owned scratch buffers (see [`DwtWorkspace`]);
/// results are identical to [`dwt`].
///
/// # Panics
///
/// Panics if `signal.len() < 2` or `max_levels == 0`.
pub fn dwt_with(
    signal: &[f64],
    wavelet: Wavelet,
    max_levels: usize,
    ws: &mut DwtWorkspace,
) -> DwtPyramid {
    assert!(
        signal.len() >= 2,
        "signal too short for a wavelet transform"
    );
    assert!(max_levels >= 1, "need at least one decomposition level");
    let low = wavelet.lowpass();
    if ws.highpass_of != Some(wavelet) {
        ws.highpass = wavelet.highpass();
        ws.highpass_of = Some(wavelet);
    }

    // Depth limited so the coarsest level still has at least filter-length
    // coefficients (below that the periodic wrap dominates the statistics).
    let min_len = low.len().max(4);
    let mut levels = 0usize;
    let mut len = signal.len();
    while levels < max_levels && len / 2 >= min_len {
        len /= 2;
        levels += 1;
    }
    let levels = levels.max(1);

    ws.current.clear();
    ws.current
        .extend_from_slice(&signal[..(signal.len() - signal.len() % 2)]);
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        if ws.current.len() % 2 == 1 {
            ws.current.pop();
        }
        if ws.current.len() < 2 {
            break;
        }
        let mut d = Vec::new();
        analysis_step_into(&ws.current, low, &ws.highpass, &mut ws.next, &mut d);
        details.push(d);
        std::mem::swap(&mut ws.current, &mut ws.next);
    }
    DwtPyramid {
        details,
        approx: ws.current.clone(),
        wavelet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let sig: Vec<f64> = (0..512)
            .map(|t| ((t * 2654435761u64 as usize) % 997) as f64 / 499.0 - 1.0)
            .collect();
        let mut ws = DwtWorkspace::new();
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4] {
            let fresh = dwt(&sig, w, 4);
            let reused = dwt_with(&sig, w, 4, &mut ws);
            assert_eq!(fresh.details, reused.details, "{w:?}");
            assert_eq!(fresh.approx, reused.approx, "{w:?}");
        }
        // Second pass through the same workspace stays stable.
        let again = dwt_with(&sig, Wavelet::Db2, 4, &mut ws);
        assert_eq!(again.details, dwt(&sig, Wavelet::Db2, 4).details);
    }

    #[test]
    fn filters_are_orthonormal() {
        for w in [
            Wavelet::Haar,
            Wavelet::Db2,
            Wavelet::Db3,
            Wavelet::Db4,
            Wavelet::Db6,
        ] {
            let h = w.lowpass();
            let sum: f64 = h.iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-9,
                "{w:?} sum={sum}"
            );
            let energy: f64 = h.iter().map(|c| c * c).sum();
            assert!((energy - 1.0).abs() < 1e-9, "{w:?} energy={energy}");
            // Even-shift orthogonality: Σ h[k] h[k+2m] = 0 for m != 0.
            for m in 1..h.len() / 2 {
                let dot: f64 = (0..h.len() - 2 * m).map(|k| h[k] * h[k + 2 * m]).sum();
                assert!(dot.abs() < 1e-9, "{w:?} m={m} dot={dot}");
            }
        }
    }

    #[test]
    fn highpass_annihilates_constants() {
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4, Wavelet::Db6] {
            let g = w.highpass();
            let sum: f64 = g.iter().sum();
            assert!(sum.abs() < 1e-9, "{w:?} sum={sum}");
        }
    }

    #[test]
    fn db2_annihilates_linear_ramps() {
        // 2 vanishing moments => detail coefficients of t (mod wraparound)
        // are zero away from the periodic seam.
        let sig: Vec<f64> = (0..64).map(|t| 2.0 * t as f64 + 1.0).collect();
        let pyr = dwt(&sig, Wavelet::Db2, 1);
        let d = &pyr.details[0];
        // All interior coefficients vanish; the seam picks up the wrap.
        for &c in &d[..d.len() - 2] {
            assert!(c.abs() < 1e-9, "interior coefficient {c}");
        }
    }

    #[test]
    fn constant_signal_has_zero_detail_energy() {
        let sig = vec![3.25; 256];
        let pyr = dwt(&sig, Wavelet::Db3, 4);
        for j in 1..=pyr.levels() {
            assert!(pyr.octave_energy(j).unwrap() < 1e-18);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig: Vec<f64> = (0..512)
            .map(|t| ((t * 2654435761u64 as usize) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let input_energy: f64 = sig.iter().map(|x| x * x).sum();
        for w in [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4] {
            let pyr = dwt(&sig, w, 5);
            let e = pyr.total_energy();
            assert!(
                (e - input_energy).abs() < 1e-6 * input_energy,
                "{w:?}: {e} vs {input_energy}"
            );
        }
    }

    #[test]
    fn octave_lengths_halve() {
        let sig = vec![1.0; 1024];
        let pyr = dwt(&sig, Wavelet::Haar, 6);
        assert_eq!(pyr.levels(), 6);
        for j in 1..=6 {
            assert_eq!(pyr.octave_len(j), 1024 >> j);
        }
        assert_eq!(pyr.approx.len(), 1024 >> 6);
    }

    #[test]
    fn depth_is_limited_by_signal_length() {
        let sig = vec![0.5; 64];
        let pyr = dwt(&sig, Wavelet::Db6, 10);
        // 12-tap filter: stop when next level would have < 12 coefficients.
        assert!(pyr.levels() <= 3);
        assert!(pyr.levels() >= 1);
    }

    #[test]
    fn haar_detail_matches_pairwise_differences() {
        let sig = [1.0, 3.0, 2.0, 6.0];
        let pyr = dwt(&sig, Wavelet::Haar, 1);
        // Haar detail = (x0 - x1)/√2 with our filter sign convention.
        let d = &pyr.details[0];
        assert!((d[0].abs() - 2.0 / std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((d[1].abs() - 4.0 / std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
