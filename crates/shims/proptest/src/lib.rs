//! Offline stand-in for `proptest`.
//!
//! The workspace builds without network access, so this crate provides
//! the slice of the proptest API its test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0.0f64..1.0`, `2usize..2048`, …), tuple
//!   strategies, [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a **fixed deterministic seed** (derived from the test's
//! module path and name), so failures reproduce exactly across runs and
//! machines with no persistence files; and there is **no shrinking** — a
//! failing case panics with the generated values still bound, which the
//! assert message can show.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `n` cases.
        pub fn with_cases(n: u32) -> Self {
            Config { cases: n.max(1) }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `ident`
        /// (conventionally `module_path!()::test_name`).
        pub fn deterministic(ident: &str, case: u32) -> Self {
            // FNV-1a over the identifier, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in ident.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound >= 1`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound >= 1);
            // Multiply-shift; bias < 2^-64, irrelevant for test-case gen.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!`-based test module needs.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, …)`
/// item expands to a plain `#[test]` that runs the body over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            cfg = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("shim::bounds", 0);
        for _ in 0..1000 {
            let x = (1.5f64..9.5).generate(&mut rng);
            assert!((1.5..9.5).contains(&x));
            let n = (2usize..2048).generate(&mut rng);
            assert!((2..2048).contains(&n));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("shim::vec", 1);
        for _ in 0..200 {
            let v = collection::vec(0.0f64..1.0, 2..128).generate(&mut rng);
            assert!((2..128).contains(&v.len()));
            let exact = collection::vec(0u32..10, 300usize).generate(&mut rng);
            assert_eq!(exact.len(), 300);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let gen = |case| {
            let mut rng = TestRng::deterministic("shim::det", case);
            collection::vec(0u64..1000, 1..50).generate(&mut rng)
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    #[test]
    fn prop_map_and_tuples() {
        let strat = (1usize..6, 0.0f64..10.0).prop_map(|(n, x)| vec![x; n]);
        let mut rng = TestRng::deterministic("shim::map", 0);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!(x < 1.0);
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
