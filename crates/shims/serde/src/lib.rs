//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! data types for interoperability, but all actual encoding goes through
//! the hand-written binary codec in `sst-nettrace`. This shim therefore
//! provides the two trait names as markers and re-exports no-op derive
//! macros under the same names, which is exactly enough for the existing
//! `#[derive(Serialize, Deserialize)]` attributes to compile offline.

#![forbid(unsafe_code)]

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
