//! Offline stand-in for `rayon`.
//!
//! Provides the small parallel-iterator surface the workspace uses —
//! `into_par_iter()` / `par_iter()` followed by `map(...).collect()` or
//! `for_each(...)` — implemented with `std::thread::scope` over contiguous
//! chunks. Results are collected **in input order**, so a parallel map is
//! a drop-in, bit-identical replacement for the sequential `Iterator`
//! equivalent whenever the mapped function is pure per item (no
//! cross-item state), which is exactly the contract the workspace's
//! experiment runner relies on for determinism.
//!
//! Unlike real rayon there is no work-stealing pool: each `collect` /
//! `for_each` spawns up to [`current_num_threads`] scoped threads and
//! joins them before returning. For the coarse-grained work here
//! (multi-millisecond experiment instances, whole figures) the spawn cost
//! is noise.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::AtomicUsize;
use std::sync::{Mutex, OnceLock};

std::thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads a parallel operation will use: a
/// [`with_num_threads`] override if one is active on this thread, else
/// the `RAYON_NUM_THREADS` environment variable, else the machine's
/// available parallelism.
///
/// The environment/parallelism default is resolved **once** per process
/// — the same semantics as real rayon, whose global pool reads the
/// variable at construction. (Re-reading it per call also made this
/// function a hot-path cost: `env::var` scans the whole environment
/// block, which the experiment runner's work-sizing heuristic calls on
/// every sweep.)
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Runs `f` with parallel operations *started on this thread* capped at
/// `n` workers (shim-specific stand-in for rayon's scoped thread pools).
pub fn with_num_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Ordered parallel map: applies `f` to every item, returning results in
/// input order. The workhorse behind the iterator adapters.
fn par_map_vec<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let effective = current_num_threads();
    let threads = effective.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Workers inherit the remaining thread budget, so nested parallel
    // operations (a figure fanning rate sweeps inside `repro --jobs N`)
    // stay within the caller's cap instead of re-reading the global
    // default and oversubscribing the machine.
    let nested_budget = (effective / threads).max(1);
    // Work queue of (index, item); each worker pushes (index, result).
    let queue: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                with_num_threads(nested_budget, || loop {
                    let next = queue.lock().expect("queue poisoned").pop();
                    match next {
                        Some((i, item)) => {
                            let out = f(item);
                            done.lock().expect("results poisoned").push((i, out));
                        }
                        None => break,
                    }
                })
            });
        }
    });
    let mut pairs = done.into_inner().expect("results poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// A materialized parallel iterator (eager source, lazy adapters).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A `map` adapter over [`ParIter`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = ParIter<u64>;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (lazily; executed at `collect` /
    /// `for_each`).
    pub fn map<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collects the items (identity map) in input order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<I: Send, T: Send, F: Fn(I) -> T + Sync> ParMap<I, F> {
    /// Executes the map in parallel, collecting results in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        let f = self.f;
        par_map_vec(self.items, move |x| g(f(x)));
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join: closure panicked"))
    })
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Proof-of-work counter used only by this shim's tests.
#[doc(hidden)]
pub static SHIM_TASKS_RUN: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn ordered_map_matches_sequential() {
        let seq: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        let par: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .map(|i| (i as u64) * (i as u64) + 1)
            .collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_iter_over_slice() {
        let data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let doubled: Vec<f64> = data.par_iter().map(|&x| 2.0 * x).collect();
        assert_eq!(doubled.len(), data.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2.0 * i as f64);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        SHIM_TASKS_RUN.store(0, Ordering::SeqCst);
        (0..123usize).into_par_iter().for_each(|_| {
            SHIM_TASKS_RUN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(SHIM_TASKS_RUN.load(Ordering::SeqCst), 123);
    }

    #[test]
    fn nested_operations_inherit_the_thread_cap() {
        with_num_threads(2, || {
            let observed: Vec<usize> = (0..8usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            // Each of the 2 workers has a budget of 1 for nested work.
            assert!(observed.iter().all(|&n| n == 1), "observed {observed:?}");
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x * 3).collect();
        assert_eq!(one, vec![21]);
    }
}
