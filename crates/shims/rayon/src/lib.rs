//! Offline stand-in for `rayon`.
//!
//! Provides the small parallel-iterator surface the workspace uses —
//! `into_par_iter()` / `par_iter()` followed by `map(...).collect()` or
//! `for_each(...)` — implemented over a **persistent worker pool**.
//! Results are collected **in input order**, so a parallel map is a
//! drop-in, bit-identical replacement for the sequential `Iterator`
//! equivalent whenever the mapped function is pure per item (no
//! cross-item state), which is exactly the contract the workspace's
//! experiment runner relies on for determinism.
//!
//! Earlier revisions spawned `std::thread::scope` threads per operation;
//! thread creation put a floor under the fan-out cost that the
//! experiment runner's minimum-work heuristic had to stay above. The
//! pool ([`pool`]) spawns its workers once per process and hands them
//! type-erased tasks through **per-worker local deques with stealing**
//! (an earlier revision used one global FIFO, which made every batch
//! contend on a single lock): submitters spread a batch round-robin
//! over the deques, workers pop their own front and steal siblings'
//! backs when idle. A parallel operation costs one enqueue per worker
//! task plus condvar traffic, dropping the fan-out floor by orders of
//! magnitude. Submitting threads *help*: they run queued tasks
//! themselves (scanning every deque) while waiting for their batch, so
//! nested parallel operations cannot deadlock even on a single-worker
//! pool.

// sst-analyze: allow(unsafe-audit) reason="the one lifetime-erasure unsafe block below is the pool's core mechanism, gated by #[allow(unsafe_code)] + a SAFETY comment; this shim has no `sys` FFI module to home it in"

#![deny(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::AtomicUsize;
use std::sync::{Mutex, OnceLock};

std::thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The process-wide default worker count: the `RAYON_NUM_THREADS`
/// environment variable, else the machine's available parallelism —
/// resolved **once** per process, the same semantics as real rayon,
/// whose global pool reads the variable at construction. (Re-reading it
/// per call also made this a hot-path cost: `env::var` scans the whole
/// environment block.)
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads a parallel operation will use: a
/// [`with_num_threads`] override if one is active on this thread, else
/// the process-wide default ([`default_threads`]).
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    default_threads()
}

/// Runs `f` with parallel operations *started on this thread* capped at
/// `n` workers (shim-specific stand-in for rayon's scoped thread pools).
pub fn with_num_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// The persistent worker pool behind every parallel operation.
///
/// **Per-worker local deques with stealing** (rayon's topology, sized
/// for a shim): each worker owns a deque; submitters spread a batch's
/// tasks round-robin across the deques; a worker pops its own deque
/// from the *front* and, when empty, steals from the *back* of its
/// siblings — so concurrent batches mostly touch disjoint locks
/// instead of contending on one global queue, while imbalanced batches
/// still level out through steals. Workers are spawned lazily on first
/// use and kept for the life of the process.
///
/// Work is submitted in *batches* ([`pool::run_batch_with_inline`]):
/// the submitter enqueues its tasks, runs one share of the work inline,
/// then **helps** — it keeps popping and running queued tasks (its own
/// or anyone else's, scanning every deque) until its batch completes.
/// Helping is what makes the design sound with any worker count: even
/// if every pool worker is busy or the pool is a single thread, the
/// submitting thread alone drains its queue entries, so a batch can
/// always make progress and nested batches cannot deadlock.
pub mod pool {
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};
    use std::time::Duration;

    type Task = Box<dyn FnOnce() + Send>;

    struct Inner {
        /// One local deque per worker; submitters push round-robin,
        /// owners pop the front, everyone else steals the back.
        deques: Vec<Mutex<VecDeque<Task>>>,
        /// Queued (not yet popped) tasks across all deques — atomic so
        /// the pop/steal fast paths never touch a global lock. `sleep`
        /// and `work` exist only for the idle path: the count is
        /// re-checked under the lock to close the check-then-wait
        /// race, with the usual timeout backstop.
        pending: AtomicUsize,
        sleep: Mutex<()>,
        work: Condvar,
        /// Round-robin cursor for batch placement.
        next: AtomicUsize,
        /// Cumulative successful steals (observability for tests).
        steals: AtomicUsize,
    }

    /// Completion state of one submitted batch.
    struct Batch {
        pending: Mutex<usize>,
        done: Condvar,
        panicked: AtomicBool,
    }

    impl Batch {
        fn new(n: usize) -> Self {
            Batch {
                pending: Mutex::new(n),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }
        }

        /// Blocks until every task of this batch has finished, running
        /// queued tasks (from any batch, any deque) while waiting.
        fn wait_all(&self) {
            loop {
                if *self.pending.lock().expect("batch lock") == 0 {
                    return;
                }
                if let Some(task) = steal_any(usize::MAX) {
                    task();
                    continue;
                }
                let pending = self.pending.lock().expect("batch lock");
                if *pending == 0 {
                    return;
                }
                // Tasks of this batch are running on other threads; they
                // notify `done` as they finish. The timeout is pure
                // belt-and-suspenders against a missed wakeup.
                let _ = self
                    .done
                    .wait_timeout(pending, Duration::from_millis(50))
                    .expect("batch lock");
            }
        }
    }

    /// Worker count: the process default, floored at 2 so the stealing
    /// topology (and its tests) exist even on a single-core box — an
    /// idle extra worker costs one sleeping thread.
    fn worker_count() -> usize {
        super::default_threads().max(2)
    }

    fn inner() -> &'static Inner {
        static INNER: OnceLock<Inner> = OnceLock::new();
        static WORKERS: OnceLock<()> = OnceLock::new();
        let inner = INNER.get_or_init(|| Inner {
            deques: (0..worker_count())
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            work: Condvar::new(),
            next: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        });
        WORKERS.get_or_init(|| {
            for i in 0..worker_count() {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_main(i))
                    .expect("spawn pool worker");
            }
        });
        inner
    }

    /// Worker thread body: drain the local deque, steal when it runs
    /// dry, sleep when everything is empty. Every queued task is
    /// panic-wrapped at submission, so nothing unwinds out of here.
    fn worker_main(me: usize) {
        let p = inner();
        loop {
            if let Some(task) = pop_local(me).or_else(|| steal_any(me)) {
                task();
                continue;
            }
            // Nothing anywhere: sleep until a submitter bumps
            // `pending`. The count is re-checked under the sleep lock
            // (submitters notify under it after incrementing), so a
            // wakeup between the scan and the wait cannot be lost; the
            // timeout is belt-and-suspenders on top.
            let guard = p.sleep.lock().expect("pool sleep");
            if p.pending.load(Ordering::SeqCst) == 0 {
                let _ = p
                    .work
                    .wait_timeout(guard, Duration::from_millis(50))
                    .expect("pool sleep");
            }
            // Re-scan; the pop itself decrements `pending`.
        }
    }

    /// Pops the front of worker `me`'s own deque.
    fn pop_local(me: usize) -> Option<Task> {
        let p = inner();
        let task = p.deques[me].lock().expect("pool deque").pop_front();
        if task.is_some() {
            p.pending.fetch_sub(1, Ordering::SeqCst);
        }
        task
    }

    /// Steals from the back of any other deque (`me == usize::MAX` for
    /// non-worker helpers: scan everything, starting at a rotating
    /// offset so helpers don't all hammer deque 0).
    fn steal_any(me: usize) -> Option<Task> {
        let p = inner();
        let n = p.deques.len();
        let start = p.next.load(Ordering::Relaxed);
        for off in 0..n {
            let i = (start + off) % n;
            if i == me {
                continue;
            }
            let task = p.deques[i].lock().expect("pool deque").pop_back();
            if let Some(task) = task {
                p.pending.fetch_sub(1, Ordering::SeqCst);
                if me != i {
                    p.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(task);
            }
        }
        None
    }

    /// Cumulative successful steals — observability for the shim's own
    /// tests (monotone; exact value depends on scheduling).
    #[doc(hidden)]
    pub fn steal_count() -> usize {
        inner().steals.load(Ordering::Relaxed)
    }

    /// Number of worker threads backing the pool.
    #[doc(hidden)]
    pub fn pool_workers() -> usize {
        inner().deques.len()
    }

    /// Erases the batch lifetime from a task so it can sit in the
    /// `'static` pool queue.
    #[allow(unsafe_code)]
    fn erase<'env>(task: Box<dyn FnOnce() + Send + 'env>) -> Box<dyn FnOnce() + Send + 'static> {
        // SAFETY: `run_batch_with_inline` does not return — not even by
        // unwinding, thanks to its wait guard — until the batch's
        // `pending` count reaches zero, i.e. until every erased task has
        // finished executing. Data borrowed for `'env` therefore
        // strictly outlives every use of the erased closure. This is the
        // same invariant `std::thread::scope` enforces for its scoped
        // threads, applied to pool tasks.
        unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        }
    }

    /// Submits `tasks` to the pool, runs `inline` on the calling thread
    /// (its share of the work), then blocks — helping with queued work —
    /// until every submitted task has finished.
    ///
    /// # Panics
    ///
    /// Panics after completion if any submitted task panicked (the task
    /// panic is contained to the pool; the batch reports it here), and
    /// propagates `inline`'s own panic after the batch has drained.
    pub fn run_batch_with_inline<'env, R>(
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
        inline: impl FnOnce() -> R,
    ) -> R {
        if tasks.is_empty() {
            return inline();
        }
        let batch = Arc::new(Batch::new(tasks.len()));
        {
            let p = inner();
            let n_tasks = tasks.len();
            // Spread the batch round-robin over the worker deques,
            // starting past the previous batch's placement so
            // concurrent submitters interleave across workers instead
            // of stacking on deque 0 (stealing levels the remainder).
            let start = p.next.fetch_add(n_tasks, Ordering::Relaxed);
            // Count first, push second: a task must never be popped
            // (which decrements `pending`) before it was counted. A
            // scanning worker may briefly see the count ahead of the
            // queues and re-scan; that costs a loop, not correctness.
            p.pending.fetch_add(n_tasks, Ordering::SeqCst);
            for (i, task) in tasks.into_iter().enumerate() {
                let task = erase(task);
                let b = Arc::clone(&batch);
                let wrapped: Task = Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(task)).is_err() {
                        b.panicked.store(true, Ordering::SeqCst);
                    }
                    let mut pending = b.pending.lock().expect("batch lock");
                    *pending -= 1;
                    if *pending == 0 {
                        b.done.notify_all();
                    }
                });
                let target = (start + i) % p.deques.len();
                p.deques[target]
                    .lock()
                    .expect("pool deque")
                    .push_back(wrapped);
            }
            // Notify under the sleep lock: a worker that saw pending
            // == 0 is either inside its wait (woken here) or hasn't
            // taken the lock yet (will re-read the count under it).
            let _guard = p.sleep.lock().expect("pool sleep");
            p.work.notify_all();
        }
        // Even if `inline` unwinds, the batch must drain before frames
        // holding `'env` borrows are popped.
        struct WaitGuard<'a>(&'a Batch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_all();
            }
        }
        let guard = WaitGuard(&batch);
        let result = inline();
        drop(guard);
        if batch.panicked.load(Ordering::SeqCst) {
            panic!("a parallel task panicked");
        }
        result
    }
}

/// Ordered parallel map: applies `f` to every item, returning results in
/// input order. The workhorse behind the iterator adapters.
fn par_map_vec<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let effective = current_num_threads();
    let threads = effective.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Workers inherit the remaining thread budget, so nested parallel
    // operations (a figure fanning rate sweeps inside `repro --jobs N`)
    // stay within the caller's cap instead of re-reading the global
    // default and oversubscribing the machine.
    let nested_budget = (effective / threads).max(1);
    // Work queue of (index, item); each worker pushes (index, result).
    let queue: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    // One popping loop per worker slot: `threads - 1` pool tasks plus
    // the calling thread running the same loop inline.
    let worker = || {
        with_num_threads(nested_budget, || loop {
            let next = queue.lock().expect("queue poisoned").pop();
            match next {
                Some((i, item)) => {
                    let out = f(item);
                    done.lock().expect("results poisoned").push((i, out));
                }
                None => break,
            }
        })
    };
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (1..threads)
        .map(|_| Box::new(worker) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool::run_batch_with_inline(tasks, worker);
    let mut pairs = done.into_inner().expect("results poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// A materialized parallel iterator (eager source, lazy adapters).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A `map` adapter over [`ParIter`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = ParIter<u64>;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (lazily; executed at `collect` /
    /// `for_each`).
    pub fn map<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collects the items (identity map) in input order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<I: Send, T: Send, F: Fn(I) -> T + Sync> ParMap<I, F> {
    /// Executes the map in parallel, collecting results in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        let f = self.f;
        par_map_vec(self.items, move |x| g(f(x)));
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let ra = pool::run_batch_with_inline(
        vec![Box::new(|| {
            let out = b();
            *rb.lock().expect("join result") = Some(out);
        }) as Box<dyn FnOnce() + Send + '_>],
        a,
    );
    let rb = rb
        .into_inner()
        .expect("join result")
        .expect("join: closure panicked");
    (ra, rb)
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Proof-of-work counter used only by this shim's tests.
#[doc(hidden)]
pub static SHIM_TASKS_RUN: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn ordered_map_matches_sequential() {
        let seq: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        let par: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .map(|i| (i as u64) * (i as u64) + 1)
            .collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_iter_over_slice() {
        let data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let doubled: Vec<f64> = data.par_iter().map(|&x| 2.0 * x).collect();
        assert_eq!(doubled.len(), data.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2.0 * i as f64);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        SHIM_TASKS_RUN.store(0, Ordering::SeqCst);
        (0..123usize).into_par_iter().for_each(|_| {
            SHIM_TASKS_RUN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(SHIM_TASKS_RUN.load(Ordering::SeqCst), 123);
    }

    #[test]
    fn nested_operations_inherit_the_thread_cap() {
        with_num_threads(2, || {
            let observed: Vec<usize> = (0..8usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            // Each of the 2 workers has a budget of 1 for nested work.
            assert!(observed.iter().all(|&n| n == 1), "observed {observed:?}");
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_borrows_locals() {
        // The pool task borrows stack data; run_batch_with_inline must
        // block until it finishes.
        let data: Vec<u64> = (0..10_000).collect();
        let (sum, max) = join(
            || data.iter().sum::<u64>(),
            || data.iter().copied().max().unwrap_or(0),
        );
        assert_eq!(sum, 9999 * 10_000 / 2);
        assert_eq!(max, 9999);
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x * 3).collect();
        assert_eq!(one, vec![21]);
    }

    #[test]
    fn nested_parallel_maps_complete() {
        // A parallel map whose items run parallel maps themselves: the
        // help-while-waiting protocol must drain the nested batches even
        // with a single-worker pool.
        let out: Vec<u64> = with_num_threads(4, || {
            (0..8u64)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<u64> = (0..50u64).into_par_iter().map(|j| i * 100 + j).collect();
                    inner.iter().sum()
                })
                .collect()
        });
        let want: Vec<u64> = (0..8u64)
            .map(|i| (0..50u64).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn many_concurrent_batches_from_many_threads() {
        // Independent OS threads submitting batches share the one pool.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let v: Vec<usize> = with_num_threads(3, || {
                        (0..200usize).into_par_iter().map(|i| i + t).collect()
                    });
                    v.iter().sum::<usize>()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let got = h.join().expect("thread");
            assert_eq!(got, (0..200).sum::<usize>() + 200 * t);
        }
    }

    #[test]
    fn pool_always_has_a_stealing_topology() {
        // ≥ 2 deques even on a 1-core box, so the steal paths are real.
        assert!(pool::pool_workers() >= 2);
    }

    #[test]
    fn imbalanced_batches_complete() {
        // One long task and many short ones land round-robin on the
        // deques; idle workers (and the helping submitter) level the
        // imbalance away. Pin completion and order.
        let sums: Vec<u64> = with_num_threads(4, || {
            (0..64u64)
                .into_par_iter()
                .map(|i| {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    (0..1000u64).map(|j| i * 1000 + j).sum()
                })
                .collect()
        });
        let want: Vec<u64> = (0..64u64)
            .map(|i| (0..1000u64).map(|j| i * 1000 + j).sum())
            .collect();
        assert_eq!(sums, want);
    }

    #[test]
    fn helpers_steal_when_every_worker_is_busy() {
        use std::time::Duration;
        // Occupy every pool worker (plus the blocking submitter) with
        // long sleeps, then submit a quick batch from this thread: the
        // only way it can finish before the blockade lifts is by this
        // thread *stealing* its own tasks back off the worker deques —
        // so the steal counter must strictly increase.
        let workers = pool::pool_workers();
        let before = pool::steal_count();
        let blocker = std::thread::spawn(move || {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..workers)
                .map(|_| {
                    Box::new(|| std::thread::sleep(Duration::from_millis(200)))
                        as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool::run_batch_with_inline(tasks, || std::thread::sleep(Duration::from_millis(200)));
        });
        // Let the sleepers claim their deques.
        std::thread::sleep(Duration::from_millis(50));
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::run_batch_with_inline(tasks, || ());
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert!(
            pool::steal_count() > before,
            "the submitter must have stolen while all workers slept"
        );
        blocker.join().expect("blocker thread");
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..16usize).into_par_iter().for_each(|i| {
                    if i == 7 {
                        panic!("boom");
                    }
                });
            })
        });
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool must still be usable afterwards.
        let v: Vec<usize> =
            with_num_threads(2, || (0..64usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(v.len(), 64);
    }
}
