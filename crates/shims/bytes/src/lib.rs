//! Offline stand-in for the `bytes` crate.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` (no refcounted
//! zero-copy slicing — the codec here only ever appends then freezes) and
//! provides the [`Buf`]/[`BufMut`] trait surface the `sst-nettrace`
//! binary codec uses: little-endian put/get of the fixed-width types plus
//! `advance`/`remaining`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
///
/// Getter methods panic if fewer than the required bytes remain, matching
/// upstream `bytes` semantics.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for fixed-width values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-2.5);
        let frozen = buf.freeze();

        let mut cur: &[u8] = &frozen;
        assert_eq!(&cur[..3], b"HDR");
        cur.advance(3);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f64_le(), -2.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn get_past_end_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
