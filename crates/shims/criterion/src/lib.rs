//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::default()`,
//! benchmark groups with `sample_size`/`throughput`/`warm_up_time`/
//! `measurement_time`, `bench_function`/`bench_with_input`, and
//! `Bencher::iter` — as a straightforward wall-clock harness:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples;
//! * the **median** per-iteration time is reported (robust to scheduler
//!   noise), plus min/max;
//! * when the `CRITERION_JSON` environment variable names a file, one
//!   JSON line per benchmark is appended:
//!   `{"id":…,"ns_per_iter":…,"iters":…,"throughput_elems":…}` — the
//!   workspace's `scripts/bench_json.sh` uses this to build
//!   `BENCH_samplers.json`.
//!
//! `cargo test` executes harness-less bench binaries with `--test`; in
//! that mode every benchmark runs exactly one iteration as a smoke test
//! (still appending its id to `CRITERION_JSON` when set, which is how
//! `scripts/check_bench_ids.sh` enumerates the harness's current ids).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported alongside time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a per-iteration setup step excluded from the
    /// measurement (approximated: setup runs inside the loop but its cost
    /// is measured and subtracted).
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let setup_start = Instant::now();
        let mut inputs = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            inputs.push(setup());
        }
        let _setup_cost = setup_start.elapsed();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Measurement configuration, shared by [`Criterion`] and groups.
#[derive(Clone, Debug)]
struct MeasureCfg {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    smoke_test: bool,
}

impl MeasureCfg {
    fn default_cfg() -> Self {
        MeasureCfg {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// Top-level harness state.
#[derive(Clone, Debug)]
pub struct Criterion {
    cfg: MeasureCfg,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            cfg: MeasureCfg::default_cfg(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let cfg = self.cfg.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            cfg,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: Display,
        F: FnMut(&mut Bencher),
    {
        let cfg = self.cfg.clone();
        run_benchmark(&id.to_string(), &cfg, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: MeasureCfg,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.cfg, self.throughput, f);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.cfg, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is per-benchmark; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    cfg: &MeasureCfg,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if cfg.smoke_test {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: smoke test ok");
        // Still record the id (with the single-iteration time) when JSON
        // output was requested: `scripts/check_bench_ids.sh` runs the
        // harness in smoke mode to enumerate the current benchmark ids
        // and diff them against the committed BENCH_samplers.json.
        append_json(id, b.elapsed.as_nanos() as f64, 1, throughput);
        return;
    }
    // Calibration: time one iteration to size the warm-up and samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(20));

    // Warm-up loop.
    let warm_end = Instant::now() + cfg.warm_up;
    while Instant::now() < warm_end {
        let mut wb = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut wb);
        if once > cfg.warm_up {
            break; // one iteration already exceeds the warm-up budget
        }
    }

    // Choose per-sample iteration count so the whole measurement stays
    // within the budget.
    let per_sample = cfg.measurement.as_secs_f64() / cfg.sample_size as f64;
    let iters = (per_sample / once.as_secs_f64()).floor().clamp(1.0, 1e9) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut sb = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut sb);
        samples_ns.push(sb.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];

    let thr = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {} elem/s", human_rate(n as f64 / (median * 1e-9)))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {}B/s", human_rate(n as f64 / (median * 1e-9)))
        }
        _ => String::new(),
    };
    println!(
        "{id:<50} time: [{} {} {}]{thr}",
        human_time(lo),
        human_time(median),
        human_time(hi)
    );
    append_json(id, median, iters, throughput);
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.3} G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.3} M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.3} K", per_s / 1e3)
    } else {
        format!("{per_s:.1} ")
    }
}

fn append_json(id: &str, median_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let thr = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"throughput_elems\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"throughput_bytes\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"id\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}{}}}\n",
        id.replace('"', "'"),
        median_ns,
        iters,
        thr
    );
    if let Ok(mut fh) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = fh.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn…)` or the
/// braced form with an explicit `config = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("fgn", 1024).to_string(), "fgn/1024");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("tiny", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0, "benchmark closure must have executed");
    }

    #[test]
    fn human_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(2e9).ends_with('s'));
    }
}
