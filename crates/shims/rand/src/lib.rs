//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds with no network access, so this crate provides the
//! small slice of the `rand 0.8` API the sources use: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill`), and [`rngs::StdRng`].
//!
//! `StdRng` here is **ChaCha12, bit-compatible with upstream `rand
//! 0.8`**: the same block function and buffering, `rand_core`'s exact
//! PCG32-based `seed_from_u64`, the same `Standard` sampling, and the
//! same `gen_range` widening-multiply algorithm — so any explicit seed
//! yields the value stream real `rand` would produce (the workspace's
//! statistical test tolerances were calibrated against that stream).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it exactly like
    /// `rand_core 0.6` (a PCG32 stream written to the seed in 4-byte
    /// little-endian chunks) so seeds produce the same generator state as
    /// upstream `rand 0.8`.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an `RngCore` (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // As upstream rand 0.8.5: the sign bit of one u32 word.
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Types uniformly samplable within a range (the `SampleUniform` of
/// upstream `rand`), reproducing `rand 0.8.5`'s draw algorithm exactly:
/// widening multiply with zone rejection on the type-dependent "large"
/// type (`u32` for ≤32-bit integers, `u64` for 64-bit ones), so a given
/// seed yields the same values upstream would produce.
pub trait SampleUniform: Sized {
    /// Draws a value from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws a value from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => ($unsigned:ty, $large:ty, $wide:ty)),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let range = (hi as $unsigned).wrapping_sub(lo as $unsigned).wrapping_add(1) as $large;
                if range == 0 {
                    // Span covers the whole type.
                    return Standard::sample(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // Small types: reject the exact surplus.
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = Standard::sample(rng);
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let hi_part = (m >> (<$large>::BITS as usize)) as $large;
                    let lo_part = m as $large;
                    if lo_part <= zone {
                        return lo.wrapping_add(hi_part as $t);
                    }
                }
            }

            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                Self::sample_inclusive(lo, hi - 1, rng)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => (u8, u32, u64),
    u16 => (u16, u32, u64),
    u32 => (u32, u32, u64),
    u64 => (u64, u64, u128),
    usize => (usize, u64, u128),
    i8 => (u8, u32, u64),
    i16 => (u16, u32, u64),
    i32 => (u32, u32, u64),
    i64 => (u64, u64, u128),
    isize => (usize, u64, u128),
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => ($uty:ty, $discard:expr, $exp_one:expr)),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let scale = hi - lo;
                // rand 0.8: a mantissa-uniform value in [1, 2), then
                // fused into [lo, hi).
                let bits: $uty = Standard::sample(rng);
                let value1_2 = <$t>::from_bits($exp_one | (bits >> $discard));
                let res = value1_2 * scale + (lo - scale);
                if res < hi { res } else { hi.next_down() }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_in(lo, hi, rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(
    f32 => (u32, 9u32, 0x3F80_0000u32),
    f64 => (u64, 12u64, 0x3FF0_0000_0000_0000u64),
);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Extension methods over any [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0,1]");
        self.gen::<f64>() < p
    }

    /// Fills an integer/byte slice with uniform values.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    const BUF_WORDS: usize = 64; // 4 ChaCha blocks, as in rand_chacha

    /// The standard generator: **ChaCha12**, bit-compatible with
    /// `rand 0.8`'s `StdRng`.
    ///
    /// Reproduces upstream exactly: the ChaCha block function with a
    /// 64-bit block counter and zero stream id, results buffered four
    /// blocks at a time, and `rand_core`'s `BlockRng` word-consumption
    /// rules for `next_u32`/`next_u64` (including the buffer-straddling
    /// edge case). Combined with the `rand_core`-exact `seed_from_u64`,
    /// any seed yields the same value stream real `rand` would produce.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    macro_rules! quarter_round {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(16);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(12);
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(8);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(7);
        };
    }

    #[allow(clippy::many_single_char_names)]
    fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        // State in named locals so the 96 quarter-round operations
        // compile to straight-line register code (no bounds checks).
        let (ia, ib, ic, id) = (
            0x6170_7865u32,
            0x3320_646eu32,
            0x7962_2d32u32,
            0x6b20_6574u32,
        );
        let (ie, ig, ih, ii) = (key[0], key[1], key[2], key[3]);
        let (ij, ik, il, im) = (key[4], key[5], key[6], key[7]);
        // Words 12-13: 64-bit block counter; 14-15: stream id, always 0.
        let (in_, io) = (counter as u32, (counter >> 32) as u32);
        let (ip, iq) = (0u32, 0u32);
        let (mut a, mut b, mut c, mut d) = (ia, ib, ic, id);
        let (mut e, mut g, mut h, mut i) = (ie, ig, ih, ii);
        let (mut j, mut k, mut l, mut m) = (ij, ik, il, im);
        let (mut n, mut o, mut p, mut q) = (in_, io, ip, iq);
        for _ in 0..6 {
            // Column round.
            quarter_round!(a, e, j, n);
            quarter_round!(b, g, k, o);
            quarter_round!(c, h, l, p);
            quarter_round!(d, i, m, q);
            // Diagonal round.
            quarter_round!(a, g, l, q);
            quarter_round!(b, h, m, n);
            quarter_round!(c, i, j, o);
            quarter_round!(d, e, k, p);
        }
        out[0] = a.wrapping_add(ia);
        out[1] = b.wrapping_add(ib);
        out[2] = c.wrapping_add(ic);
        out[3] = d.wrapping_add(id);
        out[4] = e.wrapping_add(ie);
        out[5] = g.wrapping_add(ig);
        out[6] = h.wrapping_add(ih);
        out[7] = i.wrapping_add(ii);
        out[8] = j.wrapping_add(ij);
        out[9] = k.wrapping_add(ik);
        out[10] = l.wrapping_add(il);
        out[11] = m.wrapping_add(im);
        out[12] = n.wrapping_add(in_);
        out[13] = o.wrapping_add(io);
        out[14] = p.wrapping_add(ip);
        out[15] = q.wrapping_add(iq);
    }

    impl StdRng {
        fn refill(&mut self) {
            for b in 0..4u64 {
                let c = self.counter.wrapping_add(b);
                let lo = (b as usize) * 16;
                chacha12_block(&self.key, c, &mut self.buf[lo..lo + 16]);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core BlockRng consumption rules.
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
            } else if index >= BUF_WORDS {
                self.refill();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                // Straddles the buffer boundary: low word is the last of
                // this batch, high word the first of the next.
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.refill();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | lo
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u32().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let last = self.next_u32().to_le_bytes();
                rem.copy_from_slice(&last[..rem.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = r.gen_range(0usize..5);
            seen[k] = true;
            let p = r.gen_range(1024u16..65535);
            assert!((1024..65535).contains(&p));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let a = r.gen::<u64>();
        let b = r.gen::<u64>();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
