//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! Each derive emits an empty marker-trait impl for the deriving type.
//! Only plain (non-generic) structs and enums are supported — which is
//! all the workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following the first top-level
/// `struct` or `enum` keyword (attributes and doc comments live inside
/// groups at this level and are skipped naturally).
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive shim: no struct/enum name found in derive input");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
