//! Common result and error types for the Hurst estimators.

use std::fmt;

/// Which estimation method produced a [`HurstEstimate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Abry-Veitch wavelet log-scale diagram (the paper's §VI tool).
    Wavelet,
    /// Rescaled-range (R/S) analysis.
    RescaledRange,
    /// Aggregated-variance (variance-time plot).
    VarianceTime,
    /// Low-frequency periodogram regression.
    Periodogram,
    /// Local Whittle (semi-parametric MLE).
    LocalWhittle,
    /// Log-log fit of the sample autocorrelation tail.
    AcfFit,
    /// Detrended fluctuation analysis (DFA-1).
    Dfa,
    /// Higuchi curve-length (fractal-dimension) method.
    Higuchi,
    /// Absolute first-moment scaling of the aggregated series.
    AbsoluteMoment,
    /// Peng's variance-of-residuals (block-detrended partial sums).
    ResidualVariance,
    /// Online aggregated-variance over dyadic block accumulators
    /// (streaming form of [`Method::VarianceTime`]).
    OnlineVarianceTime,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Method::Wavelet => "wavelet (Abry-Veitch)",
            Method::RescaledRange => "R/S",
            Method::VarianceTime => "variance-time",
            Method::Periodogram => "periodogram",
            Method::LocalWhittle => "local Whittle",
            Method::AcfFit => "ACF fit",
            Method::Dfa => "DFA",
            Method::Higuchi => "Higuchi",
            Method::AbsoluteMoment => "absolute moments",
            Method::ResidualVariance => "variance of residuals (Peng)",
            Method::OnlineVarianceTime => "online variance-time (dyadic)",
        };
        f.write_str(name)
    }
}

/// A Hurst-parameter estimate with its provenance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HurstEstimate {
    /// The estimate Ĥ.
    pub hurst: f64,
    /// Standard error of Ĥ propagated from the underlying fit
    /// (`NaN` when the method provides none).
    pub stderr: f64,
    /// The method that produced it.
    pub method: Method,
    /// Number of points (scales, frequencies, block sizes) in the fit.
    pub n_points: usize,
    /// R² of the underlying regression (`NaN` for likelihood methods).
    pub r_squared: f64,
}

impl HurstEstimate {
    /// The correlation-decay exponent `β = 2 − 2H` implied by Ĥ.
    pub fn beta(&self) -> f64 {
        2.0 - 2.0 * self.hurst
    }

    /// 95% confidence interval `Ĥ ± 1.96·stderr` (degenerate when stderr
    /// is `NaN`).
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.hurst - 1.96 * self.stderr,
            self.hurst + 1.96 * self.stderr,
        )
    }

    /// Whether the estimate indicates long-range dependence (Ĥ
    /// significantly above 1/2 given the standard error; falls back to
    /// `Ĥ > 0.55` when no stderr is available).
    pub fn is_lrd(&self) -> bool {
        if self.stderr.is_finite() && self.stderr > 0.0 {
            self.hurst - 1.96 * self.stderr > 0.5
        } else {
            self.hurst > 0.55
        }
    }
}

impl fmt::Display for HurstEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H = {:.4} ({})", self.hurst, self.method)
    }
}

/// Why an estimator could not produce an estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateError {
    /// The input series is too short for the method's minimum scales.
    TooShort {
        /// Points supplied.
        got: usize,
        /// Points the method needs.
        need: usize,
    },
    /// The input is degenerate (constant or zero-variance).
    Degenerate,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::TooShort { got, need } => {
                write!(
                    f,
                    "series too short: got {got} points, need at least {need}"
                )
            }
            EstimateError::Degenerate => f.write_str("series is degenerate (zero variance)"),
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_conversion() {
        let e = HurstEstimate {
            hurst: 0.8,
            stderr: 0.01,
            method: Method::Wavelet,
            n_points: 8,
            r_squared: 0.99,
        };
        assert!((e.beta() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ci_and_lrd_flag() {
        let strong = HurstEstimate {
            hurst: 0.8,
            stderr: 0.02,
            method: Method::RescaledRange,
            n_points: 10,
            r_squared: 0.95,
        };
        assert!(strong.is_lrd());
        let (lo, hi) = strong.ci95();
        assert!(lo < 0.8 && hi > 0.8);

        let weak = HurstEstimate {
            hurst: 0.52,
            stderr: 0.05,
            method: Method::Periodogram,
            n_points: 10,
            r_squared: 0.5,
        };
        assert!(!weak.is_lrd());
    }

    #[test]
    fn display_is_informative() {
        let e = HurstEstimate {
            hurst: 0.62,
            stderr: f64::NAN,
            method: Method::LocalWhittle,
            n_points: 100,
            r_squared: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("0.62"));
        assert!(s.contains("Whittle"));
    }

    #[test]
    fn error_messages() {
        let e = EstimateError::TooShort { got: 3, need: 64 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("64"));
        assert!(EstimateError::Degenerate.to_string().contains("degenerate"));
    }
}
