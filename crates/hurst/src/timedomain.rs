//! Additional time-domain Hurst estimators: Higuchi's curve-length
//! method, the absolute-moments method, and Peng's variance-of-residuals
//! method (Taqqu & Teverovsky's survey battery).
//!
//! These diversify the estimator portfolio beyond the paper's wavelet
//! tool: Higuchi is robust at short lengths, absolute moments uses first
//! moments (finite even when the variance barely exists), and Peng's
//! residual method detrends each block, making it robust to slow mean
//! drift — the failure mode that inflates R/S and variance-time
//! estimates on real traces.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::regress::ols;

/// Log-spaced unique integers in `[lo, hi]`, ~`per_decade` per decade.
fn log_grid(lo: usize, hi: usize, per_decade: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if lo > hi {
        return out;
    }
    let lg_lo = (lo as f64).log10();
    let lg_hi = (hi as f64).log10();
    let steps = ((lg_hi - lg_lo) * per_decade as f64).ceil().max(1.0) as usize;
    for s in 0..=steps {
        let v = 10f64
            .powf(lg_lo + (lg_hi - lg_lo) * s as f64 / steps as f64)
            .round() as usize;
        let v = v.clamp(lo, hi);
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

/// Higuchi's method: the length of the partial-sum "curve" observed at
/// stride `k` scales as `L(k) ~ k^{−D}` with fractal dimension
/// `D = 2 − H`.
///
/// # Examples
///
/// ```
/// use sst_hurst::timedomain::HiguchiEstimator;
/// use sst_traffic::FgnGenerator;
///
/// let vals = FgnGenerator::new(0.8).unwrap().generate_values(1 << 14, 3);
/// let est = HiguchiEstimator::default().estimate(&vals).unwrap();
/// assert!((est.hurst - 0.8).abs() < 0.15);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HiguchiEstimator {
    /// Largest stride as a fraction of the series length (default 0.1).
    pub max_stride_fraction: f64,
}

impl Default for HiguchiEstimator {
    fn default() -> Self {
        HiguchiEstimator {
            max_stride_fraction: 0.1,
        }
    }
}

impl HiguchiEstimator {
    /// Estimates H from `values` (an increment process, e.g. fGn-like
    /// traffic rates; the partial sum is formed internally).
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below 128 points;
    /// [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let n = values.len();
        if n < 128 {
            return Err(EstimateError::TooShort { got: n, need: 128 });
        }
        // Constant input makes the partial sum a perfect ramp, which
        // would read as H = 1; call it out as degenerate instead.
        let first = values[0];
        if values.iter().all(|&v| v == first) {
            return Err(EstimateError::Degenerate);
        }
        // Partial-sum path Y of the *centered* increments (the "curve"
        // whose length is measured). Without centering, any nonzero mean
        // adds a linear ramp that dominates the curve length and drags
        // the estimate toward H = 1 — fatal for traffic rates, which are
        // strictly positive.
        let mean = values.iter().sum::<f64>() / n as f64;
        let mut y = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &v in values {
            acc += v - mean;
            y.push(acc);
        }
        let k_max = ((n as f64) * self.max_stride_fraction).floor().max(4.0) as usize;
        let ks = log_grid(1, k_max, 12);
        let mut xs = Vec::with_capacity(ks.len());
        let mut ls = Vec::with_capacity(ks.len());
        for &k in &ks {
            // Average normalized curve length over the k phase-shifted
            // sub-curves.
            let mut total = 0.0;
            let mut used = 0usize;
            for m in 0..k {
                let steps = (n - 1 - m) / k;
                if steps == 0 {
                    continue;
                }
                let mut length = 0.0;
                for i in 1..=steps {
                    length += (y[m + i * k] - y[m + (i - 1) * k]).abs();
                }
                // Higuchi's normalization: (n−1)/(steps·k) corrects for
                // the sub-curve seeing only `steps` of the n−1 gaps.
                total += length * (n - 1) as f64 / (steps as f64 * k as f64 * k as f64);
                used += 1;
            }
            if used == 0 || total <= 0.0 {
                continue;
            }
            xs.push((k as f64).log10());
            ls.push((total / used as f64).log10());
        }
        if xs.len() < 4 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ls);
        if !fit.slope.is_finite() {
            return Err(EstimateError::Degenerate);
        }
        // slope = −D = H − 2.
        Ok(HurstEstimate {
            hurst: fit.slope + 2.0,
            stderr: fit.slope_stderr,
            method: Method::Higuchi,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// Absolute-moments method: for the aggregated series `X^(m)`, the first
/// absolute central moment scales as `AM(m) ~ m^{H−1}`.
#[derive(Clone, Copy, Debug)]
pub struct AbsoluteMomentEstimator {
    /// Largest aggregation level as a fraction of the length (default
    /// 0.1, so at least ~10 blocks enter the largest level).
    pub max_level_fraction: f64,
}

impl Default for AbsoluteMomentEstimator {
    fn default() -> Self {
        AbsoluteMomentEstimator {
            max_level_fraction: 0.1,
        }
    }
}

impl AbsoluteMomentEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below 256 points;
    /// [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let n = values.len();
        if n < 256 {
            return Err(EstimateError::TooShort { got: n, need: 256 });
        }
        let grand_mean = values.iter().sum::<f64>() / n as f64;
        let m_max = ((n as f64) * self.max_level_fraction).floor().max(4.0) as usize;
        let ms = log_grid(1, m_max, 10);
        let mut xs = Vec::with_capacity(ms.len());
        let mut ys = Vec::with_capacity(ms.len());
        for &m in &ms {
            let blocks = n / m;
            if blocks < 4 {
                continue;
            }
            let mut am = 0.0;
            for b in 0..blocks {
                let mean_b = values[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64;
                am += (mean_b - grand_mean).abs();
            }
            am /= blocks as f64;
            if am > 0.0 {
                xs.push((m as f64).log10());
                ys.push(am.log10());
            }
        }
        if xs.len() < 4 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        if !fit.slope.is_finite() {
            return Err(EstimateError::Degenerate);
        }
        // slope = H − 1.
        Ok(HurstEstimate {
            hurst: fit.slope + 1.0,
            stderr: fit.slope_stderr,
            method: Method::AbsoluteMoment,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// Peng's variance-of-residuals method: within blocks of size `m`, fit a
/// line to the partial sums and average the residual variance; it scales
/// as `m^{2H}`.
#[derive(Clone, Copy, Debug)]
pub struct ResidualVarianceEstimator {
    /// Smallest block size (default 8; below that the line fit eats the
    /// signal).
    pub min_block: usize,
    /// Largest block as a fraction of the length (default 0.1).
    pub max_block_fraction: f64,
}

impl Default for ResidualVarianceEstimator {
    fn default() -> Self {
        ResidualVarianceEstimator {
            min_block: 8,
            max_block_fraction: 0.1,
        }
    }
}

impl ResidualVarianceEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below 256 points;
    /// [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let n = values.len();
        if n < 256 {
            return Err(EstimateError::TooShort { got: n, need: 256 });
        }
        let m_max = ((n as f64) * self.max_block_fraction).floor() as usize;
        if m_max <= self.min_block {
            return Err(EstimateError::TooShort {
                got: n,
                need: self.min_block * 10,
            });
        }
        let ms = log_grid(self.min_block, m_max, 10);
        let mut xs = Vec::with_capacity(ms.len());
        let mut ys = Vec::with_capacity(ms.len());
        for &m in &ms {
            let blocks = n / m;
            if blocks < 2 {
                continue;
            }
            let mut total = 0.0;
            for b in 0..blocks {
                // Partial sums within the block.
                let mut y = Vec::with_capacity(m);
                let mut acc = 0.0;
                for &v in &values[b * m..(b + 1) * m] {
                    acc += v;
                    y.push(acc);
                }
                // OLS line over (1..m, y); residual variance.
                let ts: Vec<f64> = (0..m).map(|i| i as f64).collect();
                let fit = ols(&ts, &y);
                let mut resid = 0.0;
                for (i, &yi) in y.iter().enumerate() {
                    let e = yi - (fit.intercept + fit.slope * i as f64);
                    resid += e * e;
                }
                total += resid / m as f64;
            }
            let v = total / blocks as f64;
            if v > 0.0 {
                xs.push((m as f64).log10());
                ys.push(v.log10());
            }
        }
        if xs.len() < 4 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        if !fit.slope.is_finite() {
            return Err(EstimateError::Degenerate);
        }
        // slope = 2H.
        Ok(HurstEstimate {
            hurst: fit.slope / 2.0,
            stderr: fit.slope_stderr / 2.0,
            method: Method::ResidualVariance,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    fn fgn(h: f64, n: usize, seed: u64) -> Vec<f64> {
        FgnGenerator::new(h).unwrap().generate_values(n, seed)
    }

    #[test]
    fn higuchi_recovers_hurst() {
        for &h in &[0.6, 0.75, 0.9] {
            let est = HiguchiEstimator::default()
                .estimate(&fgn(h, 1 << 15, 5))
                .unwrap();
            assert!((est.hurst - h).abs() < 0.12, "H={h} est={}", est.hurst);
            assert!(
                est.r_squared > 0.95,
                "poor fit at H={h}: R²={}",
                est.r_squared
            );
        }
    }

    #[test]
    fn absolute_moment_recovers_hurst() {
        for &h in &[0.6, 0.8, 0.9] {
            let est = AbsoluteMomentEstimator::default()
                .estimate(&fgn(h, 1 << 16, 9))
                .unwrap();
            assert!((est.hurst - h).abs() < 0.12, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn residual_variance_recovers_hurst() {
        for &h in &[0.6, 0.8, 0.9] {
            let est = ResidualVarianceEstimator::default()
                .estimate(&fgn(h, 1 << 16, 13))
                .unwrap();
            assert!((est.hurst - h).abs() < 0.12, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn white_noise_reads_near_half() {
        let vals = fgn(0.5, 1 << 15, 21);
        for (name, est) in [
            (
                "higuchi",
                HiguchiEstimator::default().estimate(&vals).unwrap().hurst,
            ),
            (
                "absmom",
                AbsoluteMomentEstimator::default()
                    .estimate(&vals)
                    .unwrap()
                    .hurst,
            ),
            (
                "residual",
                ResidualVarianceEstimator::default()
                    .estimate(&vals)
                    .unwrap()
                    .hurst,
            ),
        ] {
            assert!((est - 0.5).abs() < 0.1, "{name}: {est}");
        }
    }

    #[test]
    fn higuchi_is_offset_invariant() {
        // Traffic rates are strictly positive; a large mean must not
        // drag the estimate toward 1.
        let base = fgn(0.75, 1 << 14, 17);
        let shifted: Vec<f64> = base.iter().map(|&v| v + 1e4).collect();
        let a = HiguchiEstimator::default().estimate(&base).unwrap().hurst;
        let b = HiguchiEstimator::default()
            .estimate(&shifted)
            .unwrap()
            .hurst;
        assert!((a - b).abs() < 1e-9, "offset changed Higuchi: {a} vs {b}");
    }

    #[test]
    fn peng_is_robust_to_linear_trend() {
        // Add a drift that wrecks variance-time but not Peng's
        // block-detrended statistic.
        let h = 0.75;
        let base = fgn(h, 1 << 15, 31);
        let drift: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 1e-4 * i as f64)
            .collect();
        let clean = ResidualVarianceEstimator::default()
            .estimate(&base)
            .unwrap()
            .hurst;
        let drifted = ResidualVarianceEstimator::default()
            .estimate(&drift)
            .unwrap()
            .hurst;
        assert!(
            (drifted - clean).abs() < 0.1,
            "Peng drifted from {clean:.3} to {drifted:.3} under trend"
        );
    }

    #[test]
    fn short_inputs_error() {
        assert!(matches!(
            HiguchiEstimator::default().estimate(&[1.0; 64]),
            Err(EstimateError::TooShort { .. })
        ));
        assert!(matches!(
            AbsoluteMomentEstimator::default().estimate(&[1.0; 64]),
            Err(EstimateError::TooShort { .. })
        ));
        assert!(matches!(
            ResidualVarianceEstimator::default().estimate(&[1.0; 64]),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn constant_input_is_degenerate() {
        let vals = vec![3.0; 1024];
        assert!(matches!(
            AbsoluteMomentEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
        assert!(matches!(
            ResidualVarianceEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
        // Higuchi on constant input: all curve lengths are zero.
        assert!(matches!(
            HiguchiEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
    }

    #[test]
    fn log_grid_is_sorted_unique_and_bounded() {
        let g = log_grid(1, 1000, 10);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 1000);
        let g2 = log_grid(5, 5, 10);
        assert_eq!(g2, vec![5]);
        assert!(log_grid(10, 5, 10).is_empty());
    }
}
