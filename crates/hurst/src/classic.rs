//! Classical time-domain Hurst estimators: R/S analysis and the
//! aggregated-variance (variance-time) method.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::numeric::logspace;
use sst_sigproc::regress::ols;

/// Rescaled-range (R/S) estimator.
///
/// For each block size `n` on a log grid, the series is cut into blocks;
/// in each block the range of the mean-adjusted cumulative sum is divided
/// by the block standard deviation, and the block values are averaged.
/// `log(R/S)` grows like `H·log n`.
#[derive(Clone, Copy, Debug)]
pub struct RsEstimator {
    /// Smallest block size on the grid.
    pub min_block: usize,
    /// Number of grid points.
    pub n_scales: usize,
}

impl Default for RsEstimator {
    fn default() -> Self {
        RsEstimator {
            min_block: 16,
            n_scales: 12,
        }
    }
}

impl RsEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below 4 blocks of `min_block`;
    /// [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let need = self.min_block * 4;
        if values.len() < need {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need,
            });
        }
        let max_block = values.len() / 4;
        let grid = logspace(self.min_block as f64, max_block as f64, self.n_scales);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut last = 0usize;
        for g in grid {
            let n = g.round() as usize;
            if n <= last || n < 4 {
                continue;
            }
            last = n;
            if let Some(rs) = mean_rs(values, n) {
                xs.push((n as f64).log10());
                ys.push(rs.log10());
            }
        }
        if xs.len() < 3 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        Ok(HurstEstimate {
            hurst: fit.slope,
            stderr: fit.slope_stderr,
            method: Method::RescaledRange,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// Average R/S statistic over all complete blocks of size `n`; `None`
/// when every block is degenerate.
fn mean_rs(values: &[f64], n: usize) -> Option<f64> {
    let blocks = values.len() / n;
    if blocks == 0 {
        return None;
    }
    let mut acc = 0.0;
    let mut used = 0usize;
    for b in 0..blocks {
        let chunk = &values[b * n..(b + 1) * n];
        let mean = chunk.iter().sum::<f64>() / n as f64;
        let std = (chunk.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
        if std <= 0.0 {
            continue;
        }
        let mut cum = 0.0;
        let mut hi = f64::NEG_INFINITY;
        let mut lo = f64::INFINITY;
        for &x in chunk {
            cum += x - mean;
            hi = hi.max(cum);
            lo = lo.min(cum);
        }
        acc += (hi - lo) / std;
        used += 1;
    }
    if used == 0 {
        None
    } else {
        Some(acc / used as f64)
    }
}

/// Aggregated-variance estimator: `var(f^(m)) ~ σ²·m^{2H−2}`, so the
/// log-log slope of block-mean variance against `m` gives `H = 1 + s/2`.
#[derive(Clone, Copy, Debug)]
pub struct VarianceTimeEstimator {
    /// Smallest aggregation level.
    pub min_m: usize,
    /// Number of levels on the log grid.
    pub n_scales: usize,
}

impl Default for VarianceTimeEstimator {
    fn default() -> Self {
        VarianceTimeEstimator {
            min_m: 2,
            n_scales: 14,
        }
    }
}

impl VarianceTimeEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] when fewer than 3 usable aggregation
    /// levels exist; [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        if values.len() < 64 {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: 64,
            });
        }
        let max_m = values.len() / 16; // keep ≥16 blocks per level
        if max_m <= self.min_m {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: self.min_m * 32,
            });
        }
        let grid = logspace(self.min_m as f64, max_m as f64, self.n_scales);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut last = 0usize;
        for g in grid {
            let m = g.round() as usize;
            if m <= last {
                continue;
            }
            last = m;
            let var = aggregated_variance(values, m);
            if var > 0.0 {
                xs.push((m as f64).log10());
                ys.push(var.log10());
            }
        }
        if xs.len() < 3 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        Ok(HurstEstimate {
            hurst: 1.0 + fit.slope / 2.0,
            stderr: fit.slope_stderr / 2.0,
            method: Method::VarianceTime,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// Population variance of the m-block means of `values`.
fn aggregated_variance(values: &[f64], m: usize) -> f64 {
    let blocks = values.len() / m;
    if blocks < 2 {
        return 0.0;
    }
    let means: Vec<f64> = (0..blocks)
        .map(|b| values[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / blocks as f64;
    means
        .iter()
        .map(|&x| (x - grand) * (x - grand))
        .sum::<f64>()
        / blocks as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn rs_recovers_hurst() {
        for &h in &[0.6, 0.8] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 5);
            let est = RsEstimator::default().estimate(&vals).unwrap();
            // R/S is the noisiest classical estimator; wide tolerance.
            assert!((est.hurst - h).abs() < 0.12, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn variance_time_recovers_hurst() {
        for &h in &[0.6, 0.8, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 8);
            let est = VarianceTimeEstimator::default().estimate(&vals).unwrap();
            assert!((est.hurst - h).abs() < 0.08, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let vals = FgnGenerator::new(0.5).unwrap().generate_values(1 << 15, 2);
        let rs = RsEstimator::default().estimate(&vals).unwrap();
        let vt = VarianceTimeEstimator::default().estimate(&vals).unwrap();
        // R/S has a known small-sample upward bias (~0.55-0.6 on white
        // noise); variance-time is unbiased here.
        assert!(rs.hurst < 0.65, "rs={}", rs.hurst);
        assert!((vt.hurst - 0.5).abs() < 0.06, "vt={}", vt.hurst);
    }

    #[test]
    fn short_input_errors() {
        assert!(matches!(
            RsEstimator::default().estimate(&[1.0; 10]),
            Err(EstimateError::TooShort { .. })
        ));
        assert!(matches!(
            VarianceTimeEstimator::default().estimate(&[1.0; 10]),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn constant_input_degenerate() {
        let vals = vec![3.0; 4096];
        assert!(matches!(
            RsEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
        assert!(matches!(
            VarianceTimeEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
    }

    #[test]
    fn aggregated_variance_of_iid_scales_inverse_m() {
        use rand::Rng;
        let mut rng = sst_stats::rng::rng_from_seed(4);
        let vals: Vec<f64> = (0..1 << 16).map(|_| rng.gen::<f64>()).collect();
        let v4 = aggregated_variance(&vals, 4);
        let v64 = aggregated_variance(&vals, 64);
        let ratio = v4 / v64;
        assert!((ratio - 16.0).abs() < 4.0, "ratio={ratio}");
    }
}
