//! Abry-Veitch wavelet estimator of the Hurst parameter.
//!
//! The paper (§VI) measures the Hurst parameter of its traces with "a
//! wavelet based tool provided by Abry et al. \[22\]" — the log-scale
//! diagram. For an LRD process the average detail energy per octave obeys
//! `log2 μ_j ≈ (2H − 1)·j + c`, so a weighted linear regression of
//! `log2 μ_j` on the octave index `j` estimates `H`. Octaves are weighted
//! by the inverse variance of `log2 μ_j` (≈ `ζ(2, n_j/2)/ln²2`), which is
//! what makes the estimator close to efficient.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::regress::weighted_ols;
use sst_sigproc::special::hurwitz_zeta_2;
use sst_sigproc::wavelet::{dwt, Wavelet};

/// Configurable Abry-Veitch estimator.
///
/// # Examples
///
/// ```
/// use sst_hurst::WaveletEstimator;
/// use sst_traffic::FgnGenerator;
///
/// let trace = FgnGenerator::new(0.8).unwrap().generate_values(1 << 14, 7);
/// let est = WaveletEstimator::default().estimate(&trace).unwrap();
/// assert!((est.hurst - 0.8).abs() < 0.1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WaveletEstimator {
    wavelet: Wavelet,
    /// First octave included in the fit (skips fine scales where
    /// short-range structure dominates).
    j1: usize,
    /// Last octave (inclusive); `None` = deepest octave with ≥ 8
    /// coefficients.
    j2: Option<usize>,
}

impl Default for WaveletEstimator {
    fn default() -> Self {
        WaveletEstimator {
            wavelet: Wavelet::Db3,
            j1: 3,
            j2: None,
        }
    }
}

impl WaveletEstimator {
    /// Creates an estimator with an explicit octave range `[j1, j2]`.
    ///
    /// # Panics
    ///
    /// Panics if `j1 == 0` or `j2 < j1 + 1` (need at least 2 octaves).
    pub fn with_octaves(wavelet: Wavelet, j1: usize, j2: usize) -> Self {
        assert!(j1 >= 1, "octaves are 1-based");
        assert!(j2 > j1, "need at least two octaves to fit a slope");
        WaveletEstimator {
            wavelet,
            j1,
            j2: Some(j2),
        }
    }

    /// Sets the wavelet family (builder-style).
    pub fn wavelet(mut self, w: Wavelet) -> Self {
        self.wavelet = w;
        self
    }

    /// Sets the first fitted octave (builder-style).
    pub fn min_octave(mut self, j1: usize) -> Self {
        assert!(j1 >= 1, "octaves are 1-based");
        self.j1 = j1;
        self
    }

    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] if fewer than 2 fit octaves are
    /// available; [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let need = 1 << (self.j1 + 4);
        if values.len() < need.max(64) {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: need.max(64),
            });
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / values.len() as f64;
        if var <= f64::EPSILON * mean.abs().max(1.0) {
            return Err(EstimateError::Degenerate);
        }
        let max_levels = self.j2.unwrap_or(usize::MAX).min(30);
        let pyr = dwt(values, self.wavelet, max_levels);
        let mut octs = Vec::new();
        let mut logs = Vec::new();
        let mut weights = Vec::new();
        let deepest = self.j2.unwrap_or(pyr.levels()).min(pyr.levels());
        for j in self.j1..=deepest {
            let n_j = pyr.octave_len(j);
            if n_j < 8 {
                break;
            }
            let mu = match pyr.octave_energy(j) {
                Some(m) if m > 0.0 => m,
                _ => return Err(EstimateError::Degenerate),
            };
            octs.push(j as f64);
            logs.push(mu.log2());
            // var(log2 μ_j) ≈ ζ(2, n_j/2) / ln²2 (Veitch & Abry 1999).
            let var = hurwitz_zeta_2(n_j as f64 / 2.0) / (std::f64::consts::LN_2.powi(2));
            weights.push(1.0 / var);
        }
        if octs.len() < 2 {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: need.max(64),
            });
        }
        let fit = weighted_ols(&octs, &logs, &weights);
        // slope = 2H − 1.
        let hurst = (fit.slope + 1.0) / 2.0;
        Ok(HurstEstimate {
            hurst,
            stderr: fit.slope_stderr / 2.0,
            method: Method::Wavelet,
            n_points: octs.len(),
            r_squared: fit.r_squared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn recovers_hurst_across_range() {
        for &h in &[0.6, 0.7, 0.8, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 42);
            let est = WaveletEstimator::default().estimate(&vals).unwrap();
            assert!((est.hurst - h).abs() < 0.06, "H={h} est={}", est.hurst);
            assert!(est.is_lrd());
        }
    }

    #[test]
    fn white_noise_is_half() {
        let vals = FgnGenerator::new(0.5).unwrap().generate_values(1 << 15, 3);
        let est = WaveletEstimator::default().estimate(&vals).unwrap();
        assert!((est.hurst - 0.5).abs() < 0.08, "est={}", est.hurst);
        assert!(!est.is_lrd());
    }

    #[test]
    fn explicit_octave_range() {
        let vals = FgnGenerator::new(0.75).unwrap().generate_values(1 << 15, 9);
        let est = WaveletEstimator::with_octaves(Wavelet::Db2, 2, 9)
            .estimate(&vals)
            .unwrap();
        assert!((est.hurst - 0.75).abs() < 0.08, "est={}", est.hurst);
        assert!(est.n_points <= 8);
    }

    #[test]
    fn too_short_input_errors() {
        let vals = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            WaveletEstimator::default().estimate(&vals),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn constant_input_is_degenerate() {
        let vals = vec![5.0; 1 << 12];
        assert_eq!(
            WaveletEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        );
    }

    #[test]
    fn different_wavelets_agree() {
        let vals = FgnGenerator::new(0.8).unwrap().generate_values(1 << 16, 17);
        let a = WaveletEstimator::default()
            .wavelet(Wavelet::Db2)
            .estimate(&vals)
            .unwrap();
        let b = WaveletEstimator::default()
            .wavelet(Wavelet::Db6)
            .estimate(&vals)
            .unwrap();
        assert!(
            (a.hurst - b.hurst).abs() < 0.05,
            "{} vs {}",
            a.hurst,
            b.hurst
        );
    }

    #[test]
    #[should_panic(expected = "at least two octaves")]
    fn invalid_octave_range_panics() {
        WaveletEstimator::with_octaves(Wavelet::Haar, 3, 3);
    }
}
