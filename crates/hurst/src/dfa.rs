//! Detrended fluctuation analysis (DFA-1).
//!
//! The most widely used robust Hurst estimator outside networking:
//! integrate the centered series, split into boxes of length `n`, remove
//! a per-box linear trend, and measure the RMS residual `F(n)`; then
//! `F(n) ∝ n^H` for fGn-like input. DFA tolerates slow trends and mild
//! non-stationarity that bias the variance-time and R/S methods, which
//! makes it a good cross-check on measured traces.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::numeric::logspace;
use sst_sigproc::regress::ols;

/// DFA-1 estimator (linear detrending).
#[derive(Clone, Copy, Debug)]
pub struct DfaEstimator {
    /// Smallest box size (≥ 4 so the linear fit has residual df).
    pub min_box: usize,
    /// Number of box sizes on the log grid.
    pub n_scales: usize,
}

impl Default for DfaEstimator {
    fn default() -> Self {
        DfaEstimator {
            min_box: 8,
            n_scales: 14,
        }
    }
}

impl DfaEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below `16·min_box` points;
    /// [`EstimateError::Degenerate`] for constant input.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let need = self.min_box * 16;
        if values.len() < need {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need,
            });
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        // Profile (integrated, centered series).
        let mut acc = 0.0;
        let profile: Vec<f64> = values
            .iter()
            .map(|&x| {
                acc += x - mean;
                acc
            })
            .collect();
        if profile.iter().all(|&p| p.abs() < 1e-12) {
            return Err(EstimateError::Degenerate);
        }

        let max_box = values.len() / 4;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut last = 0usize;
        for g in logspace(self.min_box as f64, max_box as f64, self.n_scales) {
            let n = g.round() as usize;
            if n <= last || n < 4 {
                continue;
            }
            last = n;
            if let Some(f) = fluctuation(&profile, n) {
                if f > 0.0 {
                    xs.push((n as f64).log10());
                    ys.push(f.log10());
                }
            }
        }
        if xs.len() < 4 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        Ok(HurstEstimate {
            hurst: fit.slope,
            stderr: fit.slope_stderr,
            method: Method::Dfa,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// RMS of linearly detrended profile residuals over complete boxes of
/// size `n`; `None` when no complete box exists.
fn fluctuation(profile: &[f64], n: usize) -> Option<f64> {
    let boxes = profile.len() / n;
    if boxes == 0 {
        return None;
    }
    let mut total = 0.0;
    for b in 0..boxes {
        let seg = &profile[b * n..(b + 1) * n];
        // Least-squares line on (0..n) vs seg, residual sum of squares.
        let m = n as f64;
        let sx = (m - 1.0) * m / 2.0;
        let sxx = (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
        let sy: f64 = seg.iter().sum();
        let sxy: f64 = seg.iter().enumerate().map(|(i, &y)| i as f64 * y).sum();
        let denom = m * sxx - sx * sx;
        let slope = (m * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / m;
        for (i, &y) in seg.iter().enumerate() {
            let r = y - (slope * i as f64 + intercept);
            total += r * r;
        }
    }
    Some((total / (boxes * n) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn recovers_hurst_on_fgn() {
        for &h in &[0.6, 0.75, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 15, 17);
            let est = DfaEstimator::default().estimate(&vals).unwrap();
            assert!((est.hurst - h).abs() < 0.08, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn white_noise_is_half() {
        let vals = FgnGenerator::new(0.5).unwrap().generate_values(1 << 14, 2);
        let est = DfaEstimator::default().estimate(&vals).unwrap();
        assert!((est.hurst - 0.5).abs() < 0.07, "est={}", est.hurst);
    }

    #[test]
    fn robust_to_linear_trend() {
        // DFA-1 removes linear trends; variance-time does not.
        let h = 0.7;
        let vals: Vec<f64> = FgnGenerator::new(h)
            .unwrap()
            .generate_values(1 << 15, 9)
            .into_iter()
            .enumerate()
            .map(|(i, x)| x + i as f64 * 1e-4)
            .collect();
        let dfa = DfaEstimator::default().estimate(&vals).unwrap();
        assert!((dfa.hurst - h).abs() < 0.1, "dfa={}", dfa.hurst);
        let vt = crate::classic::VarianceTimeEstimator::default()
            .estimate(&vals)
            .unwrap();
        assert!(
            (vt.hurst - h).abs() > (dfa.hurst - h).abs(),
            "trend should hurt variance-time ({}) more than DFA ({})",
            vt.hurst,
            dfa.hurst
        );
    }

    #[test]
    fn short_input_errors() {
        assert!(matches!(
            DfaEstimator::default().estimate(&[1.0; 50]),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn constant_input_degenerate() {
        assert!(matches!(
            DfaEstimator::default().estimate(&vec![2.0; 4096]),
            Err(EstimateError::Degenerate)
        ));
    }
}
