//! Direct autocorrelation-tail fit: `R(τ) ~ τ^{-β}` ⇒ fit `log R(τ)` on
//! `log τ` and convert `H = 1 − β/2`.
//!
//! This is the estimator closest to how the paper *argues*: its Sections
//! III and its SNC checker all reason in terms of the decay exponent β of
//! the autocorrelation. It is noisier than the wavelet/Whittle estimators
//! (sample ACFs of LRD processes converge slowly) but provides β directly.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::conv::autocorrelation;
use sst_sigproc::regress::ols;

/// Log-log ACF tail fit estimator.
///
/// The sample ACF of an LRD process is biased **downward** by
/// `≈ n^{2H−2}` (the variance of the sample mean leaks into every lag),
/// and the relative bias grows with the lag, so the default window stops
/// at lag 64 where the true correlation still dominates the bias. Expect
/// β̂ to run slightly high (Ĥ slightly low); the wavelet and Whittle
/// estimators are the accurate ones — this estimator's role is to expose
/// β directly, mirroring the paper's analytical arguments.
#[derive(Clone, Copy, Debug)]
pub struct AcfFitEstimator {
    /// Smallest lag included (skips short-range structure).
    pub min_lag: usize,
    /// Largest lag included; `None` = `min(n/512, 64)` clamped to at
    /// least `min_lag + 16`.
    pub max_lag: Option<usize>,
}

impl Default for AcfFitEstimator {
    fn default() -> Self {
        AcfFitEstimator {
            min_lag: 4,
            max_lag: None,
        }
    }
}

impl AcfFitEstimator {
    /// Estimates β (and hence H) from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] below 512 points;
    /// [`EstimateError::Degenerate`] when too few positive ACF values
    /// remain in the fit window (e.g. short-range or anti-correlated
    /// input).
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        if values.len() < 512 {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: 512,
            });
        }
        let max_lag = self
            .max_lag
            .unwrap_or_else(|| (values.len() / 512).min(64))
            .max(self.min_lag + 16);
        let rho = autocorrelation(values, max_lag);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let hi = max_lag.min(rho.len() - 1);
        let window = hi - self.min_lag + 1;
        for (tau, &r) in rho.iter().enumerate().take(hi + 1).skip(self.min_lag) {
            if r > 0.0 {
                xs.push((tau as f64).log10());
                ys.push(r.log10());
            }
        }
        // Require a solidly positive correlation tail: anti-correlated or
        // short-range inputs leave holes at odd lags / beyond a cutoff.
        if xs.len() * 5 < window * 3 || xs.len() < 8 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        let beta = -fit.slope;
        Ok(HurstEstimate {
            hurst: 1.0 - beta / 2.0,
            stderr: fit.slope_stderr / 2.0,
            method: Method::AcfFit,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }

    /// Convenience: the decay exponent `β̂ = 2 − 2Ĥ` directly.
    ///
    /// # Errors
    ///
    /// Same as [`AcfFitEstimator::estimate`].
    pub fn estimate_beta(&self, values: &[f64]) -> Result<f64, EstimateError> {
        Ok(self.estimate(values)?.beta())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn recovers_beta_for_strong_lrd() {
        // ACF fitting is only indicative: the sample ACF's downward bias
        // (≈ n^{2H−2}) steepens the fitted slope, so β̂ runs high. The
        // estimate must land in the right region and order correctly.
        let mut prev_beta = f64::INFINITY;
        for &h in &[0.8, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 17, 11);
            let est = AcfFitEstimator::default().estimate(&vals).unwrap();
            let beta = 2.0 - 2.0 * h;
            assert!(
                (est.beta() - beta).abs() < 0.25,
                "β={beta} est={}",
                est.beta()
            );
            assert!(est.beta() < prev_beta, "β̂ should decrease with H");
            prev_beta = est.beta();
        }
    }

    #[test]
    fn anticorrelated_input_degenerates() {
        let vals: Vec<f64> = (0..2048)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(matches!(
            AcfFitEstimator::default().estimate(&vals),
            Err(EstimateError::Degenerate)
        ));
    }

    #[test]
    fn short_input_errors() {
        assert!(matches!(
            AcfFitEstimator::default().estimate(&[1.0; 100]),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn beta_helper_matches_estimate() {
        let vals = FgnGenerator::new(0.85).unwrap().generate_values(1 << 15, 5);
        let e = AcfFitEstimator::default();
        let full = e.estimate(&vals).unwrap();
        let beta = e.estimate_beta(&vals).unwrap();
        assert!((full.beta() - beta).abs() < 1e-12);
    }
}
