//! Frequency-domain Hurst estimators: periodogram regression and the
//! local Whittle (semi-parametric Gaussian likelihood) estimator.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::fft::periodogram;
use sst_sigproc::numeric::golden_section_min;
use sst_sigproc::regress::ols;

/// Periodogram estimator: for an LRD process `I(λ) ~ c·λ^{1−2H}` as
/// `λ → 0`, so an OLS fit of `log I` on `log λ` over the lowest
/// frequencies has slope `1 − 2H`.
#[derive(Clone, Copy, Debug)]
pub struct PeriodogramEstimator {
    /// Fraction of the lowest Fourier frequencies used (default 10%).
    pub low_fraction: f64,
}

impl Default for PeriodogramEstimator {
    fn default() -> Self {
        PeriodogramEstimator { low_fraction: 0.10 }
    }
}

impl PeriodogramEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] with fewer than 128 points;
    /// [`EstimateError::Degenerate`] when the spectrum is empty/zero.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        if values.len() < 128 {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: 128,
            });
        }
        let (freqs, dens) = periodogram(values);
        let m = ((freqs.len() as f64) * self.low_fraction).floor() as usize;
        if m < 8 {
            return Err(EstimateError::TooShort {
                got: values.len(),
                need: 128,
            });
        }
        let mut xs = Vec::with_capacity(m);
        let mut ys = Vec::with_capacity(m);
        for j in 0..m {
            if dens[j] > 0.0 {
                xs.push(freqs[j].log10());
                ys.push(dens[j].log10());
            }
        }
        if xs.len() < 8 {
            return Err(EstimateError::Degenerate);
        }
        let fit = ols(&xs, &ys);
        // slope = 1 − 2H.
        Ok(HurstEstimate {
            hurst: (1.0 - fit.slope) / 2.0,
            stderr: fit.slope_stderr / 2.0,
            method: Method::Periodogram,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// Local Whittle estimator (Robinson 1995): minimizes
/// `R(H) = ln( (1/m) Σ_j λ_j^{2H−1} I(λ_j) ) − (2H−1)·(1/m) Σ_j ln λ_j`
/// over `H`, using the lowest `m` Fourier frequencies.
#[derive(Clone, Copy, Debug)]
pub struct LocalWhittleEstimator {
    /// Bandwidth exponent: `m = n^bandwidth` frequencies (default 0.65).
    pub bandwidth: f64,
}

impl Default for LocalWhittleEstimator {
    fn default() -> Self {
        LocalWhittleEstimator { bandwidth: 0.65 }
    }
}

impl LocalWhittleEstimator {
    /// Estimates H from `values`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] with fewer than 256 points;
    /// [`EstimateError::Degenerate`] for zero spectra.
    pub fn estimate(&self, values: &[f64]) -> Result<HurstEstimate, EstimateError> {
        let n = values.len();
        if n < 256 {
            return Err(EstimateError::TooShort { got: n, need: 256 });
        }
        let (freqs, dens) = periodogram(values);
        let m = ((n as f64).powf(self.bandwidth) as usize).clamp(16, freqs.len());
        let lam = &freqs[..m];
        let per = &dens[..m];
        if per.iter().all(|&p| p <= 0.0) {
            return Err(EstimateError::Degenerate);
        }
        let mean_log_lam = lam.iter().map(|l| l.ln()).sum::<f64>() / m as f64;
        let objective = |h: f64| {
            let g: f64 = lam
                .iter()
                .zip(per)
                .map(|(&l, &p)| l.powf(2.0 * h - 1.0) * p)
                .sum::<f64>()
                / m as f64;
            g.max(1e-300).ln() - (2.0 * h - 1.0) * mean_log_lam
        };
        let (h, _) = golden_section_min(objective, 0.01, 0.999, 1e-6);
        // Asymptotic stderr of local Whittle is 1/(2√m).
        Ok(HurstEstimate {
            hurst: h,
            stderr: 0.5 / (m as f64).sqrt(),
            method: Method::LocalWhittle,
            n_points: m,
            r_squared: f64::NAN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn periodogram_recovers_hurst() {
        for &h in &[0.6, 0.75, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 13);
            let est = PeriodogramEstimator::default().estimate(&vals).unwrap();
            assert!((est.hurst - h).abs() < 0.1, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn local_whittle_recovers_hurst() {
        for &h in &[0.6, 0.8, 0.9] {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 29);
            let est = LocalWhittleEstimator::default().estimate(&vals).unwrap();
            assert!((est.hurst - h).abs() < 0.06, "H={h} est={}", est.hurst);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let vals = FgnGenerator::new(0.5).unwrap().generate_values(1 << 15, 7);
        let p = PeriodogramEstimator::default().estimate(&vals).unwrap();
        let w = LocalWhittleEstimator::default().estimate(&vals).unwrap();
        assert!((p.hurst - 0.5).abs() < 0.1, "p={}", p.hurst);
        assert!((w.hurst - 0.5).abs() < 0.06, "w={}", w.hurst);
    }

    #[test]
    fn short_input_errors() {
        assert!(matches!(
            PeriodogramEstimator::default().estimate(&[0.0; 16]),
            Err(EstimateError::TooShort { .. })
        ));
        assert!(matches!(
            LocalWhittleEstimator::default().estimate(&[0.0; 16]),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn whittle_stderr_shrinks_with_length() {
        let short = FgnGenerator::new(0.7).unwrap().generate_values(1 << 10, 1);
        let long = FgnGenerator::new(0.7).unwrap().generate_values(1 << 16, 1);
        let es = LocalWhittleEstimator::default().estimate(&short).unwrap();
        let el = LocalWhittleEstimator::default().estimate(&long).unwrap();
        assert!(el.stderr < es.stderr);
    }

    #[test]
    fn mean_shift_does_not_change_estimate() {
        // The periodogram excludes the zero frequency, so a constant
        // offset is invisible.
        let vals = FgnGenerator::new(0.8).unwrap().generate_values(1 << 14, 3);
        let shifted: Vec<f64> = vals.iter().map(|x| x + 100.0).collect();
        let a = PeriodogramEstimator::default().estimate(&vals).unwrap();
        let b = PeriodogramEstimator::default().estimate(&shifted).unwrap();
        assert!((a.hurst - b.hurst).abs() < 1e-9);
    }
}
