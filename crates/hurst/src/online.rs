//! Online (single-pass, bounded-memory) aggregated-variance Hurst
//! estimation over **dyadic block accumulators**.
//!
//! The offline [`crate::classic::VarianceTimeEstimator`] needs the whole
//! series in memory to form block means at every aggregation level. A
//! monitor watching an unbounded stream cannot afford that; this module
//! maintains, per dyadic level `m = 2^k`, a Welford accumulator of the
//! completed `m`-block means — O(log n) state total — via a
//! binary-counter cascade: each arriving value closes a level-0 block,
//! two closed level-`k` blocks merge into a closed level-`k+1` block,
//! and every closed block pushes its mean into its level's
//! [`RunningStats`]. The log-log regression of block-mean variance
//! against `m` then gives `H = 1 + slope/2` exactly as in the offline
//! method (`var(X^(m)) ~ σ²·m^{2H−2}`), and the
//! `online_matches_offline_*` tests pin the two estimators to within
//! 0.02 on fGn fixtures.
//!
//! The per-level accumulators are **mergeable**: pooling the completed
//! block means of two disjoint streams level by level yields the
//! pooled variance-time statistic of both streams (the open partial
//! blocks of each stream are dropped — they have no sibling to pair
//! with across streams). `sst-monitor` uses this to combine per-stream
//! Hurst state into link-level estimates.

use crate::report::{EstimateError, HurstEstimate, Method};
use sst_sigproc::regress::ols;
use sst_stats::rng::derive_seed;
use sst_stats::RunningStats;

/// Hard cap on dyadic levels: 2^48 values is far beyond any stream this
/// engine will see, and keeps merged state bounded.
const MAX_LEVELS: usize = 48;

/// Fewest completed blocks for a level to enter the regression — the
/// offline estimator's `max_m = n/16` bound, expressed online.
const MIN_BLOCKS: u64 = 16;

/// A differential update taking an older snapshot of a cascade to a
/// newer one, produced by [`OnlineVarianceTime::diff_from`] and applied
/// by [`OnlineVarianceTime::apply_patch`].
///
/// Changed levels ship their Welford state and carry slot **verbatim**
/// (floats are never delta-encoded — reassembly must be bit-exact);
/// only the monotone value counter travels as an integer delta. With
/// ≤`p` new points the cascade touches only its ~`log₂ p` finest
/// levels, so a steady-state patch is a small fraction of the full
/// cascade.
#[derive(Clone, Debug, PartialEq)]
pub struct CascadePatch {
    /// `new.count − base.count` (monotone counter delta).
    pub count_delta: u64,
    /// Level count of the new state (never shrinks in a diffable pair).
    pub new_levels: usize,
    /// Changed levels as `(index, block-mean stats, carry slot)`,
    /// strictly ascending by index.
    pub changed: Vec<(usize, RunningStats, Option<f64>)>,
}

/// Bit-level image of one cascade level, for exact change detection
/// (`PartialEq` on floats would conflate `0.0`/`-0.0` and NaN payloads,
/// silently breaking byte-identical reassembly).
fn level_bits(stats: &RunningStats, carry: Option<f64>) -> (u64, u64, u64, u64, u64, Option<u64>) {
    let (n, mean, m2, min, max) = stats.raw_parts();
    (
        n,
        mean.to_bits(),
        m2.to_bits(),
        min.to_bits(),
        max.to_bits(),
        carry.map(f64::to_bits),
    )
}

/// Streaming aggregated-variance (variance-time) estimator state.
///
/// # Examples
///
/// ```
/// use sst_hurst::online::OnlineVarianceTime;
/// use sst_traffic::FgnGenerator;
///
/// let mut ovt = OnlineVarianceTime::new();
/// for v in FgnGenerator::new(0.8).unwrap().generate_values(1 << 14, 3) {
///     ovt.push(v);
/// }
/// let est = ovt.estimate().unwrap();
/// assert!((est.hurst - 0.8).abs() < 0.1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineVarianceTime {
    /// Values pushed so far.
    count: u64,
    /// `levels[k]`: stats of the means of completed `2^k`-blocks.
    levels: Vec<RunningStats>,
    /// `partial[k]`: sum of a completed `2^k`-block waiting for its
    /// sibling (the binary-counter carry chain).
    partial: Vec<Option<f64>>,
}

impl OnlineVarianceTime {
    /// Creates empty estimator state.
    pub fn new() -> Self {
        OnlineVarianceTime::default()
    }

    /// Values pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one value (amortized O(1): the cascade touches level `k`
    /// every `2^k` pushes).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let mut sum = x;
        let mut size = 1u64;
        for k in 0..MAX_LEVELS {
            if self.levels.len() <= k {
                self.levels.push(RunningStats::new());
                self.partial.push(None);
            }
            self.levels[k].push(sum / size as f64);
            match self.partial[k].take() {
                // The sibling (earlier half) was waiting: the parent
                // block is now complete; carry its sum upward.
                Some(first_half) => {
                    sum += first_half;
                    size *= 2;
                }
                None => {
                    self.partial[k] = Some(sum);
                    break;
                }
            }
        }
    }

    /// Per-level view: `(block size m, completed-block-mean stats)` for
    /// every level that has completed at least one block.
    pub fn levels(&self) -> impl Iterator<Item = (u64, &RunningStats)> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(k, s)| (1u64 << k, s))
    }

    /// Decomposes the estimator into its raw state
    /// `(count, per-level block-mean stats, carry chain)` so a
    /// serializer can round-trip it bit-for-bit.
    pub fn raw_parts(&self) -> (u64, &[RunningStats], &[Option<f64>]) {
        (self.count, &self.levels, &self.partial)
    }

    /// Rebuilds estimator state from [`OnlineVarianceTime::raw_parts`]
    /// output. `levels` and `partial` must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn from_raw_parts(
        count: u64,
        levels: Vec<RunningStats>,
        partial: Vec<Option<f64>>,
    ) -> Self {
        assert_eq!(levels.len(), partial.len(), "level/carry length mismatch");
        OnlineVarianceTime {
            count,
            levels,
            partial,
        }
    }

    /// Number of dyadic levels currently held (including levels whose
    /// block-mean stats are still empty).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Approximate in-memory footprint: the per-level block-mean stats
    /// plus the carry chain, in bytes.
    pub fn estimated_bytes(&self) -> usize {
        // count + 2 Vec headers, then 40 B of Welford state and a
        // 16 B Option<f64> carry slot per level.
        8 + 48 + self.levels.len() * (40 + 16)
    }

    /// Drops every dyadic level at index `max_levels` and above — the
    /// *coarse* end of the cascade, whose block sizes are largest and
    /// whose completed-block counts are smallest (a level at index `k`
    /// needs `16 · 2^k` values before [`OnlineVarianceTime::estimate`]
    /// will even use it). This is the summary-compaction primitive: it
    /// bounds the estimator at `max_levels · 56` bytes while leaving the
    /// statistically informative fine levels untouched.
    ///
    /// Lossy but benign: subsequent pushes re-grow coarse levels from
    /// the point of pruning (their partial carries restart), so a
    /// periodically pruned estimator tracks the unpruned one on the
    /// fine levels exactly and differs only in coarse levels that a
    /// bounded-memory monitor could not afford anyway. `count` — the
    /// total — is untouched.
    pub fn prune_levels(&mut self, max_levels: usize) {
        let keep = max_levels.min(MAX_LEVELS);
        if self.levels.len() > keep {
            self.levels.truncate(keep);
            self.partial.truncate(keep);
        }
    }

    /// The patch taking `base` to `self`, or `None` when the pair is
    /// not diffable: the count went backwards or levels shrank (e.g.
    /// `base` was pruned after `self`'s snapshot — ship the full state
    /// instead). Applying the result to `base` reproduces `self`
    /// bit-for-bit: changed levels travel verbatim, compared at the
    /// bit level so signed zeros and NaN payloads survive.
    pub fn diff_from(&self, base: &OnlineVarianceTime) -> Option<CascadePatch> {
        if self.count < base.count || self.levels.len() < base.levels.len() {
            return None;
        }
        let mut changed = Vec::new();
        for k in 0..self.levels.len() {
            let same = base.levels.get(k).is_some_and(|b| {
                level_bits(b, base.partial[k]) == level_bits(&self.levels[k], self.partial[k])
            });
            if !same {
                changed.push((k, self.levels[k], self.partial[k]));
            }
        }
        Some(CascadePatch {
            count_delta: self.count - base.count,
            new_levels: self.levels.len(),
            changed,
        })
    }

    /// Applies a [`OnlineVarianceTime::diff_from`] patch. Returns
    /// `false` — leaving the state untouched — when the patch is
    /// structurally inconsistent with this state (levels would shrink,
    /// indices out of range or unsorted, counter overflow); a receiver
    /// should treat that as a lost baseline and resync.
    pub fn apply_patch(&mut self, p: &CascadePatch) -> bool {
        if p.new_levels < self.levels.len() || p.new_levels > MAX_LEVELS {
            return false;
        }
        let Some(count) = self.count.checked_add(p.count_delta) else {
            return false;
        };
        let mut prev: Option<usize> = None;
        for &(idx, _, _) in &p.changed {
            if idx >= p.new_levels || prev.is_some_and(|q| idx <= q) {
                return false;
            }
            prev = Some(idx);
        }
        self.levels.resize(p.new_levels, RunningStats::new());
        self.partial.resize(p.new_levels, None);
        for &(idx, stats, carry) in &p.changed {
            self.levels[idx] = stats;
            self.partial[idx] = carry;
        }
        self.count = count;
        true
    }

    /// Pools another estimator's completed-block statistics into this
    /// one (level-by-level [`RunningStats::merge`]; the open partial
    /// blocks of `other` are dropped — across streams they have no
    /// sibling to complete with).
    pub fn merge_from(&mut self, other: &OnlineVarianceTime) {
        self.count += other.count;
        while self.levels.len() < other.levels.len() {
            self.levels.push(RunningStats::new());
            self.partial.push(None);
        }
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.merge(theirs);
        }
    }

    /// The variance-time regression over the dyadic levels:
    /// `H = 1 + slope/2` from `log var(X^(m))` vs `log m`, levels
    /// `m ≥ 2` with at least 16 completed blocks.
    ///
    /// # Errors
    ///
    /// [`EstimateError::TooShort`] with fewer than 3 usable levels;
    /// [`EstimateError::Degenerate`] when the variances collapse to
    /// zero (constant input).
    pub fn estimate(&self) -> Result<HurstEstimate, EstimateError> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (m, stats) in self.levels() {
            if m < 2 || stats.count() < MIN_BLOCKS {
                continue;
            }
            let var = stats.variance();
            if var > 0.0 {
                xs.push((m as f64).log10());
                ys.push(var.log10());
            }
        }
        if xs.len() < 3 {
            // 128 values complete 16 blocks at m ∈ {2, 4, 8} — the
            // smallest stream with 3 regression points. With that much
            // data and still no usable levels, the input is constant.
            if self.count >= 128 {
                return Err(EstimateError::Degenerate);
            }
            return Err(EstimateError::TooShort {
                got: self.count as usize,
                need: 128,
            });
        }
        let fit = ols(&xs, &ys);
        if !fit.slope.is_finite() {
            return Err(EstimateError::Degenerate);
        }
        Ok(HurstEstimate {
            hurst: 1.0 + fit.slope / 2.0,
            stderr: fit.slope_stderr / 2.0,
            method: Method::OnlineVarianceTime,
            n_points: xs.len(),
            r_squared: fit.r_squared,
        })
    }
}

/// A bank of `r` sign-projection variance-time cascades over a *keyed*
/// stream — the sketch-tier counterpart of [`OnlineVarianceTime`].
///
/// When millions of keys share one aggregate, per-key cascades are
/// unaffordable; Fontugne, Abry & Veitch instead push each point
/// through a handful of random ±1 projections (`σ_j(key) · value`) and
/// run the multiscale analysis on the projected series. A ±1 mixture
/// of flows preserves the second-order scaling of the aggregate, so
/// each cascade's variance-time slope still estimates `H`; the bank
/// reports the median over its cascades to damp projection noise.
///
/// Signs are derived deterministically from `(seed, cascade, key)` via
/// [`derive_seed`] parity, so two banks with the same seed absorb a
/// partitioned stream into mergeable state: [`ProjectionBank::merge_from`]
/// pools the cascades level by level exactly as
/// [`OnlineVarianceTime::merge_from`] does.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectionBank {
    seed: u64,
    /// Cached `derive_seed(seed, j)` per cascade.
    cascade_seeds: Vec<u64>,
    cascades: Vec<OnlineVarianceTime>,
}

impl ProjectionBank {
    /// Creates a bank of `r` cascades (min 1) whose signs derive from
    /// `seed`.
    pub fn new(r: usize, seed: u64) -> Self {
        let r = r.max(1);
        ProjectionBank {
            seed,
            cascade_seeds: (0..r as u64).map(|j| derive_seed(seed, j)).collect(),
            cascades: vec![OnlineVarianceTime::new(); r],
        }
    }

    /// The sign-derivation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cascades in the bank.
    pub fn len(&self) -> usize {
        self.cascades.len()
    }

    /// True when no value has been absorbed (or merged in).
    pub fn is_empty(&self) -> bool {
        self.cascades.iter().all(|c| c.count() == 0)
    }

    /// Values absorbed so far (each value feeds every cascade once).
    pub fn count(&self) -> u64 {
        self.cascades.first().map_or(0, |c| c.count())
    }

    /// Absorbs one keyed value: cascade `j` receives
    /// `σ_j(key) · value` with `σ_j(key) = ±1` from seed parity.
    pub fn push(&mut self, key: u64, value: f64) {
        for (j, cascade) in self.cascades.iter_mut().enumerate() {
            let sign = if derive_seed(self.cascade_seeds[j], key) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            cascade.push(sign * value);
        }
    }

    /// The per-cascade states, for serialization.
    pub fn cascades(&self) -> &[OnlineVarianceTime] {
        &self.cascades
    }

    /// Rebuilds a bank from codec-decoded cascades. Returns `None` on
    /// an empty cascade list.
    pub fn from_raw_parts(seed: u64, cascades: Vec<OnlineVarianceTime>) -> Option<Self> {
        if cascades.is_empty() {
            return None;
        }
        Some(ProjectionBank {
            seed,
            cascade_seeds: (0..cascades.len() as u64)
                .map(|j| derive_seed(seed, j))
                .collect(),
            cascades,
        })
    }

    /// Pools another bank's cascades into this one, level by level.
    /// Requires matching seed and cascade count (same projection
    /// family); a mismatched bank is skipped entirely — a projection
    /// under a different sign family cannot be pooled meaningfully.
    /// An empty `other` is an identity; an empty `self` adopts `other`.
    pub fn merge_from(&mut self, other: &ProjectionBank) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        if self.seed != other.seed || self.cascades.len() != other.cascades.len() {
            return;
        }
        for (mine, theirs) in self.cascades.iter_mut().zip(&other.cascades) {
            mine.merge_from(theirs);
        }
    }

    /// Bounds every cascade at `max_levels` dyadic levels (see
    /// [`OnlineVarianceTime::prune_levels`]).
    pub fn prune_levels(&mut self, max_levels: usize) {
        for c in &mut self.cascades {
            c.prune_levels(max_levels);
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        48 + 8 * self.cascade_seeds.len()
            + self
                .cascades
                .iter()
                .map(|c| c.estimated_bytes())
                .sum::<usize>()
    }

    /// The bank's Hurst estimate: the median over the cascades'
    /// variance-time estimates (lower-middle element for even counts —
    /// deterministic).
    ///
    /// # Errors
    ///
    /// Propagates the first cascade error when *no* cascade can
    /// estimate.
    pub fn estimate(&self) -> Result<HurstEstimate, EstimateError> {
        let mut ok = Vec::new();
        let mut first_err = None;
        for c in &self.cascades {
            match c.estimate() {
                Ok(e) => ok.push(e),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if ok.is_empty() {
            return Err(first_err.unwrap_or(EstimateError::Degenerate));
        }
        ok.sort_by(|a, b| a.hurst.partial_cmp(&b.hurst).expect("finite hurst"));
        Ok(ok.swap_remove((ok.len() - 1) / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::VarianceTimeEstimator;
    use sst_traffic::FgnGenerator;

    fn fgn(h: f64, n: usize, seed: u64) -> Vec<f64> {
        FgnGenerator::new(h).unwrap().generate_values(n, seed)
    }

    fn online_of(values: &[f64]) -> OnlineVarianceTime {
        let mut ovt = OnlineVarianceTime::new();
        for &v in values {
            ovt.push(v);
        }
        ovt
    }

    #[test]
    fn block_stats_match_offline_aggregation_exactly() {
        // The cascade's completed 2^k-blocks are the offline method's
        // aligned complete blocks; counts must match exactly and the
        // variances to fp round-off.
        let vals = fgn(0.75, (1 << 12) + 37, 5); // non-pow2: partials drop
        let ovt = online_of(&vals);
        for (m, stats) in ovt.levels() {
            let m = m as usize;
            let blocks = vals.len() / m;
            assert_eq!(stats.count(), blocks as u64, "m={m}");
            if blocks >= 2 {
                let means: Vec<f64> = (0..blocks)
                    .map(|b| vals[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
                    .collect();
                let grand = means.iter().sum::<f64>() / blocks as f64;
                let var = means
                    .iter()
                    .map(|&x| (x - grand) * (x - grand))
                    .sum::<f64>()
                    / blocks as f64;
                assert!(
                    (stats.variance() - var).abs() <= 1e-9 * var.max(1e-30),
                    "m={m}: online {} vs offline {var}",
                    stats.variance()
                );
            }
        }
    }

    #[test]
    fn online_matches_offline_variance_time_on_fgn() {
        // The acceptance bound for the monitoring engine: online vs the
        // offline estimator within 0.02 across the paper's H range.
        for &h in &[0.6, 0.75, 0.9] {
            let vals = fgn(h, 1 << 16, 11);
            let offline = VarianceTimeEstimator::default()
                .estimate(&vals)
                .unwrap()
                .hurst;
            let online = online_of(&vals).estimate().unwrap().hurst;
            assert!(
                (online - offline).abs() < 0.02,
                "H={h}: online {online:.4} vs offline {offline:.4}"
            );
            assert!((online - h).abs() < 0.1, "H={h}: online {online:.4}");
        }
    }

    #[test]
    fn white_noise_reads_near_half() {
        let est = online_of(&fgn(0.5, 1 << 15, 7)).estimate().unwrap();
        assert!((est.hurst - 0.5).abs() < 0.06, "H={}", est.hurst);
    }

    #[test]
    fn merge_pools_block_means() {
        // Two independent streams: merged per-level counts add, and the
        // merged estimate is the pooled variance-time statistic.
        let a = online_of(&fgn(0.8, 1 << 14, 1));
        let b = online_of(&fgn(0.8, 1 << 14, 2));
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        for ((m_a, sa), (m_m, sm)) in a.levels().zip(merged.levels()) {
            assert_eq!(m_a, m_m);
            let sb = b
                .levels()
                .find(|&(m, _)| m == m_a)
                .map(|(_, s)| s.count())
                .unwrap_or(0);
            assert_eq!(sm.count(), sa.count() + sb, "m={m_a}");
        }
        let h = merged.estimate().unwrap().hurst;
        assert!((h - 0.8).abs() < 0.1, "merged H={h}");
    }

    #[test]
    fn merge_is_deterministic() {
        let a = online_of(&fgn(0.7, 4096, 3));
        let b = online_of(&fgn(0.7, 2048, 4));
        let mut m1 = a.clone();
        m1.merge_from(&b);
        let mut m2 = a.clone();
        m2.merge_from(&b);
        assert_eq!(m1, m2);
    }

    #[test]
    fn short_input_errors() {
        let ovt = online_of(&fgn(0.7, 32, 5));
        assert!(matches!(
            ovt.estimate(),
            Err(EstimateError::TooShort { .. })
        ));
    }

    #[test]
    fn prune_drops_coarse_levels_and_keeps_totals() {
        let vals = fgn(0.8, 1 << 14, 9);
        let full = online_of(&vals);
        let mut pruned = full.clone();
        pruned.prune_levels(8);
        assert_eq!(pruned.level_count(), 8);
        assert_eq!(pruned.count(), full.count(), "totals are sacred");
        // The surviving fine levels are bit-identical to the unpruned
        // cascade's.
        for ((m_p, sp), (m_f, sf)) in pruned.levels().zip(full.levels()) {
            assert_eq!(m_p, m_f);
            assert_eq!(sp, sf, "m={m_p}");
        }
        assert!(pruned.estimated_bytes() < full.estimated_bytes());
        // Still estimates (levels m ∈ {2..128} remain usable).
        let h = pruned.estimate().unwrap().hurst;
        assert!((h - 0.8).abs() < 0.15, "pruned H={h}");
    }

    #[test]
    fn pruned_estimator_regrows_under_further_pushes() {
        let vals = fgn(0.7, 1 << 12, 3);
        let mut ovt = online_of(&vals);
        ovt.prune_levels(4);
        for &v in &vals {
            ovt.push(v);
        }
        assert!(ovt.level_count() > 4, "coarse levels regrow");
        assert_eq!(ovt.count(), 2 * vals.len() as u64);
        assert!(ovt.estimate().is_ok());
    }

    #[test]
    fn prune_to_more_levels_than_held_is_a_noop() {
        let mut ovt = online_of(&fgn(0.6, 1024, 1));
        let before = ovt.clone();
        ovt.prune_levels(64);
        assert_eq!(ovt, before);
    }

    #[test]
    fn constant_input_is_degenerate() {
        let ovt = online_of(&[3.0; 4096]);
        assert!(matches!(ovt.estimate(), Err(EstimateError::Degenerate)));
    }

    #[test]
    fn projection_of_one_key_matches_raw_cascade_variances() {
        // A single key gets one global sign per cascade; variance is
        // sign-invariant, so every level's block-mean variance matches
        // the unprojected cascade and so does the estimate.
        let vals = fgn(0.8, 1 << 14, 21);
        let raw = online_of(&vals);
        let mut bank = ProjectionBank::new(4, 77);
        for &v in &vals {
            bank.push(42, v);
        }
        for c in bank.cascades() {
            for ((m_r, sr), (m_c, sc)) in raw.levels().zip(c.levels()) {
                assert_eq!(m_r, m_c);
                assert_eq!(sr.count(), sc.count());
                assert!(
                    (sr.variance() - sc.variance()).abs() <= 1e-12 * sr.variance().max(1e-30),
                    "m={m_r}"
                );
            }
        }
        let h_raw = raw.estimate().unwrap().hurst;
        let h_bank = bank.estimate().unwrap().hurst;
        assert!((h_raw - h_bank).abs() < 1e-9, "{h_raw} vs {h_bank}");
    }

    #[test]
    fn projection_mixture_recovers_hurst_within_tolerance() {
        // 8 independent fGn flows arriving in long runs: each flow keeps
        // a constant sign per cascade, so the signed mixture preserves
        // the common scaling exponent.
        let h = 0.8;
        let flows: Vec<Vec<f64>> = (0..8u64).map(|k| fgn(h, 1 << 13, 100 + k)).collect();
        let mut bank = ProjectionBank::new(4, 9);
        let run = 1024;
        for chunk in 0..(1 << 13) / run {
            for (k, flow) in flows.iter().enumerate() {
                for &v in &flow[chunk * run..(chunk + 1) * run] {
                    bank.push(k as u64, v);
                }
            }
        }
        let est = bank.estimate().unwrap().hurst;
        assert!((est - h).abs() < 0.15, "projected H={est} vs {h}");
    }

    #[test]
    fn projection_merge_pools_partitions() {
        let vals = fgn(0.75, 1 << 13, 31);
        let mut whole = ProjectionBank::new(3, 5);
        let mut left = ProjectionBank::new(3, 5);
        let mut right = ProjectionBank::new(3, 5);
        for (i, &v) in vals.iter().enumerate() {
            let key = (i / 512) as u64 % 4;
            whole.push(key, v);
            if key < 2 {
                left.push(key, v);
            } else {
                right.push(key, v);
            }
        }
        let mut merged = left.clone();
        merged.merge_from(&right);
        assert_eq!(merged.count(), whole.count());
        // Identity laws.
        let before = merged.clone();
        merged.merge_from(&ProjectionBank::new(3, 5));
        assert_eq!(merged, before);
        let mut empty = ProjectionBank::new(3, 5);
        empty.merge_from(&before);
        assert_eq!(empty, before);
        // Mismatched family is skipped, not corrupted.
        let mut other_family = ProjectionBank::new(3, 6);
        other_family.push(1, 1.0);
        let kept = merged.clone();
        merged.merge_from(&other_family);
        assert_eq!(merged, kept);
    }

    #[test]
    fn projection_bank_roundtrips_raw_parts() {
        let mut bank = ProjectionBank::new(2, 13);
        for i in 0..4096 {
            bank.push(i % 7, (i as f64).sin());
        }
        let back = ProjectionBank::from_raw_parts(bank.seed(), bank.cascades().to_vec()).unwrap();
        assert_eq!(back, bank);
        assert!(ProjectionBank::from_raw_parts(13, Vec::new()).is_none());
    }

    #[test]
    fn cascade_patch_reassembles_bit_exact() {
        let mut base = OnlineVarianceTime::new();
        for i in 0..20_000 {
            base.push((i as f64).sin() * 3.0 + (i % 17) as f64);
        }
        let mut grown = base.clone();
        for i in 20_000..20_037 {
            grown.push((i as f64).sin() * 3.0 + (i % 17) as f64);
        }
        let patch = grown.diff_from(&base).expect("grown cascade diffs");
        // A tiny tail touches only the fine levels; the coarse ones
        // must not travel.
        assert!(patch.changed.len() < grown.level_count());
        let mut rebuilt = base.clone();
        assert!(rebuilt.apply_patch(&patch));
        assert_eq!(rebuilt, grown);
        // Identity patch.
        let empty = base.diff_from(&base).unwrap();
        assert!(empty.changed.is_empty());
        let mut same = base.clone();
        assert!(same.apply_patch(&empty));
        assert_eq!(same, base);
    }

    #[test]
    fn cascade_patch_rejects_structural_shrink() {
        let mut big = OnlineVarianceTime::new();
        for i in 0..10_000 {
            big.push(i as f64);
        }
        let mut small = OnlineVarianceTime::new();
        for i in 0..100 {
            small.push(i as f64);
        }
        // A shrinking pair is not diffable...
        assert!(small.diff_from(&big).is_none());
        // ...and a patch naming fewer levels than the target holds is
        // rejected without mutating it.
        let patch = small.diff_from(&small).unwrap();
        let before = big.clone();
        assert!(!big.apply_patch(&patch));
        assert_eq!(big, before);
    }
}
