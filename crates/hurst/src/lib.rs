//! # sst-hurst — Hurst / long-range-dependence estimation
//!
//! Ten estimators of the Hurst parameter for the He & Hou (ICDCS 2005)
//! reproduction, all returning a common [`HurstEstimate`]:
//!
//! | module | estimator | domain |
//! |---|---|---|
//! | [`wavelet`] | Abry-Veitch log-scale diagram (the paper's §VI tool) | wavelet |
//! | [`classic`] | R/S analysis, aggregated variance | time |
//! | [`spectral`] | periodogram regression, local Whittle | frequency |
//! | [`acffit`] | log-log ACF tail fit (β directly) | time |
//! | [`dfa`] | detrended fluctuation analysis (DFA-1) | time |
//! | [`timedomain`] | Higuchi, absolute moments, variance of residuals | time |
//!
//! ## Example
//!
//! ```
//! use sst_hurst::{estimate_all, WaveletEstimator};
//! use sst_traffic::FgnGenerator;
//!
//! let trace = FgnGenerator::new(0.8).unwrap().generate_values(1 << 14, 1);
//! let est = WaveletEstimator::default().estimate(&trace).unwrap();
//! assert!((est.hurst - 0.8).abs() < 0.1);
//!
//! // Or run the whole battery:
//! let all = estimate_all(&trace);
//! assert!(all.len() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acffit;
pub mod classic;
pub mod dfa;
pub mod online;
pub mod report;
pub mod spectral;
pub mod timedomain;
pub mod wavelet;

pub use acffit::AcfFitEstimator;
pub use classic::{RsEstimator, VarianceTimeEstimator};
pub use dfa::DfaEstimator;
pub use online::{OnlineVarianceTime, ProjectionBank};
pub use report::{EstimateError, HurstEstimate, Method};
pub use spectral::{LocalWhittleEstimator, PeriodogramEstimator};
pub use timedomain::{AbsoluteMomentEstimator, HiguchiEstimator, ResidualVarianceEstimator};
pub use wavelet::WaveletEstimator;

/// Runs every estimator with default settings and returns the successful
/// estimates (estimators that error on this input are skipped).
pub fn estimate_all(values: &[f64]) -> Vec<HurstEstimate> {
    let mut out = Vec::with_capacity(10);
    if let Ok(e) = WaveletEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = RsEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = VarianceTimeEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = PeriodogramEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = LocalWhittleEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = AcfFitEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = DfaEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = HiguchiEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = AbsoluteMomentEstimator::default().estimate(values) {
        out.push(e);
    }
    if let Ok(e) = ResidualVarianceEstimator::default().estimate(values) {
        out.push(e);
    }
    out
}

/// Median of the battery's estimates — a robust single number when one
/// estimator misbehaves on an unusual input. Returns `None` when no
/// estimator succeeded.
pub fn consensus_hurst(values: &[f64]) -> Option<f64> {
    let ests = estimate_all(values);
    if ests.is_empty() {
        return None;
    }
    let mut hs: Vec<f64> = ests.iter().map(|e| e.hurst).collect();
    hs.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
    Some(hs[hs.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn battery_agrees_on_fgn() {
        let h = 0.8;
        let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 16, 99);
        let ests = estimate_all(&vals);
        assert!(ests.len() >= 5, "got {} estimates", ests.len());
        for e in &ests {
            assert!(
                (e.hurst - h).abs() < 0.15,
                "{}: {} too far from {h}",
                e.method,
                e.hurst
            );
        }
        let consensus = consensus_hurst(&vals).unwrap();
        assert!((consensus - h).abs() < 0.07, "consensus={consensus}");
    }

    #[test]
    fn battery_handles_tiny_input() {
        let ests = estimate_all(&[1.0, 2.0, 3.0]);
        assert!(ests.is_empty());
        assert!(consensus_hurst(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn estimators_work_on_onoff_traffic() {
        use sst_traffic::OnOffModel;
        let m = OnOffModel::for_hurst(0.8, 32).unwrap();
        let ts = m.generate(1 << 16, 55);
        let consensus = consensus_hurst(ts.values()).unwrap();
        // On/off aggregation converges to H=0.8 only in the limit; accept
        // a generous band but demand clear LRD.
        assert!(consensus > 0.65, "consensus={consensus}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sst_traffic::FgnGenerator;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn wavelet_estimate_in_valid_range(h in 0.55f64..0.95, seed in 0u64..32) {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 13, seed);
            let est = WaveletEstimator::default().estimate(&vals).unwrap();
            prop_assert!(est.hurst > 0.3 && est.hurst < 1.2);
            prop_assert!((est.hurst - h).abs() < 0.2);
        }

        #[test]
        fn whittle_estimate_close(h in 0.55f64..0.95, seed in 0u64..32) {
            let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 13, seed);
            let est = LocalWhittleEstimator::default().estimate(&vals).unwrap();
            prop_assert!((est.hurst - h).abs() < 0.15);
        }
    }
}
