//! The three classical sampling techniques of §II-B.
//!
//! * **Systematic** — every C-th element from a (seed-derived) starting
//!   offset; deterministic selection pattern.
//! * **Stratified random** — one uniformly random element per bucket of
//!   length C.
//! * **Simple random** — each element kept independently with
//!   probability r (the Bernoulli form whose inter-sample gaps are the
//!   geometric `H(i) = (1−r)^{i−1} r` of Eq. (13)).
//!
//! All samplers are deterministic functions of `(input, seed)`; the seed
//! selects the *sampling instance* (different systematic offsets,
//! different random draws), which is exactly the paper's notion of an
//! instance when measuring the average variance `E(V)`.

use rand::Rng;
use sst_sigproc::plan::lru_fetch;
use sst_stats::rng::{derive_seed, rng_from_seed};
use std::sync::{Arc, Mutex, OnceLock};

/// The output of one sampling instance: the selected positions and the
/// values found there, in increasing index order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Samples {
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Samples {
    /// Creates a sample set from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or indices are not strictly
    /// increasing.
    pub fn new(indices: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        Samples { indices, values }
    }

    /// The selected positions in the original process.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The sampled values (the "sampled process" `g(t)`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sampled mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// A sampling technique: a deterministic function of the input process
/// and an instance seed.
pub trait Sampler {
    /// Short human-readable name ("systematic", …).
    fn name(&self) -> &'static str;

    /// The nominal sampling rate r = E[#samples]/n.
    fn nominal_rate(&self) -> f64;

    /// Draws one sampling instance from `values`.
    fn sample(&self, values: &[f64], seed: u64) -> Samples;
}

/// Static systematic sampling with interval `C`: indices
/// `offset, offset+C, offset+2C, …` where `offset = seed mod C` — each
/// seed selects one of the C possible instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystematicSampler {
    interval: usize,
}

impl SystematicSampler {
    /// Creates a sampler with interval `C ≥ 1` (rate `1/C`).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        assert!(interval >= 1, "sampling interval must be >= 1");
        SystematicSampler { interval }
    }

    /// Sampler whose rate is closest to `rate` (interval = round(1/r)).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        SystematicSampler::new((1.0 / rate).round().max(1.0) as usize)
    }

    /// The sampling interval C.
    pub fn interval(&self) -> usize {
        self.interval
    }
}

impl Sampler for SystematicSampler {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.interval as f64
    }

    fn sample(&self, values: &[f64], seed: u64) -> Samples {
        let offset = (seed % self.interval as u64) as usize;
        let mut indices = Vec::new();
        let mut sampled = Vec::new();
        let mut t = offset;
        while t < values.len() {
            indices.push(t);
            sampled.push(values[t]);
            t += self.interval;
        }
        Samples {
            indices,
            values: sampled,
        }
    }
}

/// Stratified random sampling: one uniform draw per bucket of length `C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StratifiedSampler {
    interval: usize,
}

impl StratifiedSampler {
    /// Creates a sampler with bucket length `C ≥ 1` (rate `1/C`).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        assert!(interval >= 1, "bucket length must be >= 1");
        StratifiedSampler { interval }
    }

    /// Sampler whose rate is closest to `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        StratifiedSampler::new((1.0 / rate).round().max(1.0) as usize)
    }

    /// The bucket length C.
    pub fn interval(&self) -> usize {
        self.interval
    }
}

impl Sampler for StratifiedSampler {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.interval as f64
    }

    fn sample(&self, values: &[f64], seed: u64) -> Samples {
        let mut rng = rng_from_seed(derive_seed(seed, 0x5742));
        let mut indices = Vec::new();
        let mut sampled = Vec::new();
        let mut start = 0usize;
        while start < values.len() {
            let end = (start + self.interval).min(values.len());
            let idx = start + rng.gen_range(0..end - start);
            indices.push(idx);
            sampled.push(values[idx]);
            start = end;
        }
        Samples {
            indices,
            values: sampled,
        }
    }
}

/// Table-driven geometric gap sampler for Bernoulli(`rate`) thinning:
/// `P(G = g) = r(1−r)^{g−1}`, `g ≥ 1` (the paper's Eq. (13)).
///
/// The inverse-CDF identity `G = min{g : (1−r)^g ≤ U}` is evaluated
/// against a precomputed boundary table `(1−r)^g` by binary search, so
/// the common case costs ~10 comparisons instead of the `ln` + divide
/// the closed form `⌈ln U / ln(1−r)⌉` pays per kept sample. The table
/// aims at an `e⁻⁴` fallback tail (≈ 1.8% of draws), subject to a
/// 1024-entry cap: below `rate ≈ 0.004` the cap binds and the fallback
/// probability grows to `(1−r)^1024` (≈ 36% at r = 0.001, ≈ 90% at
/// r = 1e-4) — acceptable there because the per-kept cost is amortized
/// over ~1/r skipped elements anyway. Gaps beyond the table fall back
/// to the closed form, whose boundaries the table reproduces (both are
/// built from the same `ln(1−r)`).
///
/// Tables depend only on the rate and are shared process-wide through
/// [`GeometricGap::cached`] — building one costs up to 1024 `exp`
/// calls, far more than the handful of draws a single low-rate
/// `sample()` call makes.
///
/// Shared by [`SimpleRandomSampler`] and
/// [`crate::stream::StreamingSimpleRandom`], which keeps the offline
/// and streaming forms exactly equivalent.
#[derive(Clone, Debug)]
pub(crate) struct GeometricGap {
    rate_bits: u64,
    ln_q: f64,
    /// `boundaries[i] = (1−r)^(i+1)`, strictly decreasing.
    boundaries: Vec<f64>,
}

impl GeometricGap {
    /// Builds the gap table for `rate ∈ (0, 1)`.
    fn new(rate: f64) -> Self {
        debug_assert!(rate > 0.0 && rate < 1.0);
        let ln_q = (1.0 - rate).ln();
        let cap = ((4.0 / rate).ceil() as usize).clamp(16, 1024);
        let mut boundaries = Vec::with_capacity(cap);
        for g in 1..=cap {
            let b = (g as f64 * ln_q).exp();
            boundaries.push(b);
            if b == 0.0 {
                break;
            }
        }
        GeometricGap {
            rate_bits: rate.to_bits(),
            ln_q,
            boundaries,
        }
    }

    /// Fetches the shared table for `rate` from the process-wide LRU
    /// (keyed on the exact bits of the rate), building it on first use
    /// — every sampler instance at the same rate shares one table.
    pub(crate) fn cached(rate: f64) -> Arc<GeometricGap> {
        const CACHE_CAP: usize = 32;
        static CACHE: OnceLock<Mutex<Vec<Arc<GeometricGap>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let fetched: Result<Arc<GeometricGap>, std::convert::Infallible> = lru_fetch(
            cache,
            CACHE_CAP,
            |g| g.rate_bits == rate.to_bits(),
            || Ok(GeometricGap::new(rate)),
        );
        fetched.expect("infallible build")
    }

    /// The gap for one uniform draw `u ∈ (0, 1]`.
    #[inline]
    fn gap_for(&self, u: f64) -> usize {
        let b = &self.boundaries;
        if u >= b[b.len() - 1] {
            // Smallest g with (1−r)^g ≤ u; boundaries are descending so
            // the true-prefix of `x > u` ends exactly there.
            b.partition_point(|&x| x > u) + 1
        } else {
            (u.ln() / self.ln_q).ceil().max(1.0) as usize
        }
    }

    /// Draws one geometric gap ≥ 1.
    #[inline]
    pub(crate) fn draw<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        self.gap_for(u)
    }
}

/// Simple random sampling: each element selected independently with
/// probability `rate` (Bernoulli thinning; gaps are geometric, Eq. (13)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimpleRandomSampler {
    rate: f64,
}

impl SimpleRandomSampler {
    /// Creates a sampler with selection probability `rate ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for rates outside `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        SimpleRandomSampler { rate }
    }
}

impl Sampler for SimpleRandomSampler {
    fn name(&self) -> &'static str {
        "simple-random"
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }

    fn sample(&self, values: &[f64], seed: u64) -> Samples {
        let mut rng = rng_from_seed(derive_seed(seed, 0x51D0));
        if self.rate >= 1.0 {
            return Samples {
                indices: (0..values.len()).collect(),
                values: values.to_vec(),
            };
        }
        // Skip-ahead via geometric gaps (Vitter-style): O(expected
        // samples) RNG draws instead of one Bernoulli per element, with
        // selection statistics identical to per-element thinning (the
        // `geometric_skips_match_per_element_bernoulli` test pins this).
        // Reserve the expected count plus 4σ of binomial slack so the
        // hot loop almost never reallocates.
        let expect = values.len() as f64 * self.rate;
        let cap = (expect + 4.0 * (expect * (1.0 - self.rate)).sqrt() + 8.0) as usize;
        let mut indices = Vec::with_capacity(cap.min(values.len()));
        let mut sampled = Vec::with_capacity(cap.min(values.len()));
        let gaps = GeometricGap::cached(self.rate);
        let mut t: usize = 0;
        loop {
            let gap = gaps.draw(&mut rng);
            t = match t.checked_add(gap) {
                Some(v) => v,
                None => break,
            };
            if t > values.len() {
                break;
            }
            indices.push(t - 1);
            sampled.push(values[t - 1]);
        }
        Samples {
            indices,
            values: sampled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn systematic_takes_every_cth() {
        let s = SystematicSampler::new(4);
        let out = s.sample(&ramp(16), 0);
        assert_eq!(out.indices(), &[0, 4, 8, 12]);
        assert_eq!(out.values(), &[0.0, 4.0, 8.0, 12.0]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn systematic_seed_sets_offset() {
        let s = SystematicSampler::new(4);
        let out = s.sample(&ramp(16), 2);
        assert_eq!(out.indices(), &[2, 6, 10, 14]);
        // Offsets wrap modulo C: seed 6 == seed 2.
        assert_eq!(s.sample(&ramp(16), 6), out);
    }

    #[test]
    fn systematic_from_rate_rounds() {
        assert_eq!(SystematicSampler::from_rate(0.25).interval(), 4);
        assert_eq!(SystematicSampler::from_rate(1.0).interval(), 1);
        assert_eq!(SystematicSampler::from_rate(1e-3).interval(), 1000);
    }

    #[test]
    fn stratified_one_per_bucket() {
        let s = StratifiedSampler::new(5);
        let out = s.sample(&ramp(23), 7);
        // ⌈23/5⌉ buckets, one sample each.
        assert_eq!(out.len(), 5);
        for (b, &idx) in out.indices().iter().enumerate() {
            let lo = b * 5;
            let hi = ((b + 1) * 5).min(23);
            assert!(idx >= lo && idx < hi, "bucket {b} index {idx}");
        }
    }

    #[test]
    fn stratified_instances_differ() {
        let s = StratifiedSampler::new(8);
        let vals = ramp(512);
        assert_ne!(s.sample(&vals, 1), s.sample(&vals, 2));
        assert_eq!(s.sample(&vals, 1), s.sample(&vals, 1));
    }

    #[test]
    fn simple_random_rate_is_respected() {
        let s = SimpleRandomSampler::new(0.1);
        let vals = ramp(200_000);
        let out = s.sample(&vals, 3);
        let got = out.len() as f64 / vals.len() as f64;
        assert!((got - 0.1).abs() < 0.005, "rate={got}");
        // Strictly increasing indices, values match positions.
        for (i, &idx) in out.indices().iter().enumerate() {
            assert_eq!(out.values()[i], vals[idx]);
        }
    }

    #[test]
    fn simple_random_full_rate_takes_all() {
        let s = SimpleRandomSampler::new(1.0);
        let out = s.sample(&ramp(10), 0);
        assert_eq!(out.len(), 10);
    }

    /// Pins the geometric-skip implementation to the per-element
    /// Bernoulli definition it replaces: identical selection rate,
    /// identical gap distribution. (The two consume different RNG
    /// streams, so the comparison is distributional with tight
    /// large-sample tolerances, plus an exact chi-squared-style bound
    /// on the gap histogram.)
    #[test]
    fn geometric_skips_match_per_element_bernoulli() {
        let rate = 0.05;
        let n = 400_000usize;
        let vals = ramp(n);
        let s = SimpleRandomSampler::new(rate);
        let skip = s.sample(&vals, 17);

        // Reference: literal per-element Bernoulli thinning.
        let mut rng = rng_from_seed(derive_seed(29, 0x51D0));
        let bern: Vec<usize> = (0..n).filter(|_| rng.gen::<f64>() < rate).collect();

        // Selection rates agree with each other and the nominal rate
        // within 4σ of binomial noise.
        let sigma = (n as f64 * rate * (1.0 - rate)).sqrt();
        let tol = 4.0 * sigma;
        assert!(
            ((skip.len() as f64) - n as f64 * rate).abs() < tol,
            "skip count {} vs expected {}",
            skip.len(),
            n as f64 * rate
        );
        assert!(
            ((bern.len() as f64) - n as f64 * rate).abs() < tol,
            "bernoulli count {} vs expected {}",
            bern.len(),
            n as f64 * rate
        );

        // Gap histograms both match the geometric law P(gap = g) =
        // r(1−r)^{g−1} bin by bin (4σ multinomial noise per bin).
        let gaps = |idx: &[usize]| -> Vec<usize> { idx.windows(2).map(|w| w[1] - w[0]).collect() };
        for (name, g) in [("skip", gaps(skip.indices())), ("bern", gaps(&bern))] {
            let m = g.len() as f64;
            for k in 1usize..=5 {
                let want = rate * (1.0 - rate).powi(k as i32 - 1);
                let got = g.iter().filter(|&&x| x == k).count() as f64 / m;
                let noise = 4.0 * (want * (1.0 - want) / m).sqrt();
                assert!(
                    (got - want).abs() < noise,
                    "{name}: P(gap={k}) = {got:.5}, want {want:.5} ± {noise:.5}"
                );
            }
        }
    }

    #[test]
    fn gap_table_matches_closed_form() {
        // The table lookup and the ln closed form implement the same
        // inverse CDF; sweep u across the table range, the fallback
        // range, and the exact boundaries.
        for rate in [0.5, 0.2, 0.05, 0.005, 1e-4] {
            let g = GeometricGap::new(rate);
            let ln_q = (1.0 - rate).ln();
            let closed = |u: f64| (u.ln() / ln_q).ceil().max(1.0) as usize;
            let mut u = 1.0f64;
            while u > 1e-30 {
                assert_eq!(g.gap_for(u), closed(u), "rate={rate} u={u}");
                u *= 0.83;
            }
            // At the exact boundaries the table is the exact inverse
            // CDF ((1−r)^g ≤ u ⇒ gap ≤ g); the closed form can round
            // one ulp either way there, so only the table range is
            // pinned to the exact answer.
            for gap in 1..=g.boundaries.len().min(40) {
                let boundary = (gap as f64 * ln_q).exp();
                assert_eq!(g.gap_for(boundary), gap, "rate={rate} boundary g={gap}");
            }
        }
    }

    #[test]
    fn simple_random_gaps_are_geometric() {
        let s = SimpleRandomSampler::new(0.2);
        let out = s.sample(&ramp(500_000), 11);
        let gaps: Vec<f64> = out
            .indices()
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean_gap - 5.0).abs() < 0.1, "mean gap {mean_gap}");
        // P(gap = 1) should be ≈ r.
        let p1 = gaps.iter().filter(|&&g| g == 1.0).count() as f64 / gaps.len() as f64;
        assert!((p1 - 0.2).abs() < 0.01, "P(gap=1)={p1}");
    }

    #[test]
    fn all_samplers_handle_empty_and_tiny_input() {
        let samplers: Vec<Box<dyn Sampler>> = vec![
            Box::new(SystematicSampler::new(4)),
            Box::new(StratifiedSampler::new(4)),
            Box::new(SimpleRandomSampler::new(0.5)),
        ];
        for s in &samplers {
            let empty = s.sample(&[], 1);
            assert!(empty.is_empty(), "{} on empty", s.name());
            assert_eq!(empty.mean(), 0.0);
            let one = s.sample(&[42.0], 0);
            assert!(one.len() <= 1);
        }
    }

    #[test]
    fn sampled_mean_of_constant_process_is_exact() {
        let vals = vec![3.5; 10_000];
        let samplers: Vec<Box<dyn Sampler>> = vec![
            Box::new(SystematicSampler::new(10)),
            Box::new(StratifiedSampler::new(10)),
            Box::new(SimpleRandomSampler::new(0.1)),
        ];
        for s in &samplers {
            let out = s.sample(&vals, 9);
            assert!(!out.is_empty());
            assert!((out.mean() - 3.5).abs() < 1e-12, "{}", s.name());
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn samples_reject_unsorted_indices() {
        Samples::new(vec![3, 1], vec![0.0, 0.0]);
    }
}
