//! Analytical results of the paper: burst persistence (Eqs. 18-20), the
//! BSS bias parameter ξ (Eq. 30), the extra-sample budget L (Eq. 23), the
//! qualified-sample cost L′/N (Fig. 15), and the η-from-rate estimate
//! (Eq. 35).
//!
//! ## Normalization and the Eq. (30) erratum
//!
//! Throughout, the threshold is parameterized as `a_th = ε · X̄` (§V-B)
//! and the marginal is Pareto(ℓ, α), so the threshold-to-scale ratio is
//! `s = a_th/ℓ = ε·α/(α−1)`. Writing `g = L·s^{−2α}` (the expected number
//! of qualified samples per normal sample), the exact expectation of the
//! BSS estimator is
//!
//! ```text
//! E(Ŵ)/X_r = ξ(L, ε) = (1 + g·s) / (1 + g)
//! ```
//!
//! because a fraction `g/(1+g)` of the kept samples are qualified samples
//! with conditional mean `a_th·α/(α−1) = s·X_r`. The paper's printed
//! Eq. (30) drops the normal-sample term of the numerator (a typo — it
//! makes ξ dimensional); the corrected form above reproduces every
//! qualitative claim the paper derives from Fig. 10-11: two roots of
//! ξ = target, the lower root `ε₁ = (α−1)/α` independent of L (exactly:
//! ξ = 1 ⟺ s = 1 ⟺ a_th = ℓ), the upper root ε₂ increasing with L, and
//! infeasibility of ε₁. [`bias_parameter_paper`] keeps the literal
//! formula for comparison.

use sst_sigproc::numeric::find_roots;

/// Validates a Pareto shape in the paper's range `(1, 2)`.
fn check_alpha(alpha: f64) {
    assert!(
        alpha > 1.0 && alpha < 2.0,
        "shape alpha must be in (1,2) for the BSS analysis, got {alpha}"
    );
}

/// Threshold-to-scale ratio `s = a_th/ℓ = ε·α/(α−1)` for threshold
/// parameter ε (threshold as a multiple of the true mean).
///
/// # Panics
///
/// Panics unless `alpha ∈ (1,2)` and `epsilon > 0`.
pub fn threshold_scale_ratio(epsilon: f64, alpha: f64) -> f64 {
    check_alpha(alpha);
    assert!(epsilon > 0.0, "epsilon must be positive");
    epsilon * alpha / (alpha - 1.0)
}

/// Expected qualified samples per normal sample, `L′/N = L·s^{−2α}`
/// (Fig. 15's surface): each normal sample exceeds `a_th` with
/// probability `s^{−α}`, and each of the `L` extras then qualifies with
/// probability `s^{−α}` again.
pub fn qualified_cost(l: f64, epsilon: f64, alpha: f64) -> f64 {
    assert!(l >= 0.0, "L must be non-negative");
    let s = threshold_scale_ratio(epsilon, alpha);
    l * s.powf(-2.0 * alpha)
}

/// The corrected bias parameter `ξ(L, ε) = (1 + g·s)/(1 + g)` with
/// `g = L·s^{−2α}` — the expected ratio of the BSS sampled mean to the
/// true mean under a Pareto(ℓ, α) marginal.
pub fn bias_parameter(l: f64, epsilon: f64, alpha: f64) -> f64 {
    let s = threshold_scale_ratio(epsilon, alpha);
    let g = qualified_cost(l, epsilon, alpha);
    (1.0 + g * s) / (1.0 + g)
}

/// The paper's literal Eq. (30) (with ℓ normalized to 1), kept for
/// comparison with Figs. 10-11; see the module docs for why the corrected
/// [`bias_parameter`] is used everywhere else.
pub fn bias_parameter_paper(l: f64, epsilon: f64, alpha: f64) -> f64 {
    let s = threshold_scale_ratio(epsilon, alpha);
    let g = l * s.powf(-2.0 * alpha);
    g * s * alpha / (alpha - 1.0) / (1.0 + g)
}

/// Solves `ξ(L, ε) = xi` for L at fixed ε:
/// `L = (ξ−1)·s^{2α}/(s−ξ)`. Returns `None` when the target is
/// unreachable (`s ≤ ξ`, i.e. the threshold is too low for qualified
/// samples to lift the mean that far) or `xi < 1`.
pub fn l_for_bias(xi: f64, epsilon: f64, alpha: f64) -> Option<f64> {
    if xi < 1.0 {
        return None;
    }
    let s = threshold_scale_ratio(epsilon, alpha);
    if s <= xi {
        return None;
    }
    Some((xi - 1.0) * s.powf(2.0 * alpha) / (s - xi))
}

/// The paper's Eq. (23) for the extra-sample budget, simplified under the
/// same normalization: `L = η·s^{2α}/(s−1)` where `η = 1 − X_s/X_r` is
/// the relative underestimate to repair. Returns `None` for `s ≤ 1`
/// (threshold below the marginal minimum — infeasible, the paper's ε₁
/// branch).
pub fn l_paper_eq23(eta: f64, epsilon: f64, alpha: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&eta), "eta must be in [0,1), got {eta}");
    let s = threshold_scale_ratio(epsilon, alpha);
    if s <= 1.0 {
        return None;
    }
    Some(eta * s.powf(2.0 * alpha) / (s - 1.0))
}

/// All roots of `ξ(ε) = target` for fixed L over `ε ∈ (lo, hi)` — the
/// ε₁/ε₂ pair of Fig. 11 when `target` is attainable.
pub fn unbiased_epsilons(l: f64, alpha: f64, target: f64, lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "invalid epsilon range");
    find_roots(
        |eps| bias_parameter(l, eps, alpha) - target,
        lo,
        hi,
        400,
        1e-9,
    )
}

/// The peak of `ξ(ε)` at fixed L (golden-section on the unimodal bump
/// right of ε₁) — the largest bias this L can produce.
pub fn max_bias(l: f64, alpha: f64) -> (f64, f64) {
    let eps1 = (alpha - 1.0) / alpha;
    let (eps, neg) = sst_sigproc::numeric::golden_section_min(
        |e| -bias_parameter(l, e, alpha),
        eps1 * 1.001,
        eps1 * 100.0,
        1e-8,
    );
    (eps, -neg)
}

/// Eq. (35): the expected relative underestimate of the plain systematic
/// sampled mean at sampling rate `r` for an α-stable-tailed process,
/// `η ≈ Cs · r^{1/α − 1}`, clamped into `[0, 0.99]`.
///
/// The constant `Cs` absorbs `N_t^{1/α−1}/X_r`; the paper measures
/// `Cs ∈ (0.25, 0.35)` for its synthetic traces (α = 1.5) and
/// `(0.2, 0.3)` for the real ones (α = 1.66).
///
/// # Panics
///
/// Panics unless `0 < rate ≤ 1`, `alpha ∈ (1,2)`, `cs > 0`.
pub fn eta_from_rate(rate: f64, alpha: f64, cs: f64) -> f64 {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
    check_alpha(alpha);
    assert!(cs > 0.0, "Cs must be positive");
    (cs * rate.powf(1.0 / alpha - 1.0)).clamp(0.0, 0.99)
}

/// The sample-count form of Eq. (35): since `N = N_t·r`, the same
/// α-stable convergence gives `η ≈ c·N^{1/α − 1}` with a trace-length-
/// independent constant `c` (the paper's `Cs = c·N_t^{1/α−1}` bundles
/// the trace length in). This is the form the online tuner uses — it
/// needs no knowledge of `N_t` beyond the number of samples it is about
/// to take, and `c ≈ 1` is a serviceable default across the traces here.
///
/// # Panics
///
/// Panics unless `n_samples ≥ 1`, `alpha ∈ (1,2)`, `c > 0`.
pub fn eta_from_samples(n_samples: usize, alpha: f64, c: f64) -> f64 {
    assert!(n_samples >= 1, "need at least one sample");
    check_alpha(alpha);
    assert!(c > 0.0, "c must be positive");
    (c * (n_samples as f64).powf(1.0 / alpha - 1.0)).clamp(0.0, 0.99)
}

/// Eq. (20): burst persistence for a heavy-tailed 1-burst length,
/// `℘(τ) = (τ/(τ+1))^α → 1` — once over the threshold, the process stays
/// over it with probability approaching one.
pub fn persistence_heavy(tau: u64, alpha: f64) -> f64 {
    assert!(tau >= 1, "tau must be >= 1");
    assert!(alpha > 0.0, "alpha must be positive");
    (tau as f64 / (tau as f64 + 1.0)).powf(alpha)
}

/// Eq. (19): burst persistence for an exponentially-tailed burst length
/// is the constant `e^{−c₂}` — no learning from having seen a large
/// value. This is the contrast that justifies BSS only for heavy tails.
pub fn persistence_light(c2: f64) -> f64 {
    assert!(c2 > 0.0, "decay rate must be positive");
    (-c2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = 1.5;

    #[test]
    fn xi_equals_one_exactly_at_eps1() {
        // ε₁ = (α−1)/α regardless of L — the paper's Fig. 10 observation.
        let eps1 = (ALPHA - 1.0) / ALPHA;
        for l in [1.0, 5.0, 10.0, 50.0] {
            let xi = bias_parameter(l, eps1, ALPHA);
            assert!((xi - 1.0).abs() < 1e-12, "L={l} xi={xi}");
        }
    }

    #[test]
    fn xi_above_one_beyond_eps1_and_decaying_to_one() {
        let xi_mid = bias_parameter(5.0, 1.0, ALPHA);
        assert!(xi_mid > 1.0);
        let xi_far = bias_parameter(5.0, 50.0, ALPHA);
        assert!(xi_far > 1.0 && xi_far < xi_mid);
        assert!((bias_parameter(5.0, 1e4, ALPHA) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn two_roots_for_attainable_target() {
        // Fig. 11: a horizontal line below the peak cuts ξ(ε) twice.
        let l = 5.0;
        let (_, peak) = max_bias(l, ALPHA);
        let target = 1.0 + 0.5 * (peak - 1.0);
        let roots = unbiased_epsilons(l, ALPHA, target, 0.34, 20.0);
        assert_eq!(roots.len(), 2, "roots={roots:?}");
        assert!(roots[0] < roots[1]);
        // ε₂ increases with L (paper's observation).
        let (_, peak10) = max_bias(10.0, ALPHA);
        assert!(peak10 > peak);
        let roots10 = unbiased_epsilons(10.0, ALPHA, target, 0.34, 20.0);
        assert!(roots10[1] > roots[1]);
    }

    #[test]
    fn l_for_bias_round_trips() {
        let eps = 1.0;
        for xi in [1.1, 1.3, 1.5, 2.0] {
            let l = l_for_bias(xi, eps, ALPHA).expect("attainable: s=3 > xi");
            let back = bias_parameter(l, eps, ALPHA);
            assert!((back - xi).abs() < 1e-10, "xi={xi} back={back}");
        }
    }

    #[test]
    fn l_for_bias_matches_paper_settings() {
        // §VI synthetic: η ≈ 1/3 ⇒ ξ = 1.5, ε = 1, α = 1.5 ⇒ L ≈ 9-10,
        // the values the paper uses in Fig. 16.
        let l = l_for_bias(1.5, 1.0, 1.5).unwrap();
        assert!((l - 9.0).abs() < 1.0, "L={l}");
        // Real traces: α = 1.71, ε = 1, η ≈ 0.5 ⇒ ξ = 2 ⇒ L ≈ 30-50
        // (paper fixes L = 30 in Fig. 17a).
        let lr = l_for_bias(2.0, 1.0, 1.71).unwrap();
        assert!(lr > 20.0 && lr < 80.0, "L={lr}");
    }

    #[test]
    fn l_for_bias_unreachable_targets() {
        // s = 3 at ε=1, α=1.5: ξ ≥ 3 unreachable.
        assert!(l_for_bias(3.0, 1.0, ALPHA).is_none());
        assert!(l_for_bias(0.9, 1.0, ALPHA).is_none());
    }

    #[test]
    fn eq23_blows_up_near_eps1_and_grows_with_eta() {
        // Fig. 9's shape.
        let near = l_paper_eq23(0.3, 0.35, ALPHA).unwrap();
        let mid = l_paper_eq23(0.3, 1.0, ALPHA).unwrap();
        assert!(near > mid, "near-ε₁ L={near} should exceed mid L={mid}");
        let low_eta = l_paper_eq23(0.1, 1.0, ALPHA).unwrap();
        assert!(mid > low_eta);
        // Infeasible branch below ε₁.
        assert!(l_paper_eq23(0.3, 0.2, ALPHA).is_none());
        // L grows again for large ε (cost of rare qualified samples).
        let large = l_paper_eq23(0.3, 5.0, ALPHA).unwrap();
        assert!(large > mid);
    }

    #[test]
    fn qualified_cost_shape_matches_fig15() {
        // Avoid small ε: cost explodes toward ε₁ when L comes from Eq. 23.
        let cost = |eps: f64| {
            let l = l_paper_eq23(0.3, eps, ALPHA).unwrap();
            qualified_cost(l, eps, ALPHA)
        };
        assert!(cost(0.4) > cost(1.0));
        assert!(cost(0.36) > cost(0.4));
        // And for fixed ε the cost is linear in L.
        assert!(
            (qualified_cost(10.0, 1.0, ALPHA) / qualified_cost(5.0, 1.0, ALPHA) - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn eta_from_rate_decreases_with_rate_and_clamps() {
        // Unclamped region: strictly decreasing in r.
        let hi = eta_from_rate(1e-2, 1.5, 0.05);
        let mid = eta_from_rate(1e-1, 1.5, 0.05);
        let lo = eta_from_rate(1.0, 1.5, 0.05);
        assert!(hi > mid && mid > lo, "{hi} {mid} {lo}");
        // Tiny rates with the paper's Cs saturate at the clamp.
        assert_eq!(eta_from_rate(1e-5, 1.5, 0.3), 0.99);
        // Spot value: r=1e-1, Cs=0.3 ⇒ 0.3·10^{1/3} ≈ 0.646.
        let spot = eta_from_rate(1e-1, 1.5, 0.3);
        assert!((spot - 0.3 * 0.1f64.powf(1.0 / 1.5 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn eta_from_samples_shrinks_with_n() {
        let small = eta_from_samples(10, 1.5, 1.0);
        let mid = eta_from_samples(1_000, 1.5, 1.0);
        let big = eta_from_samples(1_000_000, 1.5, 1.0);
        assert!(small > mid && mid > big);
        // N = 1000, α = 1.5: η = 1000^{-1/3} = 0.1.
        assert!((mid - 0.1).abs() < 1e-12);
    }

    #[test]
    fn eta_forms_agree_through_trace_length() {
        // Cs = c·N_t^{1/α−1} makes the two parameterizations identical.
        let (alpha, c, n_t, r) = (1.5, 1.0, 1_000_000usize, 1e-3);
        let cs = c * (n_t as f64).powf(1.0 / alpha - 1.0);
        let n = (n_t as f64 * r) as usize;
        let via_rate = eta_from_rate(r, alpha, cs);
        let via_n = eta_from_samples(n, alpha, c);
        assert!((via_rate - via_n).abs() < 1e-9, "{via_rate} vs {via_n}");
    }

    #[test]
    fn persistence_heavy_tends_to_one() {
        let a = 1.3;
        assert!(persistence_heavy(1, a) < persistence_heavy(10, a));
        assert!(persistence_heavy(10, a) < persistence_heavy(1000, a));
        assert!(persistence_heavy(100_000, a) > 0.9999);
    }

    #[test]
    fn persistence_light_is_constant() {
        let p = persistence_light(0.7);
        assert!((p - (-0.7f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn paper_variant_is_exposed() {
        // Not asserting correctness (it's the erratum), just that it is
        // computable and positive in the working region.
        let v = bias_parameter_paper(5.0, 1.0, ALPHA);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (1,2)")]
    fn alpha_out_of_range_panics() {
        bias_parameter(5.0, 1.0, 2.5);
    }
}
