//! Biased Systematic Sampling (BSS) — the paper's contribution (§V-C).
//!
//! BSS is systematic sampling with interval `C`, except that whenever a
//! (normal) sample exceeds a threshold `a_th`, `L` extra samples are
//! taken evenly inside the current interval (spacing `C/L`) and those
//! exceeding `a_th` — the *qualified samples* — are kept. Because the
//! 1-burst periods of heavy-tailed traffic are themselves heavy-tailed
//! (§V-B, Eq. 20), a sample over the threshold predicts that the process
//! stays over it, so the extra samples efficiently capture exactly the
//! rare large values that plain sampling misses.
//!
//! Two parameterizations are provided:
//!
//! * [`ThresholdPolicy::FixedAbsolute`] / [`ThresholdPolicy::RelativeToMean`]
//!   — offline analysis with a known threshold (used to reproduce
//!   Figs. 12-13, where (L, ε) pairs are chosen on the ξ = 1 contour);
//! * [`ThresholdPolicy::Online`] — the paper's deployable scheme: `N_pre`
//!   pre-samples give a first mean estimate, `a_th = ε·Ȳᵢ` is updated
//!   from the running mean of *all* samples taken so far (frozen while
//!   extras are being taken inside an interval), and `L` is derived from
//!   the sampling rate via `η ≈ Cs·r^{1/α−1}` (Eq. 35) and
//!   `ξ = 1/(1−η)` (§V-C's `ξ = 1/η` is a typo for this — it follows
//!   from `η`'s definition `η = 1 − X_s/X_r`).

use crate::sampler::{Sampler, Samples};
use crate::theory::{eta_from_samples, l_for_bias};
use sst_stats::RunningStats;

/// How BSS obtains its threshold `a_th` (and, online, its `L`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdPolicy {
    /// A fixed absolute threshold (offline analysis).
    FixedAbsolute(f64),
    /// `a_th = ε × mean`, with the true mean supplied by the caller
    /// (offline analysis — mirrors the paper's parameter studies where
    /// η and X_r "are readily obtained since we have the entire traces").
    RelativeToMean {
        /// Threshold multiplier ε.
        epsilon: f64,
        /// The known process mean X̄.
        mean: f64,
    },
    /// The paper's online tuning scheme (§V-C "Tuning L and a_th without
    /// knowledge of η").
    Online(OnlineTuning),
}

/// Parameters of the online tuning scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineTuning {
    /// Threshold multiplier ε; the paper recommends `ε ∈ (1.0, 1.5)` and
    /// uses 1.0 in its evaluation.
    pub epsilon: f64,
    /// Number of pre-samples used for the initial mean estimate before
    /// biasing starts.
    pub n_pre: usize,
    /// The Eq. (35) constant in its sample-count form
    /// `η ≈ c_eta·N^{1/α−1}` (see [`crate::theory::eta_from_samples`];
    /// the paper's rate-form `Cs` equals `c_eta·N_t^{1/α−1}`).
    pub c_eta: f64,
    /// Tail shape α of the traffic marginal (for Eq. 35 / Eq. 30).
    pub alpha: f64,
}

impl Default for OnlineTuning {
    fn default() -> Self {
        OnlineTuning {
            epsilon: 1.0,
            n_pre: 32,
            c_eta: 1.0,
            alpha: 1.5,
        }
    }
}

/// Full output of one BSS instance.
#[derive(Clone, Debug, PartialEq)]
pub struct BssOutcome {
    /// All kept samples (normal + qualified) in index order.
    pub samples: Samples,
    /// Number of normal (systematic) samples taken.
    pub normal_count: usize,
    /// Number of qualified extra samples kept.
    pub qualified_count: usize,
    /// Number of extra samples inspected (kept or not) — the probing cost.
    pub extras_inspected: usize,
    /// The threshold in force at the end of the run.
    pub final_threshold: f64,
    /// The L actually used.
    pub l_used: usize,
}

impl BssOutcome {
    /// The BSS estimate: mean over all kept samples, Eq. (29).
    pub fn mean(&self) -> f64 {
        self.samples.mean()
    }

    /// The paper's §VI overhead metric: qualified / normal (`L′/N`).
    pub fn overhead(&self) -> f64 {
        if self.normal_count == 0 {
            0.0
        } else {
            self.qualified_count as f64 / self.normal_count as f64
        }
    }

    /// Total samples kept, `N + L′`.
    pub fn total_kept(&self) -> usize {
        self.normal_count + self.qualified_count
    }
}

/// The Biased Systematic Sampler.
///
/// # Examples
///
/// ```
/// use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
///
/// let sampler = BssSampler::new(100, ThresholdPolicy::Online(OnlineTuning::default()))
///     .expect("valid config");
/// let trace: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64).collect();
/// let out = sampler.sample_detailed(&trace, 1);
/// assert!(out.normal_count > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BssSampler {
    interval: usize,
    policy: ThresholdPolicy,
    /// Explicit L; `None` in online mode derives it from Eq. 35 + Eq. 30.
    l_extra: Option<usize>,
    /// Cap on the derived L (guards the η→1 blow-up at tiny rates).
    l_max: usize,
}

/// Error for invalid BSS configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BssConfigError {
    what: &'static str,
}

impl BssConfigError {
    pub(crate) fn new(what: &'static str) -> Self {
        BssConfigError { what }
    }
}

impl std::fmt::Display for BssConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid BSS configuration: {}", self.what)
    }
}

impl std::error::Error for BssConfigError {}

impl BssSampler {
    /// Creates a BSS sampler with interval `C` and the given threshold
    /// policy. `L` defaults to: derived online (online policy) or 10
    /// (offline policies); override with [`BssSampler::with_l`].
    ///
    /// # Errors
    ///
    /// Rejects `interval == 0`, non-positive thresholds/ε, online α
    /// outside `(1,2)`, or `n_pre == 0`.
    pub fn new(interval: usize, policy: ThresholdPolicy) -> Result<Self, BssConfigError> {
        if interval == 0 {
            return Err(BssConfigError {
                what: "interval must be >= 1",
            });
        }
        match policy {
            ThresholdPolicy::FixedAbsolute(a) => {
                if !(a.is_finite() && a > 0.0) {
                    return Err(BssConfigError {
                        what: "threshold must be positive",
                    });
                }
            }
            ThresholdPolicy::RelativeToMean { epsilon, mean } => {
                if !(epsilon > 0.0 && mean > 0.0) {
                    return Err(BssConfigError {
                        what: "epsilon and mean must be positive",
                    });
                }
            }
            ThresholdPolicy::Online(t) => {
                if t.epsilon.is_nan() || t.epsilon <= 0.0 {
                    return Err(BssConfigError {
                        what: "epsilon must be positive",
                    });
                }
                if t.n_pre == 0 {
                    return Err(BssConfigError {
                        what: "need at least one pre-sample",
                    });
                }
                if !(t.alpha > 1.0 && t.alpha < 2.0) {
                    return Err(BssConfigError {
                        what: "alpha must be in (1,2)",
                    });
                }
                if t.c_eta.is_nan() || t.c_eta <= 0.0 {
                    return Err(BssConfigError {
                        what: "c_eta must be positive",
                    });
                }
            }
        }
        let l_extra = match policy {
            ThresholdPolicy::Online(_) => None,
            _ => Some(10),
        };
        Ok(BssSampler {
            interval,
            policy,
            l_extra,
            l_max: 200,
        })
    }

    /// Fixes the number of extra samples per triggered interval.
    pub fn with_l(mut self, l: usize) -> Self {
        self.l_extra = Some(l);
        self
    }

    /// Caps the online-derived L (default 200).
    pub fn with_l_max(mut self, l_max: usize) -> Self {
        self.l_max = l_max.max(1);
        self
    }

    /// The systematic interval C.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// The L this sampler will use on a trace of `trace_len` points:
    /// explicit when set, otherwise derived from the planned sample
    /// count via `η ≈ c_eta·N^{1/α−1}` (Eq. 35), `ξ = 1/(1−η)`, and the
    /// inverse of the bias parameter (`L = (ξ−1)s^{2α}/(s−ξ)`).
    pub fn effective_l(&self, trace_len: usize) -> usize {
        if let Some(l) = self.l_extra {
            return l;
        }
        let ThresholdPolicy::Online(t) = self.policy else {
            return 10;
        };
        let n_samples = (trace_len / self.interval).max(1);
        let eta = eta_from_samples(n_samples, t.alpha, t.c_eta);
        let xi = 1.0 / (1.0 - eta);
        match l_for_bias(xi, t.epsilon, t.alpha) {
            // Rounds to zero when η is already negligible — no extras
            // needed, BSS degrades gracefully to plain systematic.
            Some(l) => (l.round() as usize).min(self.l_max),
            // Target bias unreachable at this ε: saturate (the paper's
            // Fig. 15 guidance — bounded cost beats an impossible target).
            None => self.l_max,
        }
    }

    /// Runs one BSS instance and returns the full outcome.
    pub fn sample_detailed(&self, values: &[f64], seed: u64) -> BssOutcome {
        let l = self.effective_l(values.len());
        let offset = (seed % self.interval as u64) as usize;
        let mut indices: Vec<usize> = Vec::new();
        let mut kept: Vec<f64> = Vec::new();
        let mut normal_count = 0usize;
        let mut qualified_count = 0usize;
        let mut extras_inspected = 0usize;

        // Online-mode state.
        let mut running = RunningStats::new();
        let (mut threshold, online): (f64, Option<OnlineTuning>) = match self.policy {
            ThresholdPolicy::FixedAbsolute(a) => (a, None),
            ThresholdPolicy::RelativeToMean { epsilon, mean } => (epsilon * mean, None),
            ThresholdPolicy::Online(t) => (f64::INFINITY, Some(t)),
        };

        let mut t = offset;
        while t < values.len() {
            let v = values[t];
            indices.push(t);
            kept.push(v);
            normal_count += 1;
            running.push(v);

            // Online: refresh a_th from the running mean once warmed up.
            // The threshold is then *frozen* for this interval's extras
            // ("whether or not to take extra samples in a sampling
            //  interval should be based on the same threshold").
            if let Some(tuning) = online {
                if running.count() as usize >= tuning.n_pre {
                    threshold = tuning.epsilon * running.mean();
                } else {
                    threshold = f64::INFINITY;
                }
            }

            if v > threshold && l > 0 {
                let end = (t + self.interval).min(values.len());
                // L extra positions evenly spaced strictly inside (t, t+C)
                // — spacing C/(L+1), so none collides with the next normal
                // sample. When C ≤ L several positions collapse under
                // integer division; the monotone guard keeps indices
                // strictly increasing and duplicate-free.
                let mut prev = t;
                for k in 1..=l {
                    let pos = t + k * self.interval / (l + 1).max(1);
                    if pos <= prev || pos >= end {
                        continue;
                    }
                    prev = pos;
                    extras_inspected += 1;
                    let w = values[pos];
                    if w > threshold {
                        indices.push(pos);
                        kept.push(w);
                        qualified_count += 1;
                        running.push(w);
                    }
                }
            }
            t += self.interval;
        }
        // Extras were appended inside their interval, so indices are
        // already sorted; assert the invariant in debug builds.
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        BssOutcome {
            samples: Samples::new(indices, kept),
            normal_count,
            qualified_count,
            extras_inspected,
            final_threshold: threshold,
            l_used: l,
        }
    }
}

/// Calibrates the Eq.-35 constant `c_eta` on a learning prefix, the way
/// the paper calibrates its `Cs` per trace ("from our experimental
/// study, we find …").
///
/// Runs `n_instances` systematic instances at the given interval over
/// `prefix`, measures the median relative underestimate against the
/// prefix's true mean, and inverts `η = c·N^{1/α−1}`. A monitor can do
/// this online by fully counting a short learning window.
///
/// The result is clamped to `[0.05, 3.0]`: zero would disable biasing
/// forever on a lucky prefix, and huge values are always estimation
/// noise.
///
/// # Panics
///
/// Panics if `prefix` is empty or its mean is non-positive, or
/// `interval == 0` or `n_instances == 0`.
pub fn calibrate_c_eta(prefix: &[f64], interval: usize, alpha: f64, n_instances: usize) -> f64 {
    assert!(!prefix.is_empty(), "empty calibration prefix");
    assert!(interval >= 1, "interval must be >= 1");
    assert!(n_instances >= 1, "need at least one calibration instance");
    let truth = prefix.iter().sum::<f64>() / prefix.len() as f64;
    assert!(truth > 0.0, "calibration needs a positive-mean prefix");
    let sampler = crate::sampler::SystematicSampler::new(interval);
    let mut etas: Vec<f64> = (0..n_instances)
        .map(|i| {
            let m = crate::sampler::Sampler::sample(
                &sampler,
                prefix,
                sst_stats::rng::derive_seed(0xCA11B, i as u64),
            )
            .mean();
            (1.0 - m / truth).max(0.0)
        })
        .collect();
    etas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let eta_med = etas[etas.len() / 2];
    let n_samples = (prefix.len() / interval).max(1) as f64;
    let c = eta_med * n_samples.powf(1.0 - 1.0 / alpha);
    c.clamp(0.05, 3.0)
}

/// Empirically tunes `L` on a learning prefix: runs online BSS with each
/// candidate `L` over several instances and returns the candidate whose
/// median estimate lands closest to the prefix's true mean.
///
/// This is the direct answer to the paper's future-work question of
/// optimal parameter setting: instead of trusting the pure-Pareto model
/// of Eq. (30) (which over-corrects when qualified samples are
/// burst-correlated, and under-corrects when the marginal is lighter
/// than modeled), measure the realized bias and pick `L` accordingly.
///
/// # Panics
///
/// Panics if `prefix` is empty or has non-positive mean, `interval == 0`,
/// `candidates` is empty, or `n_instances == 0`.
pub fn tune_l_on_prefix(
    prefix: &[f64],
    interval: usize,
    tuning: OnlineTuning,
    candidates: &[usize],
    n_instances: usize,
) -> usize {
    assert!(!prefix.is_empty(), "empty tuning prefix");
    assert!(!candidates.is_empty(), "need at least one L candidate");
    assert!(n_instances >= 1, "need at least one tuning instance");
    let truth = prefix.iter().sum::<f64>() / prefix.len() as f64;
    assert!(truth > 0.0, "tuning needs a positive-mean prefix");
    let mut best = (f64::INFINITY, candidates[0]);
    for &l in candidates {
        let sampler = BssSampler::new(interval, ThresholdPolicy::Online(tuning))
            .expect("tuning parameters were validated by the caller")
            .with_l(l);
        let mut means: Vec<f64> = (0..n_instances)
            .map(|i| {
                sampler
                    .sample_detailed(prefix, sst_stats::rng::derive_seed(0x70E, i as u64))
                    .mean()
            })
            .collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let err = (means[means.len() / 2] - truth).abs();
        if err < best.0 {
            best = (err, l);
        }
    }
    best.1
}

impl Sampler for BssSampler {
    fn name(&self) -> &'static str {
        "bss"
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.interval as f64
    }

    fn sample(&self, values: &[f64], seed: u64) -> Samples {
        self.sample_detailed(values, seed).samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that is 1.0 except for a long 100.0 burst.
    fn bursty(n: usize, burst_at: usize, burst_len: usize) -> Vec<f64> {
        let mut v = vec![1.0; n];
        for x in v.iter_mut().skip(burst_at).take(burst_len) {
            *x = 100.0;
        }
        v
    }

    #[test]
    fn config_validation() {
        assert!(BssSampler::new(0, ThresholdPolicy::FixedAbsolute(1.0)).is_err());
        assert!(BssSampler::new(10, ThresholdPolicy::FixedAbsolute(-1.0)).is_err());
        assert!(BssSampler::new(
            10,
            ThresholdPolicy::RelativeToMean {
                epsilon: 0.0,
                mean: 1.0
            }
        )
        .is_err());
        let bad_alpha = OnlineTuning {
            alpha: 2.5,
            ..OnlineTuning::default()
        };
        assert!(BssSampler::new(10, ThresholdPolicy::Online(bad_alpha)).is_err());
        assert!(BssSampler::new(10, ThresholdPolicy::FixedAbsolute(1.0)).is_ok());
    }

    #[test]
    fn no_burst_means_plain_systematic() {
        let vals = vec![1.0; 1000];
        let bss = BssSampler::new(10, ThresholdPolicy::FixedAbsolute(50.0)).unwrap();
        let out = bss.sample_detailed(&vals, 0);
        assert_eq!(out.qualified_count, 0);
        assert_eq!(out.normal_count, 100);
        assert_eq!(out.overhead(), 0.0);
        // Identical to the systematic sampler on the same seed.
        let sys = crate::sampler::SystematicSampler::new(10);
        assert_eq!(out.samples, crate::sampler::Sampler::sample(&sys, &vals, 0));
    }

    #[test]
    fn burst_triggers_qualified_samples() {
        let vals = bursty(1000, 300, 100);
        let bss = BssSampler::new(50, ThresholdPolicy::FixedAbsolute(50.0))
            .unwrap()
            .with_l(9);
        let out = bss.sample_detailed(&vals, 0);
        assert!(
            out.qualified_count > 0,
            "burst must produce qualified samples"
        );
        // All qualified samples exceed the threshold.
        let normal_idx: std::collections::HashSet<usize> = (0..1000).step_by(50).collect();
        for (i, &idx) in out.samples.indices().iter().enumerate() {
            if !normal_idx.contains(&idx) {
                assert!(out.samples.values()[i] > 50.0);
            }
        }
        // And the BSS mean is pulled toward the burst-inclusive mean.
        let sys_mean =
            crate::sampler::Sampler::sample(&crate::sampler::SystematicSampler::new(50), &vals, 0)
                .mean();
        assert!(out.mean() >= sys_mean);
    }

    #[test]
    fn extras_are_evenly_spaced_within_interval() {
        let vals = bursty(200, 0, 200); // everything above threshold
        let bss = BssSampler::new(100, ThresholdPolicy::FixedAbsolute(50.0))
            .unwrap()
            .with_l(4);
        let out = bss.sample_detailed(&vals, 0);
        // Normal at 0 and 100; extras at 20,40,60,80 and 120,140,160,180.
        assert_eq!(
            out.samples.indices(),
            &[0, 20, 40, 60, 80, 100, 120, 140, 160, 180]
        );
        assert_eq!(out.qualified_count, 8);
        assert_eq!(out.l_used, 4);
    }

    #[test]
    fn online_mode_warms_up_before_biasing() {
        // Burst inside the pre-sample window must not trigger extras.
        let vals = bursty(10_000, 0, 200);
        let tuning = OnlineTuning {
            n_pre: 50,
            epsilon: 1.0,
            ..OnlineTuning::default()
        };
        let bss = BssSampler::new(100, ThresholdPolicy::Online(tuning))
            .unwrap()
            .with_l(5);
        let out = bss.sample_detailed(&vals, 0);
        // The first 2 normal samples land in the burst but count < n_pre:
        // no extras taken there.
        let extras_in_burst = out
            .samples
            .indices()
            .iter()
            .filter(|&&i| i < 200 && i % 100 != 0)
            .count();
        assert_eq!(extras_in_burst, 0);
    }

    #[test]
    fn online_threshold_tracks_running_mean() {
        let vals = bursty(100_000, 60_000, 5_000);
        let tuning = OnlineTuning {
            n_pre: 10,
            epsilon: 1.0,
            ..OnlineTuning::default()
        };
        let bss = BssSampler::new(100, ThresholdPolicy::Online(tuning))
            .unwrap()
            .with_l(10);
        let out = bss.sample_detailed(&vals, 0);
        assert!(out.qualified_count > 0);
        assert!(out.final_threshold.is_finite());
        // Above the floor value.
        assert!(out.final_threshold > 1.0);
        // BSS is *biased upward by construction*: on this block-aligned
        // burst (where systematic sampling is already exact) the
        // qualified samples must pull the estimate above systematic's.
        let sys_mean =
            crate::sampler::Sampler::sample(&crate::sampler::SystematicSampler::new(100), &vals, 0)
                .mean();
        assert!(out.mean() > sys_mean);
        // All qualified samples exceed the final threshold's order of
        // magnitude (they were above the then-current threshold).
        assert!(
            out.samples
                .values()
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)
                >= 100.0
        );
    }

    #[test]
    fn effective_l_derivation_and_cap() {
        // Synthetic calibration: N = 1000 samples ⇒ η = 0.1 ⇒ ξ ≈ 1.11
        // ⇒ L = (ξ−1)·27/(3−ξ) ≈ 1.6 → small L.
        let tuning = OnlineTuning {
            epsilon: 1.0,
            alpha: 1.5,
            c_eta: 1.0,
            n_pre: 32,
        };
        let bss = BssSampler::new(100, ThresholdPolicy::Online(tuning)).unwrap();
        let l_mid = bss.effective_l(100_000);
        assert!((1..=10).contains(&l_mid), "L={l_mid}");
        // Very large sample counts: η ≈ 0 ⇒ L = 0 (no biasing needed).
        assert_eq!(bss.effective_l(100_000_000), 0);
        // Fewer samples ⇒ larger η ⇒ larger L.
        let l_small = bss.effective_l(2_000);
        assert!(l_small > l_mid, "L(small)={l_small} L(mid)={l_mid}");
        // At a handful of samples η→clamp, ξ huge → capped at l_max.
        let bss_low = BssSampler::new(1_000_000, ThresholdPolicy::Online(tuning))
            .unwrap()
            .with_l_max(40);
        assert_eq!(bss_low.effective_l(1_000_000), 40);
    }

    #[test]
    fn l_zero_disables_extras() {
        let vals = bursty(1000, 0, 1000);
        let bss = BssSampler::new(10, ThresholdPolicy::FixedAbsolute(50.0))
            .unwrap()
            .with_l(0);
        let out = bss.sample_detailed(&vals, 0);
        assert_eq!(out.qualified_count, 0);
        assert_eq!(out.extras_inspected, 0);
    }

    #[test]
    fn threshold_above_max_never_triggers() {
        let vals = bursty(1000, 100, 100);
        let bss = BssSampler::new(10, ThresholdPolicy::FixedAbsolute(1e9)).unwrap();
        let out = bss.sample_detailed(&vals, 3);
        assert_eq!(out.qualified_count, 0);
    }

    #[test]
    fn empty_input_is_benign() {
        let bss = BssSampler::new(10, ThresholdPolicy::FixedAbsolute(1.0)).unwrap();
        let out = bss.sample_detailed(&[], 0);
        assert_eq!(out.total_kept(), 0);
        assert_eq!(out.mean(), 0.0);
    }

    #[test]
    fn sampler_trait_view_matches_detailed() {
        let vals = bursty(5000, 1000, 500);
        let bss = BssSampler::new(100, ThresholdPolicy::FixedAbsolute(50.0)).unwrap();
        let a = Sampler::sample(&bss, &vals, 7);
        let b = bss.sample_detailed(&vals, 7).samples;
        assert_eq!(a, b);
        assert_eq!(Sampler::name(&bss), "bss");
    }

    #[test]
    fn calibration_reflects_prefix_difficulty() {
        // A constant prefix has zero underestimate: c clamps to the floor.
        let flat = vec![5.0; 10_000];
        assert_eq!(calibrate_c_eta(&flat, 100, 1.5, 5), 0.05);
        // A bursty prefix where systematic misses mass calibrates higher.
        let bursty: Vec<f64> = (0..10_000)
            .map(|i| if (i % 777) < 3 { 500.0 } else { 1.0 })
            .collect();
        let c = calibrate_c_eta(&bursty, 100, 1.5, 7);
        assert!(c > 0.05, "c={c}");
        assert!(c <= 3.0);
    }

    #[test]
    #[should_panic(expected = "empty calibration prefix")]
    fn calibration_rejects_empty() {
        calibrate_c_eta(&[], 10, 1.5, 3);
    }

    #[test]
    fn empirical_l_tuning_picks_sane_candidates() {
        // On a flat trace any L > 0 overshoots nothing (no triggers), so
        // ties resolve to the first candidate.
        let flat = vec![5.0; 20_000];
        let l = tune_l_on_prefix(&flat, 100, OnlineTuning::default(), &[0, 2, 8], 5);
        assert_eq!(l, 0);
        // On a trace systematic sampling already nails (block-aligned
        // bursts), extra biasing only hurts: tuning must pick L = 0.
        let aligned: Vec<f64> = (0..20_000)
            .map(|i| if (i / 100) % 10 == 0 { 50.0 } else { 1.0 })
            .collect();
        let l = tune_l_on_prefix(&aligned, 100, OnlineTuning::default(), &[0, 4, 16], 7);
        assert_eq!(l, 0, "aligned bursts need no biasing");
    }

    #[test]
    fn interval_smaller_than_l_is_safe() {
        // C=3 with L=10: extras collapse onto few positions, no dupes.
        let vals = bursty(30, 0, 30);
        let bss = BssSampler::new(3, ThresholdPolicy::FixedAbsolute(50.0))
            .unwrap()
            .with_l(10);
        let out = bss.sample_detailed(&vals, 0);
        let mut idx = out.samples.indices().to_vec();
        idx.dedup();
        assert_eq!(idx.len(), out.samples.indices().len());
    }
}
