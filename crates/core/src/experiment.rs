//! Multi-instance sampling experiments — the machinery behind every
//! measured figure: run a sampler many times on the same trace (different
//! instance seeds), collect per-instance means and sample counts, and
//! reduce them to the paper's metrics.

use crate::bss::BssSampler;
use crate::metrics::{average_variance, efficiency, eta};
use crate::sampler::Sampler;
use sst_stats::rng::derive_seed;

/// Per-instance measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceResult {
    /// The sampled mean of this instance.
    pub mean: f64,
    /// Samples kept in this instance.
    pub n_samples: usize,
    /// Qualified (extra) samples, for BSS; 0 otherwise.
    pub n_qualified: usize,
}

/// Aggregated result of a multi-instance experiment at one rate.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Sampler name.
    pub sampler: &'static str,
    /// Nominal sampling rate.
    pub rate: f64,
    /// The true mean of the underlying trace.
    pub true_mean: f64,
    /// Per-instance results.
    pub instances: Vec<InstanceResult>,
}

impl ExperimentResult {
    /// Mean of the per-instance sampled means.
    pub fn mean_of_means(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().map(|i| i.mean).sum::<f64>() / self.instances.len() as f64
    }

    /// Median of the per-instance sampled means — the "typical single
    /// experiment" the paper's mean-vs-rate figures show (with α-stable
    /// sampling noise the median is the robust centre).
    pub fn median_mean(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        let mut ms: Vec<f64> = self.instances.iter().map(|i| i.mean).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        ms[ms.len() / 2]
    }

    /// The average variance `E(V)` of §IV against the true mean.
    pub fn average_variance(&self) -> f64 {
        let means: Vec<f64> = self.instances.iter().map(|i| i.mean).collect();
        average_variance(&means, self.true_mean)
    }

    /// η of the median instance (Eq. 21).
    pub fn eta(&self) -> f64 {
        eta(self.true_mean, self.median_mean())
    }

    /// Efficiency `e` of the median instance (§VI).
    pub fn efficiency(&self) -> f64 {
        let n = self.median_total_samples().max(2);
        efficiency(self.eta(), n)
    }

    /// Median total samples per instance.
    pub fn median_total_samples(&self) -> usize {
        if self.instances.is_empty() {
            return 0;
        }
        let mut ns: Vec<usize> = self.instances.iter().map(|i| i.n_samples).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }

    /// Mean BSS overhead (qualified/normal) across instances.
    pub fn mean_overhead(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances
            .iter()
            .map(|i| {
                let normal = i.n_samples - i.n_qualified;
                if normal == 0 {
                    0.0
                } else {
                    i.n_qualified as f64 / normal as f64
                }
            })
            .sum::<f64>()
            / self.instances.len() as f64
    }
}

/// Shared precondition check for every experiment entry point
/// (sequential and parallel): non-empty trace, at least one instance,
/// positive true mean (the paper's η and E(V) metrics need a positive
/// reference). Returns the true mean.
pub(crate) fn validate_experiment_inputs(values: &[f64], n_instances: usize) -> f64 {
    assert!(
        !values.is_empty(),
        "cannot run an experiment on an empty trace"
    );
    assert!(n_instances >= 1, "need at least one instance");
    let true_mean = values.iter().sum::<f64>() / values.len() as f64;
    assert!(
        true_mean > 0.0,
        "experiment metrics require a positive-mean trace"
    );
    true_mean
}

/// Runs `n_instances` instances of `sampler` on `values`.
///
/// Instance seeds are derived deterministically from `base_seed`, so the
/// whole experiment is reproducible.
///
/// # Panics
///
/// Panics if `values` is empty or has non-positive mean (the paper's η
/// and E(V) metrics need a positive reference mean), or `n_instances == 0`.
pub fn run_experiment(
    values: &[f64],
    sampler: &dyn Sampler,
    n_instances: usize,
    base_seed: u64,
) -> ExperimentResult {
    let true_mean = validate_experiment_inputs(values, n_instances);
    let instances = (0..n_instances)
        .map(|i| {
            let s = sampler.sample(values, derive_seed(base_seed, i as u64));
            InstanceResult {
                mean: s.mean(),
                n_samples: s.len(),
                n_qualified: 0,
            }
        })
        .collect();
    ExperimentResult {
        sampler: sampler.name(),
        rate: sampler.nominal_rate(),
        true_mean,
        instances,
    }
}

/// BSS variant of [`run_experiment`], keeping the qualified-sample counts
/// so overhead can be reported.
///
/// # Panics
///
/// Same conditions as [`run_experiment`].
pub fn run_bss_experiment(
    values: &[f64],
    sampler: &BssSampler,
    n_instances: usize,
    base_seed: u64,
) -> ExperimentResult {
    let true_mean = validate_experiment_inputs(values, n_instances);
    let instances = (0..n_instances)
        .map(|i| {
            let out = sampler.sample_detailed(values, derive_seed(base_seed, i as u64));
            InstanceResult {
                mean: out.mean(),
                n_samples: out.total_kept(),
                n_qualified: out.qualified_count,
            }
        })
        .collect();
    ExperimentResult {
        sampler: "bss",
        rate: sampler.nominal_rate(),
        true_mean,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::{OnlineTuning, ThresholdPolicy};
    use crate::sampler::{SimpleRandomSampler, StratifiedSampler, SystematicSampler};

    fn lumpy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / 97) % 11 == 0 { 40.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn experiment_is_deterministic() {
        let vals = lumpy(10_000);
        let s = StratifiedSampler::new(50);
        let a = run_experiment(&vals, &s, 8, 7);
        let b = run_experiment(&vals, &s, 8, 7);
        assert_eq!(a.instances, b.instances);
        let c = run_experiment(&vals, &s, 8, 8);
        assert_ne!(a.instances, c.instances);
    }

    #[test]
    fn systematic_has_smallest_average_variance_on_lrd_like_input() {
        // The Theorem-2 ordering on a positively-correlated process.
        let vals = lumpy(100_000);
        let n = 64;
        let sys = run_experiment(&vals, &SystematicSampler::new(100), n, 1);
        let strat = run_experiment(&vals, &StratifiedSampler::new(100), n, 1);
        let rand = run_experiment(&vals, &SimpleRandomSampler::new(0.01), n, 1);
        assert!(
            sys.average_variance() <= strat.average_variance() * 1.5,
            "sys={} strat={}",
            sys.average_variance(),
            strat.average_variance()
        );
        assert!(
            sys.average_variance() <= rand.average_variance() * 1.5,
            "sys={} rand={}",
            sys.average_variance(),
            rand.average_variance()
        );
    }

    #[test]
    fn metrics_are_consistent() {
        let vals = lumpy(50_000);
        let r = run_experiment(&vals, &SystematicSampler::new(100), 16, 3);
        assert!(r.true_mean > 1.0);
        assert!(r.median_total_samples() >= 499);
        assert!(r.eta() >= 0.0 && r.eta() < 1.0);
        assert!(r.efficiency() > 0.0);
        assert_eq!(r.sampler, "systematic");
        assert!((r.rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bss_experiment_reports_overhead() {
        let vals = lumpy(50_000);
        let bss = BssSampler::new(
            100,
            ThresholdPolicy::Online(OnlineTuning {
                n_pre: 16,
                ..OnlineTuning::default()
            }),
        )
        .unwrap()
        .with_l(10);
        let r = run_bss_experiment(&vals, &bss, 8, 5);
        assert_eq!(r.sampler, "bss");
        assert!(r.mean_overhead() >= 0.0);
        // Qualified samples counted inside totals.
        for inst in &r.instances {
            assert!(inst.n_samples >= inst.n_qualified);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        run_experiment(&[], &SystematicSampler::new(10), 4, 0);
    }
}
