//! Adaptive random sampling (Choi, Park & Zhang, SIGMETRICS 2002) — the
//! related-work baseline that *adjusts the sampling rate* instead of
//! biasing the selection (§I: "adjusting the sampling density upon
//! detection of traffic changes in order to meet certain constraints on
//! the estimation accuracy").
//!
//! The trace is processed in blocks. Within block `k` the sampler draws
//! Bernoulli samples at rate `r_k`; at the block boundary it re-solves
//! the sample-size formula
//!
//! ```text
//! n_k = ( z_{1−δ/2} · S / (ε · X̄) )²
//! ```
//!
//! from the previous block's sampled mean `X̄` and standard deviation
//! `S`, so that the per-block mean estimate stays within relative error
//! `ε` with confidence `1 − δ` *if the block were i.i.d.* On LRD traffic
//! that premise fails in exactly the way the paper analyzes, which makes
//! this sampler the natural foil for BSS: it spends extra samples where
//! the variance is high but remains unbiased, so it still underestimates
//! heavy-tailed means (see the `adaptive` ablation experiment).

use crate::sampler::{Sampler, Samples};
use rand::Rng;
use sst_stats::rng::{derive_seed, rng_from_seed};

/// Configuration for [`AdaptiveRandomSampler`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Block length in trace points over which the rate is held fixed.
    pub block_len: usize,
    /// Target relative error ε of the per-block mean estimate.
    pub rel_error: f64,
    /// Normal quantile `z_{1−δ/2}` for the confidence level (1.96 ≈ 95%).
    pub z: f64,
    /// Initial sampling rate used for the first block.
    pub initial_rate: f64,
    /// Rate floor (the sampler never goes fully blind).
    pub min_rate: f64,
    /// Rate ceiling (resource cap; 1.0 = may inspect everything).
    pub max_rate: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            block_len: 1 << 12,
            rel_error: 0.1,
            z: 1.96,
            initial_rate: 0.01,
            min_rate: 1e-5,
            max_rate: 1.0,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), InvalidAdaptiveConfig> {
        let bad = |what: &'static str| Err(InvalidAdaptiveConfig { what });
        if self.block_len == 0 {
            return bad("block length must be >= 1");
        }
        if !(self.rel_error > 0.0 && self.rel_error.is_finite()) {
            return bad("relative error must be positive");
        }
        if !(self.z > 0.0 && self.z.is_finite()) {
            return bad("confidence quantile must be positive");
        }
        for (r, name) in [
            (self.initial_rate, "initial rate"),
            (self.min_rate, "minimum rate"),
            (self.max_rate, "maximum rate"),
        ] {
            if !(r > 0.0 && r <= 1.0) {
                return Err(InvalidAdaptiveConfig {
                    what: match name {
                        "initial rate" => "initial rate must be in (0,1]",
                        "minimum rate" => "minimum rate must be in (0,1]",
                        _ => "maximum rate must be in (0,1]",
                    },
                });
            }
        }
        if self.min_rate > self.max_rate {
            return bad("minimum rate must not exceed maximum rate");
        }
        Ok(())
    }
}

/// Error for invalid [`AdaptiveConfig`] values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidAdaptiveConfig {
    what: &'static str,
}

impl std::fmt::Display for InvalidAdaptiveConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.what)
    }
}

impl std::error::Error for InvalidAdaptiveConfig {}

/// The Choi-Park-Zhang adaptive random sampler.
///
/// # Examples
///
/// ```
/// use sst_core::adaptive::{AdaptiveConfig, AdaptiveRandomSampler};
/// use sst_core::Sampler;
///
/// let sampler = AdaptiveRandomSampler::new(AdaptiveConfig::default()).expect("valid");
/// let trace: Vec<f64> = (0..20_000).map(|i| 1.0 + (i % 7) as f64).collect();
/// let out = sampler.sample(&trace, 3);
/// assert!(!out.is_empty());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveRandomSampler {
    config: AdaptiveConfig,
}

impl AdaptiveRandomSampler {
    /// Creates the sampler.
    ///
    /// # Errors
    ///
    /// [`InvalidAdaptiveConfig`] when a field is out of range (zero
    /// block, non-positive ε or z, rates outside (0,1], min > max).
    pub fn new(config: AdaptiveConfig) -> Result<Self, InvalidAdaptiveConfig> {
        config.validate()?;
        Ok(AdaptiveRandomSampler { config })
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Samples and also reports the per-block rate trajectory.
    pub fn sample_detailed(&self, values: &[f64], seed: u64) -> AdaptiveOutcome {
        let cfg = &self.config;
        let mut rng = rng_from_seed(derive_seed(seed, 0xADA7));
        let mut indices = Vec::new();
        let mut sampled = Vec::new();
        let mut rates = Vec::new();
        let mut rate = cfg.initial_rate.clamp(cfg.min_rate, cfg.max_rate);

        let mut start = 0usize;
        while start < values.len() {
            let end = (start + cfg.block_len).min(values.len());
            rates.push(rate);
            // Bernoulli pass over the block at the current rate.
            let block_first = sampled.len();
            for (i, &v) in values[start..end].iter().enumerate() {
                if rng.gen::<f64>() < rate {
                    indices.push(start + i);
                    sampled.push(v);
                }
            }
            // Re-solve the sample-size formula. Prefer this block's
            // sample; with too few points fall back to everything
            // collected so far (resetting to the initial rate instead
            // would oscillate: tiny rate → starved block → reset → …).
            let block = &sampled[block_first..];
            let basis: &[f64] = if block.len() >= 8 { block } else { &sampled };
            if basis.len() >= 2 {
                let n = basis.len() as f64;
                let mean = basis.iter().sum::<f64>() / n;
                let var = basis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
                if mean.abs() > 0.0 && var > 0.0 {
                    let needed = (cfg.z * var.sqrt() / (cfg.rel_error * mean)).powi(2);
                    // Keep at least a handful of samples per block so the
                    // next re-estimate has data to work with.
                    let floor = 8.0 / cfg.block_len as f64;
                    rate = (needed / cfg.block_len as f64)
                        .max(floor)
                        .clamp(cfg.min_rate, cfg.max_rate);
                }
                // Zero variance: the data looks deterministic; keep the
                // current rate (no evidence to move either way).
            }
            start = end;
        }

        AdaptiveOutcome {
            samples: Samples::new(indices, sampled),
            block_rates: rates,
        }
    }
}

impl Sampler for AdaptiveRandomSampler {
    fn name(&self) -> &'static str {
        "adaptive-random"
    }

    fn nominal_rate(&self) -> f64 {
        self.config.initial_rate
    }

    fn sample(&self, values: &[f64], seed: u64) -> Samples {
        self.sample_detailed(values, seed).samples
    }
}

/// Sampling output plus the rate trajectory across blocks.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// The selected indices and values.
    pub samples: Samples,
    /// The rate used in each block, in block order.
    pub block_rates: Vec<f64>,
}

impl AdaptiveOutcome {
    /// Mean sampling rate actually used, weighted equally per block.
    pub fn mean_rate(&self) -> f64 {
        if self.block_rates.is_empty() {
            0.0
        } else {
            self.block_rates.iter().sum::<f64>() / self.block_rates.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(block: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            block_len: block,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = AdaptiveRandomSampler::new(config(512)).unwrap();
        let vals: Vec<f64> = (0..10_000).map(|i| (i % 13) as f64 + 1.0).collect();
        assert_eq!(s.sample(&vals, 5), s.sample(&vals, 5));
        assert_ne!(s.sample(&vals, 5), s.sample(&vals, 6));
    }

    #[test]
    fn rate_rises_in_high_variance_regions() {
        // First half calm (CV ≈ 0), second half violent. The block rates
        // in the second half must exceed those in the first.
        let mut vals = vec![10.0; 1 << 15];
        for (i, v) in vals.iter_mut().enumerate().skip(1 << 14) {
            *v = if i % 50 == 0 { 1000.0 } else { 1.0 };
        }
        let s = AdaptiveRandomSampler::new(AdaptiveConfig {
            block_len: 1 << 11,
            initial_rate: 0.05,
            ..AdaptiveConfig::default()
        })
        .unwrap();
        let out = s.sample_detailed(&vals, 7);
        let half = out.block_rates.len() / 2;
        let calm: f64 = out.block_rates[1..half].iter().sum::<f64>() / (half - 1) as f64;
        // Skip the first turbulent block: its rate was set by the last calm block.
        let wild: f64 = out.block_rates[half + 1..].iter().sum::<f64>() / (half - 1) as f64;
        assert!(
            wild > 5.0 * calm,
            "rate should surge with variance: calm {calm:.4} wild {wild:.4}"
        );
    }

    #[test]
    fn rates_respect_bounds() {
        let cfg = AdaptiveConfig {
            block_len: 256,
            min_rate: 0.01,
            max_rate: 0.2,
            initial_rate: 0.05,
            ..AdaptiveConfig::default()
        };
        let s = AdaptiveRandomSampler::new(cfg).unwrap();
        let vals: Vec<f64> = (0..50_000)
            .map(|i| if i % 97 == 0 { 1e6 } else { 1e-3 })
            .collect();
        let out = s.sample_detailed(&vals, 3);
        for &r in &out.block_rates {
            assert!((0.01..=0.2).contains(&r), "rate {r} escaped bounds");
        }
    }

    #[test]
    fn constant_trace_keeps_rate_stable() {
        let s = AdaptiveRandomSampler::new(config(1024)).unwrap();
        let out = s.sample_detailed(&vec![5.0; 1 << 14], 1);
        for &r in &out.block_rates {
            assert!(
                (r - 0.01).abs() < 1e-12,
                "rate drifted to {r} on constant input"
            );
        }
    }

    #[test]
    fn calm_traffic_needs_fewer_samples_than_fixed_rate_for_same_error() {
        // On low-CV traffic the formula shrinks the rate below the
        // initial one: adaptive achieves the target cheaply.
        let vals: Vec<f64> = (0..1 << 15).map(|i| 100.0 + ((i % 10) as f64)).collect();
        let s = AdaptiveRandomSampler::new(AdaptiveConfig {
            block_len: 1 << 11,
            initial_rate: 0.5,
            ..AdaptiveConfig::default()
        })
        .unwrap();
        let out = s.sample_detailed(&vals, 2);
        assert!(
            out.mean_rate() < 0.1,
            "CV≈0.03 traffic should need a tiny rate, got {}",
            out.mean_rate()
        );
        // And the mean is still accurate.
        let truth = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((out.samples.mean() - truth).abs() / truth < 0.02);
    }

    #[test]
    fn empty_and_tiny_inputs_are_benign() {
        let s = AdaptiveRandomSampler::new(config(64)).unwrap();
        assert!(s.sample(&[], 0).is_empty());
        let one = s.sample(&[42.0], 0);
        assert!(one.len() <= 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(AdaptiveRandomSampler::new(AdaptiveConfig {
            block_len: 0,
            ..AdaptiveConfig::default()
        })
        .is_err());
        assert!(AdaptiveRandomSampler::new(AdaptiveConfig {
            rel_error: 0.0,
            ..AdaptiveConfig::default()
        })
        .is_err());
        assert!(AdaptiveRandomSampler::new(AdaptiveConfig {
            min_rate: 0.5,
            max_rate: 0.1,
            ..AdaptiveConfig::default()
        })
        .is_err());
        assert!(AdaptiveRandomSampler::new(AdaptiveConfig {
            initial_rate: 0.0,
            ..AdaptiveConfig::default()
        })
        .is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn samples_are_valid_subsets(
                seed in 0u64..50,
                block in 32usize..512,
                n in 100usize..4000,
            ) {
                let vals: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
                let s = AdaptiveRandomSampler::new(AdaptiveConfig {
                    block_len: block,
                    ..AdaptiveConfig::default()
                }).unwrap();
                let out = s.sample_detailed(&vals, seed);
                // Indices strictly increasing and in range, values match.
                let idx = out.samples.indices();
                for w in idx.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                for (k, &i) in idx.iter().enumerate() {
                    prop_assert!(i < n);
                    prop_assert_eq!(out.samples.values()[k], vals[i]);
                }
                prop_assert_eq!(out.block_rates.len(), n.div_ceil(block));
            }
        }
    }
}
