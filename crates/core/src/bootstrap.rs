//! Moving-block bootstrap confidence intervals for sampled means.
//!
//! The classical i.i.d. bootstrap understates uncertainty on
//! long-range-dependent data: resampling single points destroys the
//! correlation structure that makes LRD sample means so slow to
//! converge (the very effect the paper quantifies). The moving-block
//! bootstrap (Künsch 1989) resamples contiguous blocks instead,
//! preserving within-block dependence; with blocks of length `b`, the
//! CI widens toward the truth as `b` grows past the correlation scale.
//!
//! This gives monitoring applications an honest error bar to attach to
//! a sampled mean — the piece the paper's efficiency metric `e`
//! implicitly assumes but never constructs.

use rand::Rng;
use sst_stats::rng::{derive_seed, rng_from_seed};

/// A bootstrap confidence interval for the mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (the plain mean of the input).
    pub mean: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub coverage: f64,
    /// Block length used.
    pub block_len: usize,
}

impl BootstrapCi {
    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Moving-block bootstrap CI for the mean of `values`.
///
/// * `block_len` — resampled block length (pick ≳ the correlation scale;
///   `values.len().isqrt()` is a serviceable default for LRD data);
/// * `replicates` — bootstrap resamples (500-2000 typical);
/// * `coverage` — nominal two-sided coverage in `(0, 1)`;
/// * `seed` — reproducibility.
///
/// # Panics
///
/// Panics when `values` is empty, `block_len` is 0 or exceeds the
/// length, `replicates == 0`, or `coverage ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// use sst_core::bootstrap::moving_block_ci;
///
/// let data: Vec<f64> = (0..4096).map(|i| ((i / 64) % 7) as f64).collect();
/// let ci = moving_block_ci(&data, 64, 400, 0.95, 7);
/// assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
/// ```
pub fn moving_block_ci(
    values: &[f64],
    block_len: usize,
    replicates: usize,
    coverage: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!values.is_empty(), "cannot bootstrap an empty sample");
    assert!(
        block_len >= 1 && block_len <= values.len(),
        "block length must lie in [1, n]"
    );
    assert!(replicates >= 1, "need at least one replicate");
    assert!(
        coverage > 0.0 && coverage < 1.0,
        "coverage must lie in (0,1)"
    );

    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let n_blocks = n.div_ceil(block_len);
    let max_start = n - block_len; // inclusive
    let mut rng = rng_from_seed(derive_seed(seed, 0xB007));

    let mut boot_means = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let mut total = 0.0;
        let mut taken = 0usize;
        for _ in 0..n_blocks {
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            let take = block_len.min(n - taken);
            total += values[start..start + take].iter().sum::<f64>();
            taken += take;
            if taken >= n {
                break;
            }
        }
        boot_means.push(total / taken as f64);
    }
    boot_means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = 1.0 - coverage;
    let idx = |q: f64| -> usize {
        (((replicates - 1) as f64) * q)
            .round()
            .clamp(0.0, (replicates - 1) as f64) as usize
    };
    BootstrapCi {
        mean,
        lo: boot_means[idx(alpha / 2.0)],
        hi: boot_means[idx(1.0 - alpha / 2.0)],
        coverage,
        block_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_traffic::FgnGenerator;

    #[test]
    fn ci_brackets_the_sample_mean() {
        let data: Vec<f64> = (0..2000).map(|i| (i % 13) as f64).collect();
        let ci = moving_block_ci(&data, 50, 500, 0.95, 1);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.width() > 0.0);
        assert_eq!(ci.coverage, 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..512).map(|i| ((i * 7) % 23) as f64).collect();
        let a = moving_block_ci(&data, 16, 200, 0.9, 5);
        assert_eq!(a, moving_block_ci(&data, 16, 200, 0.9, 5));
        assert_ne!(a, moving_block_ci(&data, 16, 200, 0.9, 6));
    }

    #[test]
    fn wider_coverage_gives_wider_interval() {
        let data = FgnGenerator::new(0.7).unwrap().generate_values(4096, 3);
        let narrow = moving_block_ci(&data, 64, 800, 0.8, 2);
        let wide = moving_block_ci(&data, 64, 800, 0.99, 2);
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn lrd_data_needs_blocks_iid_bootstrap_understates() {
        // On H = 0.9 fGn the block-1 (i.i.d.) bootstrap CI is far
        // narrower than the block-√n CI: dependence hides uncertainty.
        let data = FgnGenerator::new(0.9).unwrap().generate_values(1 << 14, 11);
        let iid = moving_block_ci(&data, 1, 600, 0.95, 4);
        let blocked = moving_block_ci(&data, 128, 600, 0.95, 4);
        assert!(
            blocked.width() > 2.0 * iid.width(),
            "blocked {:.4} vs iid {:.4}",
            blocked.width(),
            iid.width()
        );
    }

    #[test]
    fn white_noise_is_insensitive_to_block_length() {
        let data = FgnGenerator::new(0.5).unwrap().generate_values(1 << 14, 7);
        let iid = moving_block_ci(&data, 1, 800, 0.95, 9);
        let blocked = moving_block_ci(&data, 128, 800, 0.95, 9);
        let ratio = blocked.width() / iid.width();
        assert!(
            (0.6..1.7).contains(&ratio),
            "independent data: widths should agree, ratio {ratio:.3}"
        );
    }

    #[test]
    fn coverage_on_iid_data_is_honest() {
        // Repeated draws: the 90% CI should contain the true mean in
        // roughly 90% of trials (binomial slack allowed).
        use rand::Rng;
        use sst_stats::rng::rng_from_seed;
        let mut hits = 0;
        let trials = 100;
        for t in 0..trials {
            let mut rng = rng_from_seed(t as u64);
            let data: Vec<f64> = (0..400).map(|_| rng.gen::<f64>()).collect();
            let ci = moving_block_ci(&data, 1, 400, 0.9, t as u64 + 1000);
            if ci.contains(0.5) {
                hits += 1;
            }
        }
        assert!(
            (75..=99).contains(&hits),
            "90% CI hit the truth {hits}/{trials} times"
        );
    }

    #[test]
    fn single_point_degenerates_gracefully() {
        let ci = moving_block_ci(&[5.0], 1, 10, 0.95, 0);
        assert_eq!((ci.mean, ci.lo, ci.hi), (5.0, 5.0, 5.0));
        assert!(ci.contains(5.0));
        assert!(!ci.contains(4.0));
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn oversized_block_rejected() {
        moving_block_ci(&[1.0, 2.0], 3, 10, 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_rejected() {
        moving_block_ci(&[], 1, 10, 0.95, 0);
    }
}
