//! Mergeable summaries — the algebraic contract behind sharded
//! monitoring.
//!
//! A summary is *mergeable* when combining the summaries of two disjoint
//! data partitions yields exactly the summary of their union. That
//! property is what lets an online monitoring engine shard its streams
//! across workers and still report link- and network-level statistics:
//! each shard summarizes what it saw, and snapshots combine
//! associatively afterwards (`sst-monitor` builds on this trait; its
//! merge-equivalence tests pin the contract bit-for-bit).

use sst_stats::RunningStats;

/// A summary that can absorb another summary of *disjoint* data.
///
/// # Contract
///
/// For summaries `a` of partition `A` and `b` of partition `B` with
/// `A ∩ B = ∅`:
///
/// * **Union**: `a.merge_from(&b)` must equal the summary of `A ∪ B`
///   computed directly, up to the implementation's documented precision
///   (exact for counters, floating-point-associative for moments).
/// * **Identity**: merging an empty summary is a no-op.
///
/// Merging is *not* required to be order-insensitive bit-for-bit —
/// floating-point accumulation rarely is. Engines that need bitwise
/// reproducibility (the monitor's sharded snapshots) obtain it by
/// merging in a canonical order (sorted stream key), which this trait's
/// determinism — same inputs, same output — guarantees is stable.
pub trait MergeableSummary {
    /// Absorbs `other` (a summary of disjoint data) into `self`.
    fn merge_from(&mut self, other: &Self);

    /// `true` when the summary has absorbed no data (the merge
    /// identity).
    fn is_empty(&self) -> bool;
}

impl MergeableSummary for RunningStats {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

/// A summary whose retained state can be *compacted* — shrunk toward a
/// byte budget — without touching its totals.
///
/// # Contract
///
/// * **Totals are sacred**: counts, sums, and anything else that must
///   stay exact across a merge tree (the monitor's offered/kept
///   counters, tail totals, Welford moment counts) survive any
///   `compact` call unchanged. Only *auxiliary* state — retained
///   samples, fine-grained histogram levels — may be pruned.
/// * **Deterministic**: `compact` is a pure function of the summary's
///   own state and the budget. Two bit-identical summaries compacted to
///   the same budget stay bit-identical, which is what lets a sharded
///   engine compact mid-stream and keep its merge-equivalence pins.
/// * **Monotone**: compacting to a budget the summary already fits is a
///   no-op on the retained data (it may still clamp growth limits), and
///   `estimated_bytes` never increases across a `compact` call.
///
/// `sst-monitor`'s lifecycle layer drives this periodically so that
/// per-stream state amortizes below a configured budget (~1 KB by
/// default) even under unbounded key cardinality.
pub trait Compactable {
    /// Approximate in-memory footprint of the summary, in bytes
    /// (inline struct + owned heap allocations).
    fn estimated_bytes(&self) -> usize;

    /// Prunes auxiliary state until the summary fits (or gets as close
    /// as its fixed-size core allows to) `budget_bytes`.
    fn compact(&mut self, budget_bytes: usize);
}

/// Folds an iterator of summaries into one, merging in iteration order.
///
/// With a canonically ordered input (e.g. sorted by stream key) the
/// result is bitwise-deterministic regardless of how the summaries were
/// produced or partitioned.
pub fn merge_all<S, I>(summaries: I) -> S
where
    S: MergeableSummary + Default,
    I: IntoIterator,
    I::Item: std::borrow::Borrow<S>,
{
    use std::borrow::Borrow;
    let mut acc = S::default();
    for s in summaries {
        acc.merge_from(s.borrow());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_merge_is_a_union() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        for split in [1usize, 57, 150, 299] {
            let mut left = RunningStats::new();
            let mut right = RunningStats::new();
            for &x in &data[..split] {
                left.push(x);
            }
            for &x in &data[split..] {
                right.push(x);
            }
            MergeableSummary::merge_from(&mut left, &right);
            assert_eq!(left.count(), whole.count());
            assert!((left.mean() - whole.mean()).abs() < 1e-12);
            assert!((left.variance() - whole.variance()).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(2.0);
        a.push(5.0);
        let before = a;
        a.merge_from(&RunningStats::new());
        assert_eq!(a, before);
        assert!(RunningStats::new().is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn merge_all_folds_in_order() {
        let parts: Vec<RunningStats> = (0..5)
            .map(|p| {
                let mut rs = RunningStats::new();
                for i in 0..20 {
                    rs.push((p * 20 + i) as f64);
                }
                rs
            })
            .collect();
        let folded: RunningStats = merge_all(&parts);
        let mut direct = RunningStats::new();
        for x in 0..100 {
            direct.push(x as f64);
        }
        assert_eq!(folded.count(), direct.count());
        assert!((folded.mean() - direct.mean()).abs() < 1e-12);
        // Same inputs in the same order → bitwise-identical fold.
        let again: RunningStats = merge_all(&parts);
        assert_eq!(folded, again);
    }
}
