//! Fixed-memory frequency sketches for the long-tail flow tier.
//!
//! A monitor serving millions of keys cannot afford per-key state for
//! all of them; the classical answer (Cormode & Muthukrishnan's
//! count-min sketch, Metwally et al.'s SpaceSaving) is a fixed array of
//! counters shared by every key.  `sst-monitor` layers these under its
//! exact [`crate::stream::StreamSampler`] tier: the count-min sketch
//! estimates per-key volume (and drives deterministic heavy-hitter
//! promotion), SpaceSaving keeps the candidate top-k.
//!
//! Both structures are deliberately integer-only: cell updates are
//! `u64` additions, so merging is cell-wise addition — associative,
//! commutative, and bit-exact regardless of partition order.  That is
//! what lets sketch snapshots ride [`MergeableSummary`] through the
//! sharded engine and the collector topology without breaking the
//! byte-identity guarantees the exact tier already provides.

use crate::summary::MergeableSummary;
use sst_stats::rng::derive_seed;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Domain tag mixed into row-seed derivation so count-min row hashes
/// never collide with other `derive_seed` users on the same base seed.
const CM_ROW_TAG: u64 = 0x434d_524f_5753; // "CMROWS"

/// A count-min sketch over `u64` keys with `u64` counts.
///
/// `depth` rows of `width` cells each (width is a power of two);
/// incrementing a key adds to one cell per row (row hashes derived from
/// the seed via [`derive_seed`]), and the point estimate is the minimum
/// over rows — an overestimate with bounded expected error
/// `ε ≈ e / width` of the total count.
///
/// Counts are integers, so [`MergeableSummary::merge_from`] is exact
/// cell-wise addition: merging per-partition sketches yields the bits a
/// single sketch over the interleaved stream would hold.
#[derive(Debug, Clone, PartialEq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    /// Cached `derive_seed(derive_seed(seed, CM_ROW_TAG), row)` values.
    row_seeds: Vec<u64>,
    /// Row-major `depth × width` counters.
    cells: Vec<u64>,
    /// Exact total of all increments (every row also sums to this
    /// unless a cell saturated).
    total: u64,
}

fn row_seeds(seed: u64, depth: usize) -> Vec<u64> {
    let base = derive_seed(seed, CM_ROW_TAG);
    (0..depth as u64).map(|r| derive_seed(base, r)).collect()
}

impl CountMinSketch {
    /// Creates a sketch with exactly `depth × width` cells; `width` is
    /// rounded up to a power of two (minimum 16).
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        let depth = depth.max(1);
        let width = width.max(16).next_power_of_two();
        Self {
            width,
            depth,
            seed,
            row_seeds: row_seeds(seed, depth),
            cells: vec![0; depth * width],
            total: 0,
        }
    }

    /// Creates the widest `depth`-row sketch that fits in `bytes` of
    /// cell storage (width rounded *down* to a power of two, min 16).
    pub fn with_budget(bytes: usize, depth: usize, seed: u64) -> Self {
        let depth = depth.max(1);
        let per_row = bytes / (8 * depth);
        let width = if per_row < 16 {
            16
        } else {
            // Largest power of two ≤ per_row.
            1usize << (usize::BITS - 1 - per_row.leading_zeros())
        };
        Self::new(depth, width, seed)
    }

    /// Row width in cells (a power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed the row hashes derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Row-major cell counters (`depth × width` values).
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// Exact total of all increments ever applied (or merged in).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rebuilds a sketch from codec-decoded parts. Returns `None` when
    /// `cells.len() != depth × width` or `width` is not a power of two.
    pub fn from_raw_parts(
        depth: usize,
        width: usize,
        seed: u64,
        cells: Vec<u64>,
        total: u64,
    ) -> Option<Self> {
        if depth == 0 || width == 0 || !width.is_power_of_two() {
            return None;
        }
        if cells.len() != depth.checked_mul(width)? {
            return None;
        }
        Some(Self {
            width,
            depth,
            seed,
            row_seeds: row_seeds(seed, depth),
            cells,
            total,
        })
    }

    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        row * self.width + (derive_seed(self.row_seeds[row], key) as usize & (self.width - 1))
    }

    /// Adds `count` to `key`'s cell in every row.
    pub fn increment(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let i = self.index(row, key);
            self.cells[i] = self.cells[i].saturating_add(count);
        }
        self.total = self.total.saturating_add(count);
    }

    /// Point estimate for `key`: the minimum cell over rows (never an
    /// underestimate).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.cells[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Linear-counting estimate of the number of distinct keys seen,
    /// from the zero-cell occupancy of row 0. Saturates at `total()`
    /// when the row is full.
    pub fn distinct_estimate(&self) -> u64 {
        let row = &self.cells[..self.width];
        let zeros = row.iter().filter(|&&c| c == 0).count();
        if zeros == 0 {
            return self.total;
        }
        let w = self.width as f64;
        let est = (w * (w / zeros as f64).ln()).round() as u64;
        est.min(self.total)
    }

    /// Bytes of heap + inline state.
    pub fn estimated_bytes(&self) -> usize {
        64 + 8 * self.row_seeds.len() + 8 * self.cells.len()
    }
}

impl MergeableSummary for CountMinSketch {
    /// Cell-wise addition when geometries match (exact); when they do
    /// not, only the exact `total` is carried over and the point
    /// estimates degrade — totals are sacred, estimates are not.
    fn merge_from(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        if self.width == other.width && self.depth == other.depth && self.seed == other.seed {
            for (c, o) in self.cells.iter_mut().zip(&other.cells) {
                *c = c.saturating_add(*o);
            }
        }
        self.total = self.total.saturating_add(other.total);
    }

    fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Metwally et al.'s SpaceSaving top-k candidate table.
///
/// Holds at most `capacity` `(key, count, err)` entries; a new key past
/// capacity evicts the minimum-count entry (ties broken by smaller
/// key, so eviction is deterministic) and inherits its count as the
/// admission error bound. Guarantees: `count - err ≤ true ≤ count`,
/// and any key with true count above the minimum table count is
/// present.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSaving {
    capacity: usize,
    /// key → (count, err)
    by_key: HashMap<u64, (u64, u64)>,
    /// (count, key) ordered index for O(log n) min-eviction.
    by_count: BTreeSet<(u64, u64)>,
}

impl SpaceSaving {
    /// Creates a table tracking up to `capacity` candidates (min 4).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(4);
        Self {
            capacity,
            by_key: HashMap::with_capacity(capacity),
            by_count: BTreeSet::new(),
        }
    }

    /// Maximum number of tracked candidates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tracked candidates.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no key has ever been offered.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Offers `count` observations of `key`.
    pub fn offer(&mut self, key: u64, count: u64) {
        if let Some(&(old, err)) = self.by_key.get(&key) {
            let new = old.saturating_add(count);
            self.by_count.remove(&(old, key));
            self.by_count.insert((new, key));
            self.by_key.insert(key, (new, err));
            return;
        }
        if self.by_key.len() < self.capacity {
            self.by_key.insert(key, (count, 0));
            self.by_count.insert((count, key));
            return;
        }
        // Deterministic victim: smallest count, then smallest key.
        let &(min_count, victim) = self.by_count.iter().next().expect("non-empty at capacity");
        self.by_count.remove(&(min_count, victim));
        self.by_key.remove(&victim);
        let new = min_count.saturating_add(count);
        self.by_key.insert(key, (new, min_count));
        self.by_count.insert((new, key));
    }

    /// Upper-bound count for `key`, or 0 if untracked.
    pub fn estimate(&self, key: u64) -> u64 {
        self.by_key.get(&key).map_or(0, |&(c, _)| c)
    }

    /// The tracked `(count, err)` pair for `key`, or `None` when the
    /// key is not in the candidate table. `count − err` is a **lower**
    /// bound on the key's true observation count — the guaranteed-mass
    /// signal promotion gates ride on (a count-min estimate alone can
    /// only over-count).
    pub fn candidate(&self, key: u64) -> Option<(u64, u64)> {
        self.by_key.get(&key).copied()
    }

    /// All candidates as `(key, count, err)`, sorted by key — the
    /// canonical (deterministic) snapshot order.
    pub fn entries(&self) -> Vec<(u64, u64, u64)> {
        let sorted: BTreeMap<u64, (u64, u64)> = self.by_key.iter().map(|(&k, &v)| (k, v)).collect();
        sorted.into_iter().map(|(k, (c, e))| (k, c, e)).collect()
    }

    /// Rebuilds a table from codec-decoded `(key, count, err)` entries.
    /// Returns `None` when entries exceed `capacity` or contain
    /// duplicate keys.
    pub fn from_entries(capacity: usize, entries: &[(u64, u64, u64)]) -> Option<Self> {
        let capacity = capacity.max(4);
        if entries.len() > capacity {
            return None;
        }
        let mut t = Self::new(capacity);
        for &(k, c, e) in entries {
            if t.by_key.insert(k, (c, e)).is_some() {
                return None;
            }
            t.by_count.insert((c, k));
        }
        Some(t)
    }

    /// Merges another table: counts and error bounds add for shared
    /// keys, then the union is truncated back to the larger capacity
    /// keeping the highest counts (ties keep the smaller key). The
    /// result depends only on the two inputs, not their build order —
    /// but truncation makes this approximate, unlike
    /// [`CountMinSketch`]'s exact merge.
    pub fn merge_from(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        let capacity = self.capacity.max(other.capacity);
        let mut union: BTreeMap<u64, (u64, u64)> =
            self.by_key.iter().map(|(&k, &v)| (k, v)).collect();
        for (&k, &(c, e)) in &other.by_key {
            let slot = union.entry(k).or_insert((0, 0));
            slot.0 = slot.0.saturating_add(c);
            slot.1 = slot.1.saturating_add(e);
        }
        let mut ranked: Vec<(u64, u64, u64)> =
            union.into_iter().map(|(k, (c, e))| (k, c, e)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(capacity);
        let mut merged = Self::new(capacity);
        for (k, c, e) in ranked {
            merged.by_key.insert(k, (c, e));
            merged.by_count.insert((c, k));
        }
        *self = merged;
    }

    /// Bytes of heap + inline state.
    pub fn estimated_bytes(&self) -> usize {
        48 + self.by_key.len() * 56 + self.by_count.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_never_underestimates_and_is_exact_when_sparse() {
        let mut cm = CountMinSketch::new(4, 1 << 12, 7);
        for k in 0..100u64 {
            cm.increment(k, k + 1);
        }
        for k in 0..100u64 {
            assert!(cm.estimate(k) > k, "key {k}");
        }
        // 100 keys in 4096 cells: collisions are unlikely enough that
        // most estimates are exact.
        let exact = (0..100u64).filter(|&k| cm.estimate(k) == k + 1).count();
        assert!(exact > 90, "only {exact}/100 exact");
        assert_eq!(cm.total(), (1..=100).sum::<u64>());
    }

    #[test]
    fn cm_merge_is_exact_cellwise_addition() {
        let mut whole = CountMinSketch::new(4, 256, 3);
        let mut left = CountMinSketch::new(4, 256, 3);
        let mut right = CountMinSketch::new(4, 256, 3);
        for i in 0..10_000u64 {
            let key = i % 331;
            whole.increment(key, 1);
            if i % 2 == 0 {
                left.increment(key, 1);
            } else {
                right.increment(key, 1);
            }
        }
        left.merge_from(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn cm_merge_identity_laws() {
        let mut cm = CountMinSketch::new(4, 64, 1);
        cm.increment(9, 5);
        let before = cm.clone();
        cm.merge_from(&CountMinSketch::new(4, 64, 1));
        assert_eq!(cm, before);
        let mut empty = CountMinSketch::new(4, 64, 1);
        empty.merge_from(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cm_mismatched_merge_keeps_total() {
        let mut a = CountMinSketch::new(4, 64, 1);
        let mut b = CountMinSketch::new(4, 128, 2);
        a.increment(1, 10);
        b.increment(2, 32);
        a.merge_from(&b);
        assert_eq!(a.total(), 42);
    }

    #[test]
    fn cm_budget_fits() {
        let cm = CountMinSketch::with_budget(1 << 16, 4, 0);
        assert!(cm.cells().len() * 8 <= 1 << 16);
        assert!(cm.width().is_power_of_two());
        assert_eq!(cm.width(), 2048);
    }

    #[test]
    fn cm_distinct_estimate_tracks_cardinality() {
        let mut cm = CountMinSketch::new(4, 1 << 14, 11);
        for k in 0..2000u64 {
            cm.increment(k * 2_654_435_761, 3);
        }
        let d = cm.distinct_estimate();
        assert!((1700..=2300).contains(&d), "distinct estimate {d}");
    }

    #[test]
    fn spacesaving_keeps_true_heavy_hitters() {
        let mut ss = SpaceSaving::new(16);
        // 8 heavy keys at 1000 each drowned in 10k singleton keys.
        for i in 0..10_000u64 {
            ss.offer(1_000_000 + i, 1);
            if i % 10 == 0 {
                for h in 0..8u64 {
                    ss.offer(h, 10);
                }
            }
        }
        for h in 0..8u64 {
            let est = ss.estimate(h);
            assert!(est >= 10_000, "heavy key {h} estimate {est}");
        }
        assert_eq!(ss.len(), 16);
    }

    #[test]
    fn spacesaving_eviction_is_deterministic() {
        let build = || {
            let mut ss = SpaceSaving::new(4);
            for k in [5u64, 3, 9, 1, 7, 7, 2] {
                ss.offer(k, 1);
            }
            ss.entries()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn spacesaving_merge_order_independent() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        for i in 0..500u64 {
            a.offer(i % 13, 1);
            b.offer(i % 29, 2);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.entries(), ba.entries());
    }

    #[test]
    fn spacesaving_roundtrips_entries() {
        let mut ss = SpaceSaving::new(8);
        for k in 0..20u64 {
            ss.offer(k, k + 1);
        }
        let back = SpaceSaving::from_entries(8, &ss.entries()).unwrap();
        assert_eq!(back, ss);
        assert!(SpaceSaving::from_entries(4, &ss.entries()).is_none());
    }
}
