//! Theorem 1 — the sufficient and necessary condition (SNC) for a
//! sampling technique to preserve second-order statistics — and its
//! FFT-based numerical checker (steps S1-S3 of §III-D), plus the direct
//! Eq. (11) evaluation for simple random sampling (Fig. 2).
//!
//! A sampling method is modeled by the distribution `H` of its i.i.d.
//! inter-sample gaps `Tᵢ`; the sampled-process autocorrelation is
//! `R_g(τ) = Σ_u R_f(u)·k(u, τ)` where `k(·, τ)` is the τ-fold
//! convolution of `H`. The technique preserves the Hurst parameter iff
//! `R_g(τ) ~ R_f(τ)`.

use sst_sigproc::complex::Complex;
use sst_sigproc::fft::{fft_pow2_in_place, ifft_pow2_in_place, next_pow2};
use sst_sigproc::regress::power_law_fit;
use sst_stats::dist::neg_binomial_ln_pmf;
use sst_stats::PowerLawAcf;

/// Inter-sample-gap distribution of a sampling technique.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GapDistribution {
    /// Systematic sampling: `P(T = C) = 1` (Dirac at the interval).
    Systematic {
        /// Sampling interval C.
        interval: usize,
    },
    /// Stratified random sampling: `T = C + U₂ − U₁` with independent
    /// uniforms on `{0..C−1}` — the discrete triangular pmf of Eq. (12).
    Stratified {
        /// Bucket length C.
        interval: usize,
    },
    /// Simple random (Bernoulli) sampling: geometric gaps, Eq. (13).
    SimpleRandom {
        /// Selection probability r.
        rate: f64,
    },
}

impl GapDistribution {
    /// The pmf over gaps `0..len` (index = gap length in time units).
    ///
    /// # Panics
    ///
    /// Panics on zero intervals, rates outside `(0,1)`, or `len` too
    /// small to hold the support of a degenerate/triangular gap.
    pub fn pmf(&self, len: usize) -> Vec<f64> {
        match *self {
            GapDistribution::Systematic { interval } => {
                assert!(interval >= 1, "interval must be >= 1");
                assert!(len > interval, "pmf length must exceed the interval");
                let mut p = vec![0.0; len];
                p[interval] = 1.0;
                p
            }
            GapDistribution::Stratified { interval } => {
                assert!(interval >= 1, "interval must be >= 1");
                assert!(len > 2 * interval, "pmf length must exceed 2C");
                let c = interval as f64;
                let mut p = vec![0.0; len];
                // P(T = C + d) = (C − |d|)/C² for |d| < C.
                for d in -(interval as i64 - 1)..=(interval as i64 - 1) {
                    let idx = (interval as i64 + d) as usize;
                    p[idx] = (c - d.unsigned_abs() as f64) / (c * c);
                }
                p
            }
            GapDistribution::SimpleRandom { rate } => {
                assert!(rate > 0.0 && rate < 1.0, "rate must be in (0,1)");
                let mut p = vec![0.0; len];
                for (i, slot) in p.iter_mut().enumerate().skip(1) {
                    *slot = (1.0 - rate).powi(i as i32 - 1) * rate;
                }
                p
            }
        }
    }

    /// Mean gap (the reciprocal of the effective sampling rate).
    pub fn mean_gap(&self) -> f64 {
        match *self {
            GapDistribution::Systematic { interval } => interval as f64,
            GapDistribution::Stratified { interval } => interval as f64,
            GapDistribution::SimpleRandom { rate } => 1.0 / rate,
        }
    }

    /// A pmf length that captures all but `tail_mass` of the gap
    /// distribution — truncating earlier would make the τ-fold
    /// convolution lose `≈ τ·tail_mass` of its mass and corrupt the
    /// fitted exponent.
    pub fn support_len(&self, tail_mass: f64) -> usize {
        assert!(tail_mass > 0.0 && tail_mass < 1.0);
        match *self {
            GapDistribution::Systematic { interval } => interval + 2,
            GapDistribution::Stratified { interval } => 2 * interval + 2,
            GapDistribution::SimpleRandom { rate } => {
                // (1−r)^k < tail_mass  ⇒  k > ln(tail_mass)/ln(1−r).
                (tail_mass.ln() / (1.0 - rate).ln()).ceil() as usize + 2
            }
        }
    }
}

/// Result of the numerical SNC check.
#[derive(Clone, Debug)]
pub struct SncReport {
    /// The decay exponent of the original process.
    pub beta_true: f64,
    /// The exponent fitted to the sampled-process autocorrelation.
    pub beta_estimated: f64,
    /// R² of the log-log fit.
    pub r_squared: f64,
    /// The `(τ, R_g(τ))` series used for the fit.
    pub series: Vec<(f64, f64)>,
}

impl SncReport {
    /// Whether the sampled process preserves the exponent to within
    /// `tol` — the numerical verdict on Eq. (15).
    pub fn preserves_hurst(&self, tol: f64) -> bool {
        (self.beta_estimated - self.beta_true).abs() <= tol
    }
}

/// Numerical SNC checker: computes `R_g(τ) = Σ_u R_f(u)·k(u, τ)` with
/// `k(·, τ) = IFFT(FFT(H)^τ)` (steps S1-S3), then fits
/// `log R_g ~ −β̂·log τ` over `taus`.
///
/// `taus` are sampled-process lags; the u-grid automatically covers
/// `max(taus)·mean_gap·4` so the τ-fold convolution mass is captured.
///
/// # Panics
///
/// Panics if `taus` has fewer than 3 entries or is not increasing.
pub fn snc_check(gap: &GapDistribution, beta: f64, taus: &[usize]) -> SncReport {
    assert!(taus.len() >= 3, "need at least 3 lags to fit");
    assert!(
        taus.windows(2).all(|w| w[0] < w[1]),
        "lags must be increasing"
    );
    let max_tau = *taus.last().expect("non-empty");
    let acf = PowerLawAcf::new(beta);
    // u-grid: τ-fold convolution of mean-μ gaps concentrates near τ·μ;
    // 4× headroom plus the pmf support keeps truncation negligible.
    let mean_gap = gap.mean_gap();
    let pmf_len = gap.support_len(1e-12);
    let u_len = ((max_tau as f64 * mean_gap * 4.0) as usize)
        .max(1024)
        .max(pmf_len + 1);
    let m = next_pow2(u_len);
    let pmf = gap.pmf(pmf_len);
    let mut spectrum = vec![Complex::ZERO; m];
    for (dst, &src) in spectrum.iter_mut().zip(&pmf) {
        *dst = Complex::from_real(src);
    }
    fft_pow2_in_place(&mut spectrum);

    let rf: Vec<f64> = acf.table(m);
    let mut series = Vec::with_capacity(taus.len());
    for &tau in taus {
        // K(ω, τ) = H(ω)^τ  (S2), then k(·, τ) by inverse FFT (S3).
        let mut k_spec: Vec<Complex> = spectrum.iter().map(|&h| h.powi(tau as u32)).collect();
        ifft_pow2_in_place(&mut k_spec);
        let rg: f64 = k_spec
            .iter()
            .zip(&rf)
            .map(|(k, &r)| k.re.max(0.0) * r)
            .sum();
        series.push((tau as f64, rg));
    }
    let xs: Vec<f64> = series.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = series.iter().map(|p| p.1).collect();
    let (slope, _, fit) = power_law_fit(&xs, &ys);
    SncReport {
        beta_true: beta,
        beta_estimated: -slope,
        r_squared: fit.r_squared,
        series,
    }
}

/// Direct evaluation of Eq. (11): the sampled-process autocorrelation of
/// simple random sampling at rate `rho`,
/// `R_g(τ) = Σ_i R_f(τ+i)·NB(i; τ, ρ)`, computed in log space (the
/// binomial coefficients overflow `f64` well below the paper's lags).
///
/// `terms` bounds the i-summation; the negative-binomial mass beyond
/// `≈ 4τ(1−ρ)/ρ + 64` is negligible, and the default chooser in
/// [`simple_random_beta_scan`] uses that.
pub fn simple_random_rg(tau: usize, rho: f64, beta: f64, terms: usize) -> f64 {
    assert!(tau >= 1, "tau must be >= 1");
    assert!(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
    let acf = PowerLawAcf::new(beta);
    let mut acc = 0.0;
    for i in 0..terms as u64 {
        let lp = neg_binomial_ln_pmf(tau as u64, i, rho);
        if lp < -745.0 {
            // exp underflows; once past the mode the tail only shrinks.
            if (i as f64) > tau as f64 * (1.0 - rho) / rho {
                break;
            }
            continue;
        }
        acc += lp.exp() * acf.at(tau as f64 + i as f64);
    }
    acc
}

/// Fig. 2b: sweeps β, evaluating Eq. (11) over `taus` and fitting the
/// log-log slope; returns `(β, β̂)` pairs.
pub fn simple_random_beta_scan(betas: &[f64], rho: f64, taus: &[usize]) -> Vec<(f64, f64)> {
    betas
        .iter()
        .map(|&beta| {
            let series: Vec<(f64, f64)> = taus
                .iter()
                .map(|&tau| {
                    let terms = (4.0 * tau as f64 * (1.0 - rho) / rho) as usize + 64;
                    (tau as f64, simple_random_rg(tau, rho, beta, terms))
                })
                .collect();
            let xs: Vec<f64> = series.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = series.iter().map(|p| p.1).collect();
            let (slope, _, _) = power_law_fit(&xs, &ys);
            (beta, -slope)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_taus(lo: usize, hi: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = sst_sigproc::numeric::logspace(lo as f64, hi as f64, n)
            .into_iter()
            .map(|x| x.round() as usize)
            .collect();
        v.dedup();
        v
    }

    #[test]
    fn pmfs_are_normalized() {
        let gaps = [
            GapDistribution::Systematic { interval: 10 },
            GapDistribution::Stratified { interval: 10 },
            GapDistribution::SimpleRandom { rate: 0.1 },
        ];
        for g in gaps {
            let p = g.pmf(2048);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "{g:?}: {total}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn stratified_pmf_is_triangular() {
        let p = GapDistribution::Stratified { interval: 4 }.pmf(16);
        // Peak at C=4, symmetric, zero at 0 and 8.
        assert!(p[4] > p[3] && p[4] > p[5]);
        assert!((p[3] - p[5]).abs() < 1e-15);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[8], 0.0);
        // Mean gap = C.
        let mean: f64 = p.iter().enumerate().map(|(i, &x)| i as f64 * x).sum();
        assert!((mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_pmf_mean_is_reciprocal_rate() {
        let p = GapDistribution::SimpleRandom { rate: 0.25 }.pmf(4096);
        let mean: f64 = p.iter().enumerate().map(|(i, &x)| i as f64 * x).sum();
        assert!((mean - 4.0).abs() < 1e-6);
    }

    #[test]
    fn systematic_preserves_beta_exactly() {
        // k(u, τ) = δ(u − τC): R_g(τ) = R_f(τC) = C^{-β}·τ^{-β}.
        let taus = log_taus(8, 256, 10);
        for beta in [0.2, 0.5, 0.8] {
            let rep = snc_check(&GapDistribution::Systematic { interval: 10 }, beta, &taus);
            assert!(
                rep.preserves_hurst(0.02),
                "beta={beta} est={}",
                rep.beta_estimated
            );
            assert!(rep.r_squared > 0.999);
        }
    }

    #[test]
    fn stratified_preserves_beta() {
        // Fig. 3a.
        let taus = log_taus(8, 256, 10);
        for beta in [0.1, 0.4, 0.8] {
            let rep = snc_check(&GapDistribution::Stratified { interval: 10 }, beta, &taus);
            assert!(
                rep.preserves_hurst(0.05),
                "beta={beta} est={}",
                rep.beta_estimated
            );
        }
    }

    #[test]
    fn simple_random_preserves_beta_via_snc() {
        // Fig. 3b.
        let taus = log_taus(8, 256, 10);
        for beta in [0.1, 0.4, 0.8] {
            let rep = snc_check(&GapDistribution::SimpleRandom { rate: 0.1 }, beta, &taus);
            assert!(
                rep.preserves_hurst(0.05),
                "beta={beta} est={}",
                rep.beta_estimated
            );
        }
    }

    #[test]
    fn eq11_preserves_beta() {
        // Fig. 2b: β̂ tracks β with a small truncation gap.
        let taus = log_taus(91, 512, 8); // the paper fits τ ∈ [2^6.5, 2^9]
        let scan = simple_random_beta_scan(&[0.1, 0.3, 0.5, 0.8], 0.5, &taus);
        for (beta, est) in scan {
            assert!((est - beta).abs() < 0.06, "beta={beta} est={est}");
        }
    }

    #[test]
    fn eq11_fig2a_slope_near_point08_for_beta_point1() {
        // Fig. 2a: at β = 0.1 the paper fits slope −0.08 (truncation gap).
        let taus = log_taus(91, 512, 10);
        let scan = simple_random_beta_scan(&[0.1], 0.5, &taus);
        let est = scan[0].1;
        assert!(est > 0.06 && est < 0.12, "est={est}");
    }

    #[test]
    fn report_verdict_thresholds() {
        let rep = SncReport {
            beta_true: 0.5,
            beta_estimated: 0.53,
            r_squared: 0.99,
            series: vec![],
        };
        assert!(rep.preserves_hurst(0.05));
        assert!(!rep.preserves_hurst(0.01));
    }

    #[test]
    #[should_panic(expected = "lags must be increasing")]
    fn unsorted_taus_rejected() {
        snc_check(
            &GapDistribution::Systematic { interval: 2 },
            0.5,
            &[8, 4, 16],
        );
    }
}
