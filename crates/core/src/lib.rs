//! # sst-core — sampling techniques for self-similar Internet traffic
//!
//! The primary contribution of He & Hou, *"An In-Depth, Analytical Study
//! of Sampling Techniques for Self-Similar Internet Traffic"*
//! (ICDCS 2005), as a library:
//!
//! * [`sampler`] — the three classical techniques (§II-B): systematic,
//!   stratified random, simple random, behind one [`Sampler`] trait.
//! * [`bss`] — **Biased Systematic Sampling** (§V-C), the paper's new
//!   sampler, with both offline parameterization and the online tuning
//!   scheme (pre-samples, running-mean threshold, η from Eq. 35).
//! * [`snc`] — Theorem 1's sufficient-and-necessary condition for Hurst
//!   preservation and its FFT checker (§III-D), plus the closed-form
//!   Eq. (11) analysis of simple random sampling.
//! * [`theory`] — the BSS analytics: bias parameter ξ (corrected
//!   Eq. 30), extra-sample budget L (Eq. 23 / inverse-ξ), qualified-
//!   sample cost, burst persistence (Eqs. 18-20), η(r) (Eq. 35).
//! * [`metrics`] / [`experiment`] — η, efficiency `e`, average variance
//!   `E(V)`, and the multi-instance experiment runner behind every
//!   measured figure.
//! * [`parallel`] — [`ParallelExperimentRunner`], fanning instances and
//!   whole rate sweeps across threads with byte-identical results to the
//!   sequential runner.
//! * [`adaptive`] — the Choi-Park-Zhang adaptive random sampler, the
//!   related-work baseline that adapts the *rate* instead of biasing the
//!   *selection* (compared against BSS in the ablation experiments).
//! * [`stream`] — push-based (one decision per arriving point) streaming
//!   counterparts of every sampler, exactly equivalent to the offline
//!   forms — what a router line card deploys — with state snapshots
//!   ([`SamplerSnapshot`]) for online monitoring.
//! * [`sketch`] — fixed-memory frequency sketches (count-min,
//!   SpaceSaving) with integer cells, so merges are exact cell-wise
//!   addition — the long-tail tier under `sst-monitor`'s exact
//!   per-stream state.
//! * [`summary`] — the [`MergeableSummary`] contract: summaries of
//!   disjoint data partitions combine associatively, the property the
//!   sharded monitoring engine (`sst-monitor`) is built on.
//! * [`bootstrap`] — moving-block bootstrap confidence intervals, the
//!   LRD-honest error bar to attach to a sampled mean.
//!
//! ## Example
//!
//! ```
//! use sst_core::{Sampler, SystematicSampler};
//! use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
//!
//! let trace: Vec<f64> = (0..100_000)
//!     .map(|i| if (i / 1000) % 9 == 0 { 50.0 } else { 1.0 })
//!     .collect();
//!
//! let plain = SystematicSampler::new(500).sample(&trace, 3).mean();
//! let bss = BssSampler::new(500, ThresholdPolicy::Online(OnlineTuning::default()))
//!     .expect("valid config")
//!     .sample_detailed(&trace, 3);
//!
//! // BSS deliberately biases *upward*: its qualified samples all exceed
//! // the threshold, countering the typical underestimate on heavy-tailed
//! // traffic (on genuinely heavy-tailed traces this lands closer to the
//! // true mean — see the `bss_beats_systematic` integration test).
//! assert!(bss.qualified_count > 0);
//! assert!(bss.mean() >= plain);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bootstrap;
pub mod bss;
pub mod experiment;
pub mod metrics;
pub mod parallel;
pub mod sampler;
pub mod sketch;
pub mod snc;
pub mod stream;
pub mod summary;
pub mod theory;

pub use adaptive::{AdaptiveConfig, AdaptiveOutcome, AdaptiveRandomSampler};
pub use bootstrap::{moving_block_ci, BootstrapCi};
pub use bss::{BssOutcome, BssSampler, OnlineTuning, ThresholdPolicy};
pub use experiment::{run_bss_experiment, run_experiment, ExperimentResult};
pub use parallel::ParallelExperimentRunner;
pub use sampler::{Sampler, Samples, SimpleRandomSampler, StratifiedSampler, SystematicSampler};
pub use sketch::{CountMinSketch, SpaceSaving};
pub use snc::{GapDistribution, SncReport};
pub use stream::{
    SamplerSnapshot, StreamDecision, StreamSampler, StreamingBss, StreamingSimpleRandom,
    StreamingStratified, StreamingSystematic,
};
pub use summary::{merge_all, MergeableSummary};

#[cfg(test)]
mod integration {
    use super::*;
    use sst_traffic::SyntheticTraceSpec;

    /// T3 in miniature: on heavy-tailed LRD traffic, online BSS's
    /// deliberate selection bias moves the estimate up from plain
    /// systematic at the same base rate, at bounded overhead. (At 131
    /// samples per instance, which scheme's *absolute* error wins
    /// swings with the trace realization; the upward shift and its
    /// bounded size do not.)
    #[test]
    fn bss_recovers_upward_from_systematic_at_bounded_cost() {
        let trace = SyntheticTraceSpec::new().length(1 << 17).seed(2024).build();
        let truth = trace.mean();
        let interval = 1000;
        let n_inst = 8;

        let sys = run_experiment(
            trace.values(),
            &SystematicSampler::new(interval),
            n_inst,
            11,
        );
        let bss_sampler = BssSampler::new(
            interval,
            ThresholdPolicy::Online(OnlineTuning {
                alpha: 1.5,
                ..Default::default()
            }),
        )
        .unwrap();
        let bss = run_bss_experiment(trace.values(), &bss_sampler, n_inst, 11);

        assert!(
            bss.median_mean() > sys.median_mean(),
            "BSS median {:.4} should sit above systematic {:.4} (truth {truth:.4})",
            bss.median_mean(),
            sys.median_mean()
        );
        // The bias is a correction, not a blow-up.
        assert!(
            bss.median_mean() < 1.6 * truth,
            "BSS median {:.4} overshoots truth {truth:.4} wildly",
            bss.median_mean()
        );
        // And it costs bounded overhead.
        assert!(
            bss.mean_overhead() < 2.0,
            "overhead={}",
            bss.mean_overhead()
        );
    }

    /// T1 in miniature: the sampled process has the same Hurst parameter
    /// as the original — compared with the *same estimator on both*
    /// (subsampling perturbs fine scales, so the honest comparison is
    /// estimator(sampled) vs estimator(original), both at coarse scales).
    #[test]
    fn sampled_process_keeps_hurst() {
        use sst_hurst::LocalWhittleEstimator;
        let h = 0.85;
        let trace = sst_traffic::FgnGenerator::new(h)
            .unwrap()
            .generate_values(1 << 18, 5);
        let est = LocalWhittleEstimator { bandwidth: 0.5 };
        let sampled = SystematicSampler::new(16).sample(&trace, 0);
        let h_sampled = est.estimate(sampled.values()).unwrap().hurst;
        let h_orig = est.estimate(&trace).unwrap().hurst;
        assert!(
            (h_sampled - h_orig).abs() < 0.07,
            "sampled H={h_sampled} vs original H={h_orig}"
        );
        assert!(
            (h_sampled - h).abs() < 0.08,
            "sampled H={h_sampled} vs true {h}"
        );
    }

    /// T2 in miniature: Theorem 2's ordering of average variances,
    /// `E(V_sy) ≤ E(V_rs) ≤ E(V_ran)`. The theorem is a superpopulation
    /// (ensemble-expectation) statement, so the check averages E(V)
    /// over independent trace realizations.
    #[test]
    fn variance_ordering_on_lrd_traffic() {
        let c = 64;
        let reps = 24u64;
        let (mut sys_acc, mut strat_acc, mut rand_acc) = (0.0, 0.0, 0.0);
        for seed in 0..reps {
            let trace = SyntheticTraceSpec::new()
                .length(1 << 14)
                .gaussian_marginal(10.0, 1.0) // finite variance: E(V) stable
                .seed(seed)
                .build();
            let n = 64;
            sys_acc += run_experiment(trace.values(), &SystematicSampler::new(c), n, seed)
                .average_variance();
            strat_acc += run_experiment(trace.values(), &StratifiedSampler::new(c), n, seed)
                .average_variance();
            rand_acc += run_experiment(
                trace.values(),
                &SimpleRandomSampler::new(1.0 / c as f64),
                n,
                seed,
            )
            .average_variance();
        }
        // Systematic/stratified are near-equal per Theorem 2 — the
        // finite-ensemble ratio fluctuates around 1 by ~±0.1 even at 24
        // realizations, so allow that much noise; both must clearly
        // beat simple random.
        assert!(
            sys_acc <= strat_acc * 1.25,
            "sys={sys_acc} strat={strat_acc}"
        );
        assert!(sys_acc < rand_acc, "sys={sys_acc} rand={rand_acc}");
        assert!(strat_acc < rand_acc, "strat={strat_acc} rand={rand_acc}");
    }
}
