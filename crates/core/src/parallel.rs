//! Parallel experiment execution.
//!
//! [`ParallelExperimentRunner`] fans the instances of a multi-instance
//! sampling experiment — and whole rate sweeps — across threads while
//! staying **byte-identical** to the sequential
//! [`crate::experiment::run_experiment`] path: instance `i` depends only
//! on `derive_seed(base_seed, i)`, never on shared mutable state, so the
//! ordered parallel map reproduces the sequential result list exactly
//! (the `parallel_matches_sequential_*` tests pin this down).
//!
//! ## Example
//!
//! ```
//! use sst_core::{run_experiment, ParallelExperimentRunner, SystematicSampler};
//!
//! let trace: Vec<f64> = (0..40_000).map(|i| 1.0 + ((i / 400) % 7) as f64).collect();
//! let sampler = SystematicSampler::new(100);
//! let par = ParallelExperimentRunner::new().run(&trace, &sampler, 16, 7);
//! let seq = run_experiment(&trace, &sampler, 16, 7);
//! assert_eq!(par.instances, seq.instances);
//! ```

use crate::bss::BssSampler;
use crate::experiment::{validate_experiment_inputs, ExperimentResult, InstanceResult};
use crate::sampler::Sampler;
use rayon::prelude::*;
use sst_stats::rng::derive_seed;

/// Minimum trace elements one submitted task should be responsible for.
///
/// Fanning out is cheap now that the offline rayon stand-in runs a
/// persistent worker pool (one queue push per task instead of an OS
/// thread spawn), but a work item still pays queueing and
/// cache-migration overhead, so an instance only earns a task of its
/// own when it scans at least this many elements; smaller instances are
/// batched together, and sweeps whose *total* work cannot fill two such
/// tasks skip the fan-out entirely. The value corresponds to roughly a
/// hundred microseconds of sampling work — far above enqueue cost, far
/// below the scale where load imbalance would matter. (The pre-pool
/// threshold was 8× higher; the pool dropped the fan-out floor.)
const MIN_TASK_ELEMS: u64 = 1 << 18;

/// How a runner will execute a sweep of `total_items` work items, each
/// scanning `item_elems` trace elements.
///
/// Exposed for tests; produced by [`chunking_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chunking {
    /// Run inline on the calling thread — the work cannot pay for even
    /// one fan-out.
    Sequential,
    /// Fan out tasks of `chunk` consecutive items each.
    Chunked {
        /// Items per spawned task (≥ 1).
        chunk: usize,
    },
}

/// Decides the execution strategy for `total_items` items of
/// `item_elems` elements each across `threads` workers.
///
/// Byte-equality is unaffected by the choice — chunks preserve item
/// order and items stay pure functions of their seed — so this is
/// purely a throughput decision.
pub fn chunking_for(total_items: usize, item_elems: usize, threads: usize) -> Chunking {
    let total_work = total_items as u64 * item_elems as u64;
    if threads <= 1 || total_items <= 1 || total_work < 2 * MIN_TASK_ELEMS {
        return Chunking::Sequential;
    }
    // Items per task so each task clears the minimum-work bar …
    let min_chunk = (MIN_TASK_ELEMS / (item_elems as u64).max(1)).max(1) as usize;
    // … but never fewer tasks than workers when the work could fill
    // them (ceil division keeps every chunk at least `min_chunk` except
    // possibly the last).
    let fair_chunk = total_items.div_ceil(threads);
    Chunking::Chunked {
        chunk: min_chunk.max(fair_chunk.min(total_items)),
    }
}

/// Runs multi-instance experiments across threads.
///
/// `jobs = None` (the default) uses every available core; `Some(n)` caps
/// the worker count — `Some(1)` degenerates to the sequential path.
/// Small sweeps are not fanned out at all: a minimum-work-per-task
/// threshold ([`chunking_for`]) batches instances into chunks and runs
/// sub-millisecond sweeps inline, so the parallel entry points are never
/// slower than [`crate::experiment::run_experiment`] by more than
/// measurement noise (and byte-identical to it always).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelExperimentRunner {
    jobs: Option<usize>,
}

impl ParallelExperimentRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        ParallelExperimentRunner { jobs: None }
    }

    /// Caps the worker count at `n` (`n = 1` runs sequentially).
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n.max(1));
        self
    }

    /// The configured worker cap, if any.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }

    fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.jobs {
            Some(n) => rayon::with_num_threads(n, f),
            None => f(),
        }
    }

    /// The worker count the next operation would fan out across.
    fn effective_threads(&self) -> usize {
        self.jobs.unwrap_or_else(rayon::current_num_threads).max(1)
    }

    /// Whether a sweep of `n_items` items over `item_elems`-element
    /// scans falls under the minimum-work threshold and runs inline.
    fn runs_sequentially(&self, n_items: usize, item_elems: usize) -> bool {
        chunking_for(n_items, item_elems, self.effective_threads()) == Chunking::Sequential
    }

    /// Runs `n_items` indexed work items (each scanning `item_elems`
    /// trace elements) under the [`chunking_for`] policy, preserving
    /// item order exactly.
    fn execute<F>(&self, n_items: usize, item_elems: usize, f: F) -> Vec<InstanceResult>
    where
        F: Fn(usize) -> InstanceResult + Sync,
    {
        match chunking_for(n_items, item_elems, self.effective_threads()) {
            Chunking::Sequential => (0..n_items).map(f).collect(),
            Chunking::Chunked { chunk } => self.scoped(|| {
                let starts: Vec<usize> = (0..n_items).step_by(chunk).collect();
                let batches: Vec<Vec<InstanceResult>> = starts
                    .into_par_iter()
                    .map(|start| (start..(start + chunk).min(n_items)).map(&f).collect())
                    .collect();
                batches.into_iter().flatten().collect()
            }),
        }
    }

    /// Parallel form of [`crate::experiment::run_experiment`]; the result
    /// is byte-identical to the sequential call.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::experiment::run_experiment`].
    pub fn run(
        &self,
        values: &[f64],
        sampler: &(dyn Sampler + Sync),
        n_instances: usize,
        base_seed: u64,
    ) -> ExperimentResult {
        if self.runs_sequentially(n_instances, values.len()) {
            // Below the fan-out threshold the parallel entry point IS
            // the sequential runner — same function, zero overhead.
            return crate::experiment::run_experiment(values, sampler, n_instances, base_seed);
        }
        let true_mean = validate_experiment_inputs(values, n_instances);
        let instances = self.execute(n_instances, values.len(), |i| {
            let s = sampler.sample(values, derive_seed(base_seed, i as u64));
            InstanceResult {
                mean: s.mean(),
                n_samples: s.len(),
                n_qualified: 0,
            }
        });
        ExperimentResult {
            sampler: sampler.name(),
            rate: sampler.nominal_rate(),
            true_mean,
            instances,
        }
    }

    /// Parallel form of [`crate::experiment::run_bss_experiment`];
    /// byte-identical to the sequential call.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::experiment::run_bss_experiment`].
    pub fn run_bss(
        &self,
        values: &[f64],
        sampler: &BssSampler,
        n_instances: usize,
        base_seed: u64,
    ) -> ExperimentResult {
        if self.runs_sequentially(n_instances, values.len()) {
            return crate::experiment::run_bss_experiment(values, sampler, n_instances, base_seed);
        }
        let true_mean = validate_experiment_inputs(values, n_instances);
        let instances = self.execute(n_instances, values.len(), |i| {
            let out = sampler.sample_detailed(values, derive_seed(base_seed, i as u64));
            InstanceResult {
                mean: out.mean(),
                n_samples: out.total_kept(),
                n_qualified: out.qualified_count,
            }
        });
        ExperimentResult {
            sampler: "bss",
            rate: sampler.nominal_rate(),
            true_mean,
            instances,
        }
    }

    /// Fans a whole rate sweep — every `(rate, instance)` pair — across
    /// threads in one flat task list, avoiding the idle tail a
    /// rate-at-a-time loop leaves on wide machines. `make_sampler` builds
    /// the sampler for each rate (once); `instances_at` gives the
    /// instance count for each rate (figures cap instances at the
    /// systematic interval, `instances.min(c)`). Per-rate results are
    /// byte-identical to calling [`ParallelExperimentRunner::run`] (and
    /// therefore the sequential runner) rate by rate.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ParallelExperimentRunner::run`], applied per
    /// rate.
    pub fn run_rate_sweep<F, N>(
        &self,
        values: &[f64],
        rates: &[f64],
        make_sampler: F,
        instances_at: N,
        base_seed: u64,
    ) -> Vec<ExperimentResult>
    where
        F: Fn(f64) -> Box<dyn Sampler + Send + Sync> + Sync,
        N: Fn(f64) -> usize,
    {
        let true_mean = validate_experiment_inputs(values, 1);
        let counts: Vec<usize> = rates.iter().map(|&r| instances_at(r)).collect();
        assert!(counts.iter().all(|&c| c >= 1), "need at least one instance");
        // One sampler per rate, shared read-only by that rate's tasks.
        let samplers: Vec<Box<dyn Sampler + Send + Sync>> =
            rates.iter().map(|&r| make_sampler(r)).collect();
        // Flat (rate, instance) task list, executed in one ordered
        // (chunked) parallel map, then regrouped by rate via offsets.
        let tasks: Vec<(usize, usize)> = (0..rates.len())
            .flat_map(|r| (0..counts[r]).map(move |i| (r, i)))
            .collect();
        let flat = self.execute(tasks.len(), values.len(), |t| {
            let (r, i) = tasks[t];
            let s = samplers[r].sample(values, derive_seed(base_seed, i as u64));
            InstanceResult {
                mean: s.mean(),
                n_samples: s.len(),
                n_qualified: 0,
            }
        });
        let mut offset = 0usize;
        samplers
            .iter()
            .zip(&counts)
            .map(|(sampler, &count)| {
                let instances = flat[offset..offset + count].to_vec();
                offset += count;
                ExperimentResult {
                    sampler: sampler.name(),
                    rate: sampler.nominal_rate(),
                    true_mean,
                    instances,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::{OnlineTuning, ThresholdPolicy};
    use crate::experiment::{run_bss_experiment, run_experiment};
    use crate::sampler::{SimpleRandomSampler, StratifiedSampler, SystematicSampler};

    fn lumpy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / 97) % 11 == 0 { 40.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_for_all_samplers() {
        let vals = lumpy(30_000);
        let runner = ParallelExperimentRunner::new();
        let samplers: Vec<Box<dyn Sampler + Send + Sync>> = vec![
            Box::new(SystematicSampler::new(100)),
            Box::new(StratifiedSampler::new(100)),
            Box::new(SimpleRandomSampler::new(0.01)),
        ];
        for s in &samplers {
            for seed in [0u64, 7, 123] {
                let par = runner.run(&vals, s.as_ref(), 12, seed);
                let seq = run_experiment(&vals, s.as_ref(), 12, seed);
                assert_eq!(par.instances, seq.instances, "{} seed={seed}", s.name());
                assert_eq!(par.true_mean, seq.true_mean);
                assert_eq!(par.rate, seq.rate);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_for_bss() {
        let vals = lumpy(30_000);
        let bss = BssSampler::new(
            100,
            ThresholdPolicy::Online(OnlineTuning {
                n_pre: 16,
                ..OnlineTuning::default()
            }),
        )
        .unwrap()
        .with_l(10);
        let par = ParallelExperimentRunner::new().run_bss(&vals, &bss, 10, 5);
        let seq = run_bss_experiment(&vals, &bss, 10, 5);
        assert_eq!(par.instances, seq.instances);
    }

    #[test]
    fn jobs_cap_does_not_change_results() {
        let vals = lumpy(20_000);
        let s = SystematicSampler::new(50);
        let all = ParallelExperimentRunner::new().run(&vals, &s, 9, 3);
        for jobs in [1usize, 2, 3, 8] {
            let capped = ParallelExperimentRunner::new()
                .with_jobs(jobs)
                .run(&vals, &s, 9, 3);
            assert_eq!(capped.instances, all.instances, "jobs={jobs}");
        }
    }

    #[test]
    fn rate_sweep_matches_per_rate_runs() {
        let vals = lumpy(40_000);
        let rates = [0.02, 0.01, 0.005];
        let runner = ParallelExperimentRunner::new();
        let sweep = runner.run_rate_sweep(
            &vals,
            &rates,
            |r| Box::new(SystematicSampler::new((1.0 / r).round() as usize)),
            |r| if r < 0.01 { 4 } else { 8 },
            11,
        );
        assert_eq!(sweep.len(), rates.len());
        for (res, &r) in sweep.iter().zip(&rates) {
            let c = (1.0 / r).round() as usize;
            let inst = if r < 0.01 { 4 } else { 8 };
            let seq = run_experiment(&vals, &SystematicSampler::new(c), inst, 11);
            assert_eq!(res.instances, seq.instances, "rate={r}");
            assert_eq!(res.rate, seq.rate);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        ParallelExperimentRunner::new().run(&[], &SystematicSampler::new(4), 2, 0);
    }

    #[test]
    fn chunking_policy_thresholds() {
        // One worker, one item, or sub-threshold total work: inline.
        assert_eq!(chunking_for(30, 1 << 17, 1), Chunking::Sequential);
        assert_eq!(chunking_for(1, 1 << 22, 8), Chunking::Sequential);
        assert_eq!(
            chunking_for(3, 1 << 16, 8),
            Chunking::Sequential,
            "a ~200k-element sweep cannot fill two minimum-work tasks"
        );
        // Large items: fairness spreads the sweep across the workers.
        let big = chunking_for(30, 1 << 17, 8);
        assert_eq!(big, Chunking::Chunked { chunk: 4 });
        // Huge items: one item already clears the bar, fairness caps the
        // task count at the worker count.
        let huge = chunking_for(64, 1 << 22, 8);
        assert_eq!(huge, Chunking::Chunked { chunk: 8 });
        // Tiny items in a long sweep: chunks batch many items so every
        // task still clears the per-task minimum.
        match chunking_for(100_000, 100, 4) {
            Chunking::Chunked { chunk } => assert!(chunk as u64 * 100 >= MIN_TASK_ELEMS),
            seq => panic!("expected chunked, got {seq:?}"),
        }
    }

    #[test]
    fn chunked_and_sequential_paths_are_byte_equal_across_threshold() {
        // Straddle the minimum-work threshold from both sides with the
        // same sampler/seed; all strategies must agree bit for bit.
        let s = SimpleRandomSampler::new(0.02);
        for n in [6usize, 40] {
            let vals = lumpy(1 << 17);
            let seq = run_experiment(&vals, &s, n, 9);
            for jobs in [1usize, 2, 5, 16] {
                let par = ParallelExperimentRunner::new()
                    .with_jobs(jobs)
                    .run(&vals, &s, n, 9);
                assert_eq!(par.instances, seq.instances, "n={n} jobs={jobs}");
            }
        }
    }

    #[test]
    fn rate_sweep_chunked_matches_per_rate_runs_on_large_sweeps() {
        // A sweep big enough to trigger chunked fan-out must still be
        // byte-identical to the sequential per-rate reference.
        let vals = lumpy(1 << 16);
        let rates = [0.05, 0.02, 0.01, 0.005, 0.002];
        let sweep = ParallelExperimentRunner::new().with_jobs(4).run_rate_sweep(
            &vals,
            &rates,
            |r| Box::new(StratifiedSampler::new((1.0 / r).round() as usize)),
            |_| 16,
            21,
        );
        for (res, &r) in sweep.iter().zip(&rates) {
            let c = (1.0 / r).round() as usize;
            let seq = run_experiment(&vals, &StratifiedSampler::new(c), 16, 21);
            assert_eq!(res.instances, seq.instances, "rate={r}");
        }
    }
}
