//! Parallel experiment execution.
//!
//! [`ParallelExperimentRunner`] fans the instances of a multi-instance
//! sampling experiment — and whole rate sweeps — across threads while
//! staying **byte-identical** to the sequential
//! [`crate::experiment::run_experiment`] path: instance `i` depends only
//! on `derive_seed(base_seed, i)`, never on shared mutable state, so the
//! ordered parallel map reproduces the sequential result list exactly
//! (the `parallel_matches_sequential_*` tests pin this down).
//!
//! ## Example
//!
//! ```
//! use sst_core::{run_experiment, ParallelExperimentRunner, SystematicSampler};
//!
//! let trace: Vec<f64> = (0..40_000).map(|i| 1.0 + ((i / 400) % 7) as f64).collect();
//! let sampler = SystematicSampler::new(100);
//! let par = ParallelExperimentRunner::new().run(&trace, &sampler, 16, 7);
//! let seq = run_experiment(&trace, &sampler, 16, 7);
//! assert_eq!(par.instances, seq.instances);
//! ```

use crate::bss::BssSampler;
use crate::experiment::{validate_experiment_inputs, ExperimentResult, InstanceResult};
use crate::sampler::Sampler;
use rayon::prelude::*;
use sst_stats::rng::derive_seed;

/// Runs multi-instance experiments across threads.
///
/// `jobs = None` (the default) uses every available core; `Some(n)` caps
/// the worker count — `Some(1)` degenerates to the sequential path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelExperimentRunner {
    jobs: Option<usize>,
}

impl ParallelExperimentRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        ParallelExperimentRunner { jobs: None }
    }

    /// Caps the worker count at `n` (`n = 1` runs sequentially).
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n.max(1));
        self
    }

    /// The configured worker cap, if any.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }

    fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.jobs {
            Some(n) => rayon::with_num_threads(n, f),
            None => f(),
        }
    }

    /// Parallel form of [`crate::experiment::run_experiment`]; the result
    /// is byte-identical to the sequential call.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::experiment::run_experiment`].
    pub fn run(
        &self,
        values: &[f64],
        sampler: &(dyn Sampler + Sync),
        n_instances: usize,
        base_seed: u64,
    ) -> ExperimentResult {
        let true_mean = validate_experiment_inputs(values, n_instances);
        let instances: Vec<InstanceResult> = self.scoped(|| {
            (0..n_instances)
                .into_par_iter()
                .map(|i| {
                    let s = sampler.sample(values, derive_seed(base_seed, i as u64));
                    InstanceResult {
                        mean: s.mean(),
                        n_samples: s.len(),
                        n_qualified: 0,
                    }
                })
                .collect()
        });
        ExperimentResult {
            sampler: sampler.name(),
            rate: sampler.nominal_rate(),
            true_mean,
            instances,
        }
    }

    /// Parallel form of [`crate::experiment::run_bss_experiment`];
    /// byte-identical to the sequential call.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::experiment::run_bss_experiment`].
    pub fn run_bss(
        &self,
        values: &[f64],
        sampler: &BssSampler,
        n_instances: usize,
        base_seed: u64,
    ) -> ExperimentResult {
        let true_mean = validate_experiment_inputs(values, n_instances);
        let instances: Vec<InstanceResult> = self.scoped(|| {
            (0..n_instances)
                .into_par_iter()
                .map(|i| {
                    let out = sampler.sample_detailed(values, derive_seed(base_seed, i as u64));
                    InstanceResult {
                        mean: out.mean(),
                        n_samples: out.total_kept(),
                        n_qualified: out.qualified_count,
                    }
                })
                .collect()
        });
        ExperimentResult {
            sampler: "bss",
            rate: sampler.nominal_rate(),
            true_mean,
            instances,
        }
    }

    /// Fans a whole rate sweep — every `(rate, instance)` pair — across
    /// threads in one flat task list, avoiding the idle tail a
    /// rate-at-a-time loop leaves on wide machines. `make_sampler` builds
    /// the sampler for each rate (once); `instances_at` gives the
    /// instance count for each rate (figures cap instances at the
    /// systematic interval, `instances.min(c)`). Per-rate results are
    /// byte-identical to calling [`ParallelExperimentRunner::run`] (and
    /// therefore the sequential runner) rate by rate.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ParallelExperimentRunner::run`], applied per
    /// rate.
    pub fn run_rate_sweep<F, N>(
        &self,
        values: &[f64],
        rates: &[f64],
        make_sampler: F,
        instances_at: N,
        base_seed: u64,
    ) -> Vec<ExperimentResult>
    where
        F: Fn(f64) -> Box<dyn Sampler + Send + Sync> + Sync,
        N: Fn(f64) -> usize,
    {
        let true_mean = validate_experiment_inputs(values, 1);
        let counts: Vec<usize> = rates.iter().map(|&r| instances_at(r)).collect();
        assert!(counts.iter().all(|&c| c >= 1), "need at least one instance");
        // One sampler per rate, shared read-only by that rate's tasks.
        let samplers: Vec<Box<dyn Sampler + Send + Sync>> =
            rates.iter().map(|&r| make_sampler(r)).collect();
        // Flat (rate, instance) task list, executed in one ordered
        // parallel map, then regrouped by rate via offsets.
        let tasks: Vec<(usize, usize)> = (0..rates.len())
            .flat_map(|r| (0..counts[r]).map(move |i| (r, i)))
            .collect();
        let flat: Vec<InstanceResult> = self.scoped(|| {
            tasks
                .into_par_iter()
                .map(|(r, i)| {
                    let s = samplers[r].sample(values, derive_seed(base_seed, i as u64));
                    InstanceResult {
                        mean: s.mean(),
                        n_samples: s.len(),
                        n_qualified: 0,
                    }
                })
                .collect()
        });
        let mut offset = 0usize;
        samplers
            .iter()
            .zip(&counts)
            .map(|(sampler, &count)| {
                let instances = flat[offset..offset + count].to_vec();
                offset += count;
                ExperimentResult {
                    sampler: sampler.name(),
                    rate: sampler.nominal_rate(),
                    true_mean,
                    instances,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::{OnlineTuning, ThresholdPolicy};
    use crate::experiment::{run_bss_experiment, run_experiment};
    use crate::sampler::{SimpleRandomSampler, StratifiedSampler, SystematicSampler};

    fn lumpy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / 97) % 11 == 0 { 40.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_for_all_samplers() {
        let vals = lumpy(30_000);
        let runner = ParallelExperimentRunner::new();
        let samplers: Vec<Box<dyn Sampler + Send + Sync>> = vec![
            Box::new(SystematicSampler::new(100)),
            Box::new(StratifiedSampler::new(100)),
            Box::new(SimpleRandomSampler::new(0.01)),
        ];
        for s in &samplers {
            for seed in [0u64, 7, 123] {
                let par = runner.run(&vals, s.as_ref(), 12, seed);
                let seq = run_experiment(&vals, s.as_ref(), 12, seed);
                assert_eq!(par.instances, seq.instances, "{} seed={seed}", s.name());
                assert_eq!(par.true_mean, seq.true_mean);
                assert_eq!(par.rate, seq.rate);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_for_bss() {
        let vals = lumpy(30_000);
        let bss = BssSampler::new(
            100,
            ThresholdPolicy::Online(OnlineTuning {
                n_pre: 16,
                ..OnlineTuning::default()
            }),
        )
        .unwrap()
        .with_l(10);
        let par = ParallelExperimentRunner::new().run_bss(&vals, &bss, 10, 5);
        let seq = run_bss_experiment(&vals, &bss, 10, 5);
        assert_eq!(par.instances, seq.instances);
    }

    #[test]
    fn jobs_cap_does_not_change_results() {
        let vals = lumpy(20_000);
        let s = SystematicSampler::new(50);
        let all = ParallelExperimentRunner::new().run(&vals, &s, 9, 3);
        for jobs in [1usize, 2, 3, 8] {
            let capped = ParallelExperimentRunner::new()
                .with_jobs(jobs)
                .run(&vals, &s, 9, 3);
            assert_eq!(capped.instances, all.instances, "jobs={jobs}");
        }
    }

    #[test]
    fn rate_sweep_matches_per_rate_runs() {
        let vals = lumpy(40_000);
        let rates = [0.02, 0.01, 0.005];
        let runner = ParallelExperimentRunner::new();
        let sweep = runner.run_rate_sweep(
            &vals,
            &rates,
            |r| Box::new(SystematicSampler::new((1.0 / r).round() as usize)),
            |r| if r < 0.01 { 4 } else { 8 },
            11,
        );
        assert_eq!(sweep.len(), rates.len());
        for (res, &r) in sweep.iter().zip(&rates) {
            let c = (1.0 / r).round() as usize;
            let inst = if r < 0.01 { 4 } else { 8 };
            let seq = run_experiment(&vals, &SystematicSampler::new(c), inst, 11);
            assert_eq!(res.instances, seq.instances, "rate={r}");
            assert_eq!(res.rate, seq.rate);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        ParallelExperimentRunner::new().run(&[], &SystematicSampler::new(4), 2, 0);
    }
}
