//! The paper's evaluation metrics (§I definition of E(V); §VI metrics).

/// Relative mean underestimate `η = 1 − X_s/X_r` (Eq. 21), clamped at 0
/// from below so an overshooting estimator reports η = 0 rather than a
/// negative "underestimate". Use [`eta_signed`] when the sign matters.
///
/// # Panics
///
/// Panics if `true_mean <= 0`.
pub fn eta(true_mean: f64, sampled_mean: f64) -> f64 {
    assert!(true_mean > 0.0, "true mean must be positive");
    (1.0 - sampled_mean / true_mean).max(0.0)
}

/// Signed version of [`eta`] (negative when the estimator overshoots).
///
/// # Panics
///
/// Panics if `true_mean <= 0`.
pub fn eta_signed(true_mean: f64, sampled_mean: f64) -> f64 {
    assert!(true_mean > 0.0, "true mean must be positive");
    1.0 - sampled_mean / true_mean
}

/// The §VI efficiency metric `e = (1 − η) / log₁₀(N_t)` where `N_t` is
/// the total number of samples taken (normal + qualified): accuracy per
/// decade of sampling effort.
///
/// # Panics
///
/// Panics unless `n_total >= 2` (the log must be positive).
pub fn efficiency(eta: f64, n_total: usize) -> f64 {
    assert!(
        n_total >= 2,
        "need at least 2 samples for the efficiency metric"
    );
    (1.0 - eta) / (n_total as f64).log10()
}

/// The average variance of sampling results, `E(V) = E[(X̂ᵢ − X̄)²]`:
/// the mean squared deviation of per-instance sampled means from the
/// true mean — the fidelity index of §IV (Fig. 5's y-axis, "variance of
/// the sample mean").
///
/// Returns `0.0` for an empty instance list.
pub fn average_variance(instance_means: &[f64], true_mean: f64) -> f64 {
    if instance_means.is_empty() {
        return 0.0;
    }
    instance_means
        .iter()
        .map(|&m| (m - true_mean) * (m - true_mean))
        .sum::<f64>()
        / instance_means.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_basics() {
        assert_eq!(eta(10.0, 10.0), 0.0);
        assert!((eta(10.0, 6.6667) - 0.33333).abs() < 1e-4);
        // Overshoot clamps to zero (but the signed variant keeps it).
        assert_eq!(eta(10.0, 12.0), 0.0);
        assert!((eta_signed(10.0, 12.0) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn efficiency_matches_paper_example() {
        // §VI: 1−η = 0.922 with overhead ≈ 0.2 at moderate rates gives
        // e ≈ 0.37 when log10(N_t) ≈ 2.5.
        let e = efficiency(1.0 - 0.922, 316); // log10 ≈ 2.5
        assert!((e - 0.922 / 2.5).abs() < 1e-3);
    }

    #[test]
    fn efficiency_decreases_with_sample_count_at_fixed_eta() {
        assert!(efficiency(0.1, 100) > efficiency(0.1, 10_000));
    }

    #[test]
    fn average_variance_zero_for_perfect_instances() {
        assert_eq!(average_variance(&[5.0, 5.0, 5.0], 5.0), 0.0);
        assert_eq!(average_variance(&[], 5.0), 0.0);
    }

    #[test]
    fn average_variance_counts_bias_and_spread() {
        // Instances all off by 1: E(V) = 1 (pure bias).
        assert!((average_variance(&[4.0, 4.0], 5.0) - 1.0).abs() < 1e-12);
        // Symmetric spread ±1: E(V) = 1 as well.
        assert!((average_variance(&[4.0, 6.0], 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "true mean must be positive")]
    fn eta_rejects_nonpositive_mean() {
        eta(0.0, 1.0);
    }
}
