//! Streaming (push-based) counterparts of the offline samplers — the
//! form a router or monitoring tap actually deploys, where points arrive
//! one at a time and each must be kept or dropped immediately.
//!
//! Every streaming sampler is drop-in equivalent to its offline sibling:
//! feeding the same trace point-by-point reproduces exactly the samples
//! `Sampler::sample` would select with the same seed (stratified random
//! may differ on the final *partial* bucket — the offline version knows
//! where the trace ends, a stream does not; see
//! [`StreamingStratified`]).
//!
//! ```
//! use sst_core::stream::{StreamDecision, StreamSampler, StreamingSystematic};
//!
//! let mut s = StreamingSystematic::new(3, 0).unwrap();
//! let kept: Vec<bool> = (0..7)
//!     .map(|i| s.offer(i as f64).is_kept())
//!     .collect();
//! assert_eq!(kept, [true, false, false, true, false, false, true]);
//! ```

use crate::bss::{OnlineTuning, ThresholdPolicy};
use rand::Rng;
use sst_stats::rng::{derive_seed, rng_from_seed};
use sst_stats::RunningStats;

/// What a streaming sampler did with one offered point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamDecision {
    /// Not selected; not inspected.
    Skip,
    /// Selected by the base (normal) schedule.
    KeepNormal,
    /// Inspected as a BSS extra but below the threshold — cost without a
    /// kept sample.
    InspectOnly,
    /// Inspected as a BSS extra and kept (a qualified sample).
    KeepQualified,
}

impl StreamDecision {
    /// `true` when the point enters the sample set.
    pub fn is_kept(self) -> bool {
        matches!(
            self,
            StreamDecision::KeepNormal | StreamDecision::KeepQualified
        )
    }

    /// `true` when the point had to be looked at (kept or probed).
    pub fn is_inspected(self) -> bool {
        self != StreamDecision::Skip
    }
}

/// Point-in-time state of a streaming sampler: how much of the stream
/// it has consumed and what it cost.
///
/// Counters over disjoint stream segments add, so shard-level monitor
/// snapshots combine by field-wise addition — the sampler-state half of
/// the mergeable-summary contract ([`crate::summary::MergeableSummary`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerSnapshot {
    /// Points offered so far (the sampler's position).
    pub offered: usize,
    /// Points kept (entered the sample set).
    pub kept: usize,
    /// Points inspected (kept or probed — the paper's cost metric
    /// counts BSS extras that were looked at but not kept).
    pub inspected: usize,
}

impl SamplerSnapshot {
    /// Field-wise addition: the snapshot of two disjoint segments.
    pub fn merge_from(&mut self, other: &SamplerSnapshot) {
        self.offered += other.offered;
        self.kept += other.kept;
        self.inspected += other.inspected;
    }

    /// Counter deltas `(offered, kept, inspected)` taking `base` to
    /// `self`, or `None` when any counter moved backwards (the pair is
    /// not successive snapshots of one sampler). Counters are monotone
    /// integers, so `base + delta` reproduces `self` exactly.
    pub fn delta_from(&self, base: &SamplerSnapshot) -> Option<(u64, u64, u64)> {
        Some((
            self.offered.checked_sub(base.offered)? as u64,
            self.kept.checked_sub(base.kept)? as u64,
            self.inspected.checked_sub(base.inspected)? as u64,
        ))
    }

    /// Advances the counters by a [`SamplerSnapshot::delta_from`]
    /// delta. Returns `false` — leaving the snapshot untouched — on
    /// overflow or when the result would violate the
    /// `kept ≤ inspected ≤ offered` invariant.
    pub fn apply_delta(&mut self, (d_off, d_kept, d_insp): (u64, u64, u64)) -> bool {
        let (Some(offered), Some(kept), Some(inspected)) = (
            self.offered.checked_add(d_off as usize),
            self.kept.checked_add(d_kept as usize),
            self.inspected.checked_add(d_insp as usize),
        ) else {
            return false;
        };
        if kept > inspected || inspected > offered {
            return false;
        }
        *self = SamplerSnapshot {
            offered,
            kept,
            inspected,
        };
        true
    }
}

/// A push-based sampler: one decision per offered point.
pub trait StreamSampler {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Offers the next point of the stream (points arrive in order).
    fn offer(&mut self, value: f64) -> StreamDecision;

    /// Points offered so far.
    fn position(&self) -> usize;

    /// Current state snapshot (offered/kept/inspected counters).
    fn snapshot(&self) -> SamplerSnapshot;
}

/// Streaming systematic sampling: keep positions `offset + k·C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamingSystematic {
    interval: usize,
    offset: usize,
    pos: usize,
}

impl StreamingSystematic {
    /// Creates the sampler; `seed` selects the phase, matching
    /// [`crate::SystematicSampler`].
    ///
    /// # Errors
    ///
    /// Returns `Err` when `interval == 0`.
    pub fn new(interval: usize, seed: u64) -> Result<Self, crate::bss::BssConfigError> {
        crate::bss::BssSampler::new(interval, ThresholdPolicy::FixedAbsolute(1.0))?;
        Ok(StreamingSystematic {
            interval,
            offset: (seed % interval as u64) as usize,
            pos: 0,
        })
    }
}

impl StreamSampler for StreamingSystematic {
    fn name(&self) -> &'static str {
        "streaming-systematic"
    }

    fn offer(&mut self, _value: f64) -> StreamDecision {
        let keep = self.pos % self.interval == self.offset;
        self.pos += 1;
        if keep {
            StreamDecision::KeepNormal
        } else {
            StreamDecision::Skip
        }
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn snapshot(&self) -> SamplerSnapshot {
        // Kept positions are offset, offset+C, …: count in [0, pos).
        let kept = if self.pos > self.offset {
            (self.pos - 1 - self.offset) / self.interval + 1
        } else {
            0
        };
        SamplerSnapshot {
            offered: self.pos,
            kept,
            inspected: kept,
        }
    }
}

/// Streaming stratified random sampling: at each bucket boundary, draw
/// the bucket's single sample position in advance.
///
/// Matches [`crate::StratifiedSampler`] exactly on every *full* bucket;
/// on a final partial bucket the offline version redraws within the
/// shortened range while the stream (not knowing the end) may place its
/// target past the end and keep nothing.
#[derive(Clone, Debug)]
pub struct StreamingStratified {
    interval: usize,
    pos: usize,
    target: usize,
    kept: usize,
    rng: rand::rngs::StdRng,
}

impl StreamingStratified {
    /// Creates the sampler with the same seed derivation as the offline
    /// sibling.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `interval == 0`.
    pub fn new(interval: usize, seed: u64) -> Result<Self, crate::bss::BssConfigError> {
        crate::bss::BssSampler::new(interval, ThresholdPolicy::FixedAbsolute(1.0))?;
        let mut rng = rng_from_seed(derive_seed(seed, 0x5742));
        let target = rng.gen_range(0..interval);
        Ok(StreamingStratified {
            interval,
            pos: 0,
            target,
            kept: 0,
            rng,
        })
    }
}

impl StreamSampler for StreamingStratified {
    fn name(&self) -> &'static str {
        "streaming-stratified"
    }

    fn offer(&mut self, _value: f64) -> StreamDecision {
        let in_bucket = self.pos % self.interval;
        let keep = in_bucket == self.target;
        self.pos += 1;
        if self.pos.is_multiple_of(self.interval) {
            // Entering a new bucket: draw its target.
            self.target = self.rng.gen_range(0..self.interval);
        }
        if keep {
            self.kept += 1;
            StreamDecision::KeepNormal
        } else {
            StreamDecision::Skip
        }
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn snapshot(&self) -> SamplerSnapshot {
        SamplerSnapshot {
            offered: self.pos,
            kept: self.kept,
            inspected: self.kept,
        }
    }
}

/// Streaming simple random sampling via geometric skip-ahead — O(1) RNG
/// work per *kept* sample, not per offered point (and no transcendental
/// per draw: the gap comes from the shared table-driven
/// `GeometricGap`).
#[derive(Clone, Debug)]
pub struct StreamingSimpleRandom {
    /// Shared per-rate gap table (one per process, not per stream).
    gaps: Option<std::sync::Arc<crate::sampler::GeometricGap>>,
    pos: usize,
    /// Position (0-based) of the next point to keep.
    next_keep: usize,
    kept: usize,
    take_all: bool,
    rng: rand::rngs::StdRng,
}

impl StreamingSimpleRandom {
    /// Creates the sampler; reproduces [`crate::SimpleRandomSampler`]
    /// exactly for the same `(rate, seed)`.
    ///
    /// # Errors
    ///
    /// Returns `Err` for rates outside `(0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Result<Self, crate::bss::BssConfigError> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(crate::bss::BssConfigError::new("rate must be in (0,1]"));
        }
        let take_all = rate >= 1.0;
        let mut s = StreamingSimpleRandom {
            gaps: (!take_all).then(|| crate::sampler::GeometricGap::cached(rate)),
            pos: 0,
            next_keep: 0,
            kept: 0,
            take_all,
            rng: rng_from_seed(derive_seed(seed, 0x51D0)),
        };
        if !s.take_all {
            s.next_keep = s.draw_gap() - 1;
        }
        Ok(s)
    }

    /// Geometric(r) gap ≥ 1, identical arithmetic to the offline sampler.
    fn draw_gap(&mut self) -> usize {
        self.gaps
            .as_ref()
            .expect("gap table exists unless take_all")
            .draw(&mut self.rng)
    }
}

impl StreamSampler for StreamingSimpleRandom {
    fn name(&self) -> &'static str {
        "streaming-simple-random"
    }

    fn offer(&mut self, _value: f64) -> StreamDecision {
        let keep = self.take_all || self.pos == self.next_keep;
        if keep && !self.take_all {
            let gap = self.draw_gap();
            self.next_keep += gap;
        }
        self.pos += 1;
        if keep {
            self.kept += 1;
            StreamDecision::KeepNormal
        } else {
            StreamDecision::Skip
        }
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn snapshot(&self) -> SamplerSnapshot {
        SamplerSnapshot {
            offered: self.pos,
            kept: self.kept,
            inspected: self.kept,
        }
    }
}

/// Streaming Biased Systematic Sampling: the deployable form of the
/// paper's sampler. When a normal sample exceeds the (possibly online-
/// tuned) threshold, the positions of the `L` extras inside the current
/// interval are scheduled and inspected as the stream reaches them.
///
/// Equivalent to [`crate::bss::BssSampler::sample_detailed`] given the
/// same `(interval, policy, L, seed)`.
#[derive(Clone, Debug)]
pub struct StreamingBss {
    interval: usize,
    offset: usize,
    l: usize,
    pos: usize,
    threshold: f64,
    frozen_threshold: f64,
    online: Option<OnlineTuning>,
    running: RunningStats,
    /// Scheduled extra positions for the current interval (ascending;
    /// consumed front to back).
    pending: std::collections::VecDeque<usize>,
    normal_count: usize,
    qualified_count: usize,
    extras_inspected: usize,
}

impl StreamingBss {
    /// Creates the sampler. `l` is the extras budget per triggered
    /// interval (the offline sampler's `with_l`).
    ///
    /// # Errors
    ///
    /// Same validation as [`crate::bss::BssSampler::new`].
    pub fn new(
        interval: usize,
        policy: ThresholdPolicy,
        l: usize,
        seed: u64,
    ) -> Result<Self, crate::bss::BssConfigError> {
        crate::bss::BssSampler::new(interval, policy)?;
        let (threshold, online) = match policy {
            ThresholdPolicy::FixedAbsolute(a) => (a, None),
            ThresholdPolicy::RelativeToMean { epsilon, mean } => (epsilon * mean, None),
            ThresholdPolicy::Online(t) => (f64::INFINITY, Some(t)),
        };
        Ok(StreamingBss {
            interval,
            offset: (seed % interval as u64) as usize,
            l,
            pos: 0,
            threshold,
            frozen_threshold: threshold,
            online,
            running: RunningStats::new(),
            pending: std::collections::VecDeque::new(),
            normal_count: 0,
            qualified_count: 0,
            extras_inspected: 0,
        })
    }

    /// Normal (systematic) samples kept so far.
    pub fn normal_count(&self) -> usize {
        self.normal_count
    }

    /// Qualified extras kept so far.
    pub fn qualified_count(&self) -> usize {
        self.qualified_count
    }

    /// Extras inspected (kept or not) so far.
    pub fn extras_inspected(&self) -> usize {
        self.extras_inspected
    }

    /// The paper's overhead metric so far (`L′/N`).
    pub fn overhead(&self) -> f64 {
        if self.normal_count == 0 {
            0.0
        } else {
            self.qualified_count as f64 / self.normal_count as f64
        }
    }
}

impl StreamSampler for StreamingBss {
    fn name(&self) -> &'static str {
        "streaming-bss"
    }

    fn offer(&mut self, value: f64) -> StreamDecision {
        let pos = self.pos;
        self.pos += 1;

        // Scheduled extra?
        if self.pending.front() == Some(&pos) {
            self.pending.pop_front();
            self.extras_inspected += 1;
            if value > self.frozen_threshold {
                self.qualified_count += 1;
                self.running.push(value);
                return StreamDecision::KeepQualified;
            }
            return StreamDecision::InspectOnly;
        }

        if pos % self.interval != self.offset {
            return StreamDecision::Skip;
        }

        // Normal systematic sample. Arrival of the next normal sample
        // cancels any extras left over from the previous interval (they
        // were beyond the stream end in the offline formulation).
        self.pending.clear();
        self.normal_count += 1;
        self.running.push(value);
        if let Some(t) = self.online {
            self.threshold = if self.running.count() as usize >= t.n_pre {
                t.epsilon * self.running.mean()
            } else {
                f64::INFINITY
            };
        }
        // Freeze the threshold for this interval's extras, mirroring the
        // offline sampler ("based on the same threshold").
        self.frozen_threshold = self.threshold;

        if value > self.frozen_threshold && self.l > 0 {
            let mut prev = pos;
            for k in 1..=self.l {
                let p = pos + k * self.interval / (self.l + 1);
                if p <= prev || p >= pos + self.interval {
                    continue;
                }
                prev = p;
                self.pending.push_back(p);
            }
        }
        StreamDecision::KeepNormal
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn snapshot(&self) -> SamplerSnapshot {
        SamplerSnapshot {
            offered: self.pos,
            kept: self.normal_count + self.qualified_count,
            // Extras were inspected whether or not they qualified.
            inspected: self.normal_count + self.extras_inspected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::BssSampler;
    use crate::sampler::{Sampler, SimpleRandomSampler, StratifiedSampler, SystematicSampler};

    /// Runs a stream sampler over a slice, returning kept (index, value).
    fn collect(s: &mut dyn StreamSampler, vals: &[f64]) -> (Vec<usize>, Vec<f64>) {
        let mut idx = Vec::new();
        let mut kept = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            if s.offer(v).is_kept() {
                idx.push(i);
                kept.push(v);
            }
        }
        (idx, kept)
    }

    fn bursty(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if (i / 37) % 11 == 0 {
                    120.0 + (i % 7) as f64
                } else {
                    1.0
                }
            })
            .collect()
    }

    #[test]
    fn systematic_stream_matches_offline() {
        let vals = bursty(1013);
        for seed in [0u64, 3, 17] {
            let offline = SystematicSampler::new(8).sample(&vals, seed);
            let mut s = StreamingSystematic::new(8, seed).unwrap();
            let (idx, kept) = collect(&mut s, &vals);
            assert_eq!(idx, offline.indices());
            assert_eq!(kept, offline.values());
        }
    }

    #[test]
    fn stratified_stream_matches_offline_on_full_buckets() {
        let vals = bursty(1000); // 125 full buckets of 8
        for seed in [1u64, 9, 42] {
            let offline = StratifiedSampler::new(8).sample(&vals, seed);
            let mut s = StreamingStratified::new(8, seed).unwrap();
            let (idx, kept) = collect(&mut s, &vals);
            assert_eq!(idx, offline.indices());
            assert_eq!(kept, offline.values());
        }
    }

    #[test]
    fn simple_random_stream_matches_offline() {
        let vals = bursty(20_000);
        for seed in [2u64, 5, 100] {
            let offline = SimpleRandomSampler::new(0.05).sample(&vals, seed);
            let mut s = StreamingSimpleRandom::new(0.05, seed).unwrap();
            let (idx, kept) = collect(&mut s, &vals);
            assert_eq!(idx, offline.indices());
            assert_eq!(kept, offline.values());
        }
    }

    #[test]
    fn bss_stream_matches_offline_fixed_threshold() {
        let vals = bursty(5000);
        for seed in [0u64, 7, 77] {
            let offline = BssSampler::new(50, ThresholdPolicy::FixedAbsolute(50.0))
                .unwrap()
                .with_l(6)
                .sample_detailed(&vals, seed);
            let mut s =
                StreamingBss::new(50, ThresholdPolicy::FixedAbsolute(50.0), 6, seed).unwrap();
            let (idx, kept) = collect(&mut s, &vals);
            assert_eq!(idx, offline.samples.indices(), "seed {seed}");
            assert_eq!(kept, offline.samples.values());
            assert_eq!(s.normal_count(), offline.normal_count);
            assert_eq!(s.qualified_count(), offline.qualified_count);
            assert_eq!(s.extras_inspected(), offline.extras_inspected);
        }
    }

    #[test]
    fn bss_stream_matches_offline_online_policy() {
        let vals = bursty(20_000);
        let tuning = OnlineTuning {
            epsilon: 1.0,
            n_pre: 16,
            ..OnlineTuning::default()
        };
        let offline = BssSampler::new(100, ThresholdPolicy::Online(tuning))
            .unwrap()
            .with_l(8)
            .sample_detailed(&vals, 5);
        let mut s = StreamingBss::new(100, ThresholdPolicy::Online(tuning), 8, 5).unwrap();
        let (idx, kept) = collect(&mut s, &vals);
        assert_eq!(idx, offline.samples.indices());
        assert_eq!(kept, offline.samples.values());
        assert!((s.overhead() - offline.overhead()).abs() < 1e-12);
    }

    #[test]
    fn decisions_classify_correctly() {
        // C = 10, threshold 50, L = 1 → extra at pos + 5.
        let mut s = StreamingBss::new(10, ThresholdPolicy::FixedAbsolute(50.0), 1, 0).unwrap();
        let mut decisions = Vec::new();
        let vals = [
            100.0, 0.0, 0.0, 0.0, 0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0,
        ];
        for &v in &vals {
            decisions.push(s.offer(v));
        }
        use StreamDecision::*;
        assert_eq!(decisions[0], KeepNormal);
        assert_eq!(
            decisions[5], KeepQualified,
            "extra at offset 5 above threshold"
        );
        assert_eq!(decisions[10], KeepNormal, "next interval's normal sample");
        assert_eq!(decisions[1], Skip);
        assert!(!decisions[11].is_inspected());
    }

    #[test]
    fn inspect_only_counts_cost_without_keeping() {
        // Normal sample triggers, but the extra lands on a small value.
        let mut s = StreamingBss::new(4, ThresholdPolicy::FixedAbsolute(50.0), 1, 0).unwrap();
        let decisions: Vec<StreamDecision> =
            [100.0, 0.0, 1.0, 0.0].iter().map(|&v| s.offer(v)).collect();
        assert_eq!(decisions[2], StreamDecision::InspectOnly);
        assert_eq!(s.extras_inspected(), 1);
        assert_eq!(s.qualified_count(), 0);
    }

    #[test]
    fn snapshots_count_offered_kept_inspected() {
        let vals = bursty(5000);
        // Systematic / stratified / simple random: inspected == kept,
        // and the counters match a replayed decision tally.
        let mut samplers: Vec<Box<dyn StreamSampler>> = vec![
            Box::new(StreamingSystematic::new(7, 3).unwrap()),
            Box::new(StreamingStratified::new(7, 3).unwrap()),
            Box::new(StreamingSimpleRandom::new(0.13, 3).unwrap()),
            Box::new(StreamingBss::new(50, ThresholdPolicy::FixedAbsolute(50.0), 6, 3).unwrap()),
        ];
        for s in &mut samplers {
            let mut kept = 0usize;
            let mut inspected = 0usize;
            for &v in &vals {
                let d = s.offer(v);
                kept += usize::from(d.is_kept());
                inspected += usize::from(d.is_inspected());
            }
            let snap = s.snapshot();
            assert_eq!(
                snap,
                SamplerSnapshot {
                    offered: vals.len(),
                    kept,
                    inspected
                },
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn snapshot_merge_is_fieldwise_addition() {
        let mut a = SamplerSnapshot {
            offered: 10,
            kept: 3,
            inspected: 4,
        };
        let b = SamplerSnapshot {
            offered: 5,
            kept: 1,
            inspected: 1,
        };
        a.merge_from(&b);
        assert_eq!(
            a,
            SamplerSnapshot {
                offered: 15,
                kept: 4,
                inspected: 5
            }
        );
    }

    #[test]
    fn position_tracks_offered_points() {
        let mut s = StreamingSystematic::new(5, 0).unwrap();
        for i in 0..13 {
            assert_eq!(s.position(), i);
            s.offer(0.0);
        }
        assert_eq!(s.position(), 13);
    }

    #[test]
    fn invalid_configs_error() {
        assert!(StreamingSystematic::new(0, 0).is_err());
        assert!(StreamingStratified::new(0, 0).is_err());
        assert!(StreamingSimpleRandom::new(0.0, 0).is_err());
        assert!(StreamingSimpleRandom::new(1.5, 0).is_err());
        assert!(StreamingBss::new(0, ThresholdPolicy::FixedAbsolute(1.0), 5, 0).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn all_streams_match_offline(
                seed in 0u64..1000,
                interval in 1usize..32,
                n in 0usize..600,
            ) {
                let vals = bursty(n.max(1) * interval); // full buckets
                // Systematic.
                let off = SystematicSampler::new(interval).sample(&vals, seed);
                let mut s = StreamingSystematic::new(interval, seed).unwrap();
                let (idx, _) = collect(&mut s, &vals);
                prop_assert_eq!(idx, off.indices());
                // Stratified (full buckets only, by construction).
                let off = StratifiedSampler::new(interval).sample(&vals, seed);
                let mut s = StreamingStratified::new(interval, seed).unwrap();
                let (idx, _) = collect(&mut s, &vals);
                prop_assert_eq!(idx, off.indices());
                // BSS with fixed threshold.
                let off = BssSampler::new(interval, ThresholdPolicy::FixedAbsolute(50.0))
                    .unwrap()
                    .with_l(4)
                    .sample_detailed(&vals, seed);
                let mut s = StreamingBss::new(
                    interval,
                    ThresholdPolicy::FixedAbsolute(50.0),
                    4,
                    seed,
                ).unwrap();
                let (idx, _) = collect(&mut s, &vals);
                prop_assert_eq!(idx, off.samples.indices());
            }
        }
    }
}
