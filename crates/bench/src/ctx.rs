//! Shared experiment context: workload construction and rate grids at
//! two scales (quick for CI/tests, paper for full reproduction runs).

use sst_nettrace::TraceSynthesizer;
use sst_stats::TimeSeries;
use sst_traffic::SyntheticTraceSpec;

/// Workload scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Miniature traces for Criterion timing loops (sub-second figures).
    Tiny,
    /// Small traces, few instances — seconds per figure (CI/tests).
    Quick,
    /// Paper-sized traces (2^21-point synthetic, 40-minute real) and
    /// instance counts — the full reproduction.
    Paper,
}

/// Experiment context shared by all figure modules.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    /// The workload scale.
    pub scale: Scale,
    /// Base seed for everything (figures derive their own streams).
    pub seed: u64,
}

impl Ctx {
    /// Creates a context.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Ctx { scale, seed }
    }

    /// Synthetic trace length.
    pub fn synth_len(&self) -> usize {
        match self.scale {
            Scale::Tiny => 1 << 14,
            Scale::Quick => 1 << 17,
            Scale::Paper => 1 << 21,
        }
    }

    /// "Real" (Bell-Labs-like) trace duration, seconds.
    pub fn real_duration(&self) -> f64 {
        match self.scale {
            Scale::Tiny => 60.0,
            Scale::Quick => 240.0,
            Scale::Paper => 2400.0,
        }
    }

    /// Sampling instances per experiment point.
    pub fn instances(&self) -> usize {
        match self.scale {
            Scale::Tiny => 5,
            Scale::Quick => 9,
            Scale::Paper => 21,
        }
    }

    /// The paper's synthetic workload (H = 0.8, Pareto marginal) with a
    /// chosen marginal shape (the paper sweeps α ∈ [1.2, 1.6]).
    pub fn synthetic_trace(&self, alpha: f64, seed_offset: u64) -> TimeSeries {
        SyntheticTraceSpec::new()
            .length(self.synth_len())
            .hurst(0.8)
            .pareto_marginal(alpha, 5.68)
            .seed(self.seed.wrapping_add(seed_offset))
            .build()
    }

    /// The Bell-Labs-like packet trace binned at 10 ms into a bytes/s
    /// rate process (H ≈ 0.62, mean ≈ 1.21e4 B/s). The 10 ms granularity
    /// matches the paper's measured exceedance structure: active flows
    /// fill consecutive bins, so 1-burst periods span flow durations
    /// (heavy-tailed) instead of flickering with per-packet gaps.
    pub fn real_series(&self, seed_offset: u64) -> TimeSeries {
        TraceSynthesizer::bell_labs_like()
            .duration(self.real_duration())
            .synthesize(self.seed.wrapping_add(seed_offset))
            .to_rate_series(1e-2)
    }

    /// Log-spaced sampling rates keeping at least `min_samples` expected
    /// samples on a trace of `n` points.
    pub fn rates(&self, n: usize, lo: f64, hi: f64, points: usize, min_samples: usize) -> Vec<f64> {
        sst_sigproc::numeric::logspace(lo, hi, points)
            .into_iter()
            .filter(|r| r * n as f64 >= min_samples as f64)
            .collect()
    }

    /// The paper's synthetic-figure rate grid (1e-5…1e-1, clipped to the
    /// trace length).
    pub fn synth_rates(&self) -> Vec<f64> {
        self.rates(self.synth_len(), 1e-5, 1e-1, 9, 10)
    }

    /// The paper's real-trace rate grid (1e-5…1e-3, clipped — the
    /// low-rate end only survives at paper scale where the trace is
    /// long enough to yield samples).
    pub fn real_rates(&self) -> Vec<f64> {
        let n = (self.real_duration() / 1e-2) as usize;
        self.rates(n, 1e-5, 1e-2, 7, 10)
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new(Scale::Quick, 20050607)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        let q = Ctx::new(Scale::Quick, 1);
        let p = Ctx::new(Scale::Paper, 1);
        assert!(q.synth_len() < p.synth_len());
        assert!(q.real_duration() < p.real_duration());
        assert!(q.instances() < p.instances());
    }

    #[test]
    fn rate_grids_keep_minimum_samples() {
        let c = Ctx::default();
        for r in c.synth_rates() {
            assert!(r * c.synth_len() as f64 >= 10.0);
        }
        assert!(!c.synth_rates().is_empty());
        assert!(!c.real_rates().is_empty());
    }

    #[test]
    fn synthetic_trace_is_reproducible() {
        let c = Ctx::default();
        assert_eq!(c.synthetic_trace(1.5, 0), c.synthetic_trace(1.5, 0));
        assert_ne!(c.synthetic_trace(1.5, 0), c.synthetic_trace(1.5, 1));
    }

    #[test]
    fn real_series_has_expected_granularity() {
        let c = Ctx::default();
        let ts = c.real_series(0);
        assert_eq!(ts.dt(), 1e-2);
        assert_eq!(ts.len(), 24_000);
        assert!(ts.mean() > 0.0);
    }
}
