//! One module per figure of the paper's evaluation; each exposes
//! `run(&Ctx) -> FigureReport`.

pub mod ablation;
pub mod common;
pub mod ext_adaptive;
pub mod ext_claffy;
pub mod ext_dess;
pub mod ext_hurst;
pub mod ext_queueing;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;

use crate::ctx::Ctx;
use crate::report::FigureReport;

/// All figure ids in paper order.
pub const ALL: &[&str] = &[
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "ablation",
    "claffy",
    "dess",
    "adaptive",
    "hurstbench",
    "queueing",
];

/// Runs one figure by id.
pub fn run_one(id: &str, ctx: &Ctx) -> Option<FigureReport> {
    Some(match id {
        "fig02" => fig02::run(ctx),
        "fig03" => fig03::run(ctx),
        "fig04" => fig04::run(ctx),
        "fig05" => fig05::run(ctx),
        "fig06" => fig06::run(ctx),
        "fig07" => fig07::run(ctx),
        "fig08" => fig08::run(ctx),
        "fig09" => fig09::run(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "fig12" => fig12::run(ctx),
        "fig13" => fig13::run(ctx),
        "fig14" => fig14::run(ctx),
        "fig15" => fig15::run(ctx),
        "fig16" => fig16::run(ctx),
        "fig17" => fig17::run(ctx),
        "fig18" => fig18::run(ctx),
        "fig19" => fig19::run(ctx),
        "fig20" => fig20::run(ctx),
        "fig21" => fig21::run(ctx),
        "fig22" => fig22::run(ctx),
        "ablation" => ablation::run(ctx),
        "claffy" => ext_claffy::run(ctx),
        "dess" => ext_dess::run(ctx),
        "adaptive" => ext_adaptive::run(ctx),
        "hurstbench" => ext_hurst::run(ctx),
        "queueing" => ext_queueing::run(ctx),
        _ => return None,
    })
}
