//! Figure 11 — the ξ(ε) slice at L = 5: the two-root structure that
//! makes "unbiased BSS" a choice of ε₂.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::theory::{bias_parameter, max_bias, unbiased_epsilons};

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let (alpha, l) = (1.5, 5.0);
    let mut t = Table::new("Fig. 11: ξ(ε) at L = 5, α = 1.5", &["epsilon", "xi"]);
    for eps in sst_sigproc::numeric::logspace(0.34, 10.0, 20) {
        t.push_nums(&[eps, bias_parameter(l, eps, alpha)]);
    }
    let (eps_peak, xi_peak) = max_bias(l, alpha);
    let target = 1.0 + 0.5 * (xi_peak - 1.0);
    let roots = unbiased_epsilons(l, alpha, target, 0.34, 30.0);
    FigureReport {
        id: "fig11",
        headline: "two crossings of any attainable bias target".into(),
        tables: vec![t],
        notes: vec![
            format!("peak ξ = {} at ε = {}", fmt_num(xi_peak), fmt_num(eps_peak)),
            format!(
                "roots of ξ = {}: ε₁′ = {}, ε₂ = {} (ε₁ = (α−1)/α = 0.3333 is the exact ξ=1 point)",
                fmt_num(target),
                fmt_num(roots.first().copied().unwrap_or(f64::NAN)),
                fmt_num(roots.last().copied().unwrap_or(f64::NAN)),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_has_bump_shape() {
        let rep = run(&Ctx::default());
        let xs: Vec<f64> = rep.tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        let peak = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > xs[0] && peak > *xs.last().unwrap());
        assert!(xs.iter().all(|&x| x >= 1.0 - 1e-9));
    }
}
