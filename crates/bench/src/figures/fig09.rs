//! Figure 9 — the surface L(ε, η) of Eq. (23): how many extra samples
//! are needed to repair an underestimate η at threshold ε.

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::theory::l_paper_eq23;

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let etas = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut cols: Vec<String> = vec!["epsilon".into()];
    cols.extend(etas.iter().map(|e| format!("L(eta={e})")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 9: L(ε, η) from Eq. (23), α=1.5", &col_refs);
    for eps in [0.36, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let mut row = vec![eps];
        for &eta in &etas {
            row.push(l_paper_eq23(eta, eps, alpha).unwrap_or(f64::NAN));
        }
        t.push_nums(&row);
    }
    FigureReport {
        id: "fig09",
        headline: "L grows with η and with ε, and rockets as ε → ε₁".into(),
        tables: vec![t],
        notes: vec![
            "region ε ≤ (α−1)/α = 1/3 is infeasible (threshold below the marginal minimum)".into(),
            "monotone in η at every ε; U-shaped in ε with the minimum near ε ≈ 0.5-1".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_eta_and_blows_up_near_eps1() {
        let rep = run(&Ctx::default());
        let rows = &rep.tables[0].rows;
        // Monotone in η along every row.
        for row in rows {
            let vals: Vec<f64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[1] >= w[0], "not monotone in η: {row:?}");
            }
        }
        // First row (ε=0.36, near ε₁) must exceed the mid row (ε=1.0).
        let near: f64 = rows[0][3].parse().unwrap();
        let mid: f64 = rows[4][3].parse().unwrap();
        assert!(near > mid);
    }
}
