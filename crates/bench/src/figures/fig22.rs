//! Figure 22 — the average variance of BSS nearly overlaps systematic
//! sampling on both trace families (BSS inherits systematic's fidelity).

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::{run_bss_experiment, run_experiment, SystematicSampler};
use sst_stats::TimeSeries;

fn panel(
    title: &str,
    trace: &TimeSeries,
    rates: &[f64],
    instances: usize,
    seed: u64,
    alpha: f64,
) -> Table {
    let mut t = Table::new(title, &["rate", "systematic", "proposed(BSS)"]);
    for &r in rates {
        let c = (1.0 / r).round().max(1.0) as usize;
        let inst = instances.min(c);
        let sys = run_experiment(trace.values(), &SystematicSampler::new(c), inst, seed);
        let bss_sampler = BssSampler::new(
            c,
            ThresholdPolicy::Online(OnlineTuning {
                epsilon: 1.0,
                alpha,
                ..Default::default()
            }),
        )
        .expect("valid");
        let bss = run_bss_experiment(trace.values(), &bss_sampler, inst, seed);
        t.push_nums(&[r, sys.average_variance(), bss.average_variance()]);
    }
    t
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let synth = ctx.synthetic_trace(1.5, 22);
    let real = ctx.real_series(22);
    let a = panel(
        "Fig. 22(a): E(V), synthetic",
        &synth,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed + 22,
        1.5,
    );
    let b = panel(
        "Fig. 22(b): E(V), real-like",
        &real,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed + 22,
        1.71,
    );
    FigureReport {
        id: "fig22",
        headline: "BSS and systematic sampling have nearly identical E(V)".into(),
        tables: vec![a, b],
        notes: vec![
            "BSS's E(V) may sit slightly below systematic's: the bias toward the \
             real mean reduces the squared deviation E[(X̂ᵢ − X̄)²]"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_same_order_of_magnitude() {
        // E(V) of heavy-tailed means is noisy point-wise at quick scale;
        // compare the rate-aggregated curves.
        let rep = run(&Ctx::default());
        for t in &rep.tables {
            let (mut sys_sum, mut bss_sum) = (0.0f64, 0.0f64);
            for row in &t.rows {
                sys_sum += row[1].parse::<f64>().unwrap();
                bss_sum += row[2].parse::<f64>().unwrap();
            }
            if sys_sum > 0.0 && bss_sum > 0.0 {
                let ratio = bss_sum / sys_sum;
                assert!(ratio > 0.05 && ratio < 25.0, "{}: ratio={ratio}", t.title);
            }
        }
    }
}
