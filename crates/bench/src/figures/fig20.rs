//! Figure 20 — the efficiency metric e = (1−η)/log10(N_t): BSS buys
//! more accuracy per decade of samples (paper: averages 0.37 vs 0.26 vs
//! 0.30, i.e. +42% over systematic and +23% over simple random).

use crate::ctx::Ctx;
use crate::figures::fig18::eval_points;
use crate::report::{fmt_num, FigureReport, Table};

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let (points, _truth) = eval_points(ctx, 1.3);
    let mut t = Table::new(
        "Fig. 20: efficiency e vs rate, synthetic",
        &["rate", "systematic", "proposed(BSS)", "simple_random"],
    );
    let (mut es, mut eb, mut er) = (0.0, 0.0, 0.0);
    for p in &points {
        let sys = p.systematic.efficiency();
        let bss = p.bss.efficiency();
        let ran = p.simple.efficiency();
        es += sys;
        eb += bss;
        er += ran;
        t.push_nums(&[p.rate, sys, bss, ran]);
    }
    let n = points.len() as f64;
    let (es, eb, er) = (es / n, eb / n, er / n);
    FigureReport {
        id: "fig20",
        headline: "BSS achieves the highest sampling efficiency".into(),
        tables: vec![t],
        notes: vec![
            format!(
                "average e: BSS {} vs systematic {} vs simple {} (paper: 0.37 / 0.26 / 0.30)",
                fmt_num(eb),
                fmt_num(es),
                fmt_num(er)
            ),
            format!(
                "BSS gain: {}% over systematic, {}% over simple random (paper: 42% / 23%)",
                fmt_num(100.0 * (eb / es - 1.0)),
                fmt_num(100.0 * (eb / er - 1.0))
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bss_efficiency_wins_on_average() {
        let rep = run(&Ctx::default());
        let nums: Vec<f64> = rep.notes[0]
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let (bss, sys, ran) = (nums[0], nums[1], nums[2]);
        assert!(bss >= sys, "BSS {bss} vs systematic {sys}");
        assert!(bss >= ran * 0.95, "BSS {bss} vs simple {ran}");
    }
}
