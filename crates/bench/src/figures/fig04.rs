//! Figure 4 — Cochran's condition: δτ = R(τ+1) + R(τ−1) − 2R(τ) ≥ 0
//! for the power-law ACF at every β (the hypothesis of Theorem 2).

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_stats::model::{FgnAcf, PowerLawAcf};

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let betas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let taus: Vec<u64> = sst_sigproc::numeric::logspace(2.0, 100.0, 12)
        .into_iter()
        .map(|x| x.round() as u64)
        .collect();
    let mut cols: Vec<String> = vec!["tau".into()];
    cols.extend(betas.iter().map(|b| format!("delta(b={b})")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 4: δτ vs τ (power-law ACF, τ ≥ 2)", &col_refs);
    let mut min_delta = f64::INFINITY;
    for &tau in &taus {
        let mut row = vec![tau as f64];
        for &beta in &betas {
            let d = PowerLawAcf::new(beta).delta_tau(tau);
            min_delta = min_delta.min(d);
            row.push(d);
        }
        t.push_nums(&row);
    }

    // Companion panel: the exact fGn ACF covers τ = 1 as well.
    let mut t2 = Table::new(
        "companion: δτ under the exact fGn ACF (τ ≥ 1)",
        &["tau", "delta(H=0.55)", "delta(H=0.75)", "delta(H=0.95)"],
    );
    let mut min_fgn = f64::INFINITY;
    for tau in [1u64, 2, 4, 16, 64] {
        let mut row = vec![tau as f64];
        for h in [0.55, 0.75, 0.95] {
            let d = FgnAcf::new(h).delta_tau(tau);
            min_fgn = min_fgn.min(d);
            row.push(d);
        }
        t2.push_nums(&row);
    }
    FigureReport {
        id: "fig04",
        headline: "δτ ≥ 0 for self-similar ACFs ⇒ Theorem 2 applies".into(),
        tables: vec![t, t2],
        notes: vec![
            format!("min δτ over the power-law grid (τ≥2): {min_delta:.3e} (≥ 0)"),
            format!("min δτ over the fGn grid (τ≥1): {min_fgn:.3e} (≥ 0)"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_deltas_nonnegative() {
        let rep = run(&Ctx::default());
        for table in &rep.tables {
            for row in &table.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v >= -1e-15, "δτ = {v}");
                }
            }
        }
    }
}
