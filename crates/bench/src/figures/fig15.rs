//! Figure 15 — the qualified-sample cost L′/N over (L, ε): the overhead
//! budget that rules out small ε and large L.

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::theory::qualified_cost;

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let ls = [1.0, 2.0, 5.0, 10.0];
    let mut cols: Vec<String> = vec!["epsilon".into()];
    cols.extend(ls.iter().map(|l| format!("cost(L={l})")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 15: L'/N = L·s^(−2α) over (L, ε), α=1.5", &col_refs);
    for eps in [0.35, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let mut row = vec![eps];
        for &l in &ls {
            row.push(qualified_cost(l, eps, alpha));
        }
        t.push_nums(&row);
    }
    FigureReport {
        id: "fig15",
        headline: "cost explodes for ε < 0.5 and scales linearly with L".into(),
        tables: vec![t],
        notes: vec!["matches the paper's guidance: avoid small ε and large L".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_monotonicity() {
        let rep = run(&Ctx::default());
        let rows = &rep.tables[0].rows;
        // Decreasing in ε (down the column), increasing in L (across).
        for w in rows.windows(2) {
            let hi: f64 = w[0][2].parse().unwrap();
            let lo: f64 = w[1][2].parse().unwrap();
            assert!(lo <= hi);
        }
        for row in rows {
            let vals: Vec<f64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }
}
