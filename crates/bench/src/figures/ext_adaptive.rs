//! Extension experiment "adaptive" — pits the Choi-Park-Zhang adaptive
//! random sampler (rate adaptation, unbiased) against plain systematic
//! and online BSS (selection bias) on the paper's synthetic workload.
//!
//! The point the paper's §VII "lesson learned" makes in prose becomes
//! measurable here: on heavy-tailed traffic an *unbiased* scheme can
//! spend extra samples chasing variance and still underestimate the
//! mean, while BSS closes the gap by construction.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::adaptive::{AdaptiveConfig, AdaptiveRandomSampler};
use sst_core::bss::{calibrate_c_eta, BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::{Sampler, SystematicSampler};

struct Row {
    rate: f64,
    sys_mean: f64,
    adapt_mean: f64,
    adapt_spend: f64,
    bss_mean: f64,
    bss_spend: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn eval_rate(trace: &[f64], rate: f64, instances: usize, seed: u64, alpha: f64) -> Row {
    let n = trace.len() as f64;
    let c = (1.0 / rate).round().max(1.0) as usize;
    let sys = SystematicSampler::new(c);
    let adapt = AdaptiveRandomSampler::new(AdaptiveConfig {
        block_len: (8.0 / rate).round().max(64.0) as usize, // ≈ 8 samples per block
        initial_rate: rate,
        min_rate: (rate / 10.0).max(1e-7),
        max_rate: (rate * 10.0).min(1.0),
        ..AdaptiveConfig::default()
    })
    .expect("valid adaptive config");
    // A fair BSS deployment calibrates the Eq.-35 constant on a learning
    // prefix (the ablation experiment's finding: the c_eta = 1 default
    // overestimates η on milder traces and overshoots).
    let prefix = &trace[..trace.len() / 10];
    let c_eta = calibrate_c_eta(prefix, c, alpha, 5);
    let bss = BssSampler::new(
        c,
        ThresholdPolicy::Online(OnlineTuning {
            epsilon: 1.0,
            alpha,
            c_eta,
            ..Default::default()
        }),
    )
    .expect("valid BSS config");

    // Median across instances, matching the paper figures' robust
    // summary (single heavy-tailed instances are wild either way).
    let mut sys_means = Vec::with_capacity(instances);
    let mut adapt_means = Vec::with_capacity(instances);
    let mut bss_means = Vec::with_capacity(instances);
    let mut adapt_spend = 0.0;
    let mut bss_spend = 0.0;
    for i in 0..instances as u64 {
        let s = seed.wrapping_add(i);
        sys_means.push(sys.sample(trace, s).mean());
        let a = adapt.sample(trace, s);
        adapt_spend += a.len() as f64 / n;
        adapt_means.push(a.mean());
        let b = bss.sample_detailed(trace, s);
        bss_spend += (b.samples.len() as f64) / n;
        bss_means.push(b.mean());
    }
    let k = instances as f64;
    Row {
        rate,
        sys_mean: median(sys_means),
        adapt_mean: median(adapt_means),
        adapt_spend: adapt_spend / k,
        bss_mean: median(bss_means),
        bss_spend: bss_spend / k,
    }
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let alpha = 1.3;
    let trace = ctx.synthetic_trace(alpha, 0xADA);
    let truth = trace.mean();
    let rates = ctx.rates(trace.len(), 1e-4, 1e-2, 5, 20);

    let mut table = Table::new(
        "adaptive (Choi) vs systematic vs BSS — sampled mean and spend",
        &[
            "rate",
            "systematic",
            "adaptive",
            "adaptive_spend",
            "BSS",
            "BSS_spend",
            "real_mean",
        ],
    );
    let mut rows = Vec::new();
    for &r in &rates {
        let row = eval_rate(trace.values(), r, ctx.instances(), ctx.seed + 0xA, alpha);
        table.push_nums(&[
            row.rate,
            row.sys_mean,
            row.adapt_mean,
            row.adapt_spend,
            row.bss_mean,
            row.bss_spend,
            truth,
        ]);
        rows.push(row);
    }

    let err = |f: &dyn Fn(&Row) -> f64| {
        rows.iter()
            .map(|r| (f(r) - truth).abs() / truth)
            .sum::<f64>()
            / rows.len() as f64
    };
    let sys_err = err(&|r| r.sys_mean);
    let adapt_err = err(&|r| r.adapt_mean);
    let bss_err = err(&|r| r.bss_mean);
    let sys_bias = rows
        .iter()
        .map(|r| (r.sys_mean - truth) / truth)
        .sum::<f64>()
        / rows.len() as f64;
    let adapt_bias = rows
        .iter()
        .map(|r| (r.adapt_mean - truth) / truth)
        .sum::<f64>()
        / rows.len() as f64;
    let bss_bias = rows
        .iter()
        .map(|r| (r.bss_mean - truth) / truth)
        .sum::<f64>()
        / rows.len() as f64;
    let adapt_spend_ratio =
        rows.iter().map(|r| r.adapt_spend / r.rate).sum::<f64>() / rows.len() as f64;
    let bss_spend_ratio =
        rows.iter().map(|r| r.bss_spend / r.rate).sum::<f64>() / rows.len() as f64;

    FigureReport {
        id: "adaptive",
        headline: "rate adaptation alone cannot fix heavy-tailed mean bias".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "mean |rel err|: systematic {} / adaptive {} / BSS (prefix-calibrated) {}",
                fmt_num(sys_err),
                fmt_num(adapt_err),
                fmt_num(bss_err)
            ),
            format!(
                "adaptive spends {}x its nominal budget chasing variance and its \
                 signed bias stays at {} (unbiasedness cannot beat the stable-law \
                 convergence rate); BSS spends {}x — where systematic's deficit is \
                 large (Figs. 18/20) the biased samples close it, on mild traces \
                 calibration keeps BSS from overshooting",
                fmt_num(adapt_spend_ratio),
                fmt_num(adapt_bias),
                fmt_num(bss_spend_ratio)
            ),
            format!(
                "signed bias: systematic {} / adaptive {} / BSS {}",
                fmt_num(sys_bias),
                fmt_num(adapt_bias),
                fmt_num(bss_bias)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nums_in(s: &str) -> Vec<f64> {
        s.split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|t| t.parse().ok())
            .collect()
    }

    #[test]
    fn bss_counters_the_underestimation_adaptation_retains() {
        // The §VII lesson in its seed-robust directional form: rate
        // adaptation is still an unbiased estimator, so its signed bias
        // stays below zero, while BSS's deliberate selection bias moves
        // the estimate up from systematic's deficit. (Which *error
        // magnitude* wins between BSS and adaptive swings with the
        // trace realization at quick scale, so that is reported, not
        // asserted.)
        let rep = run(&Ctx::default());
        let nums = nums_in(&rep.notes[2]);
        let (sys_bias, adapt_bias, bss_bias) = (nums[0], nums[1], nums[2]);
        assert!(
            adapt_bias < 0.0,
            "adaptive should stay biased low: signed bias {adapt_bias}"
        );
        assert!(
            sys_bias < 0.0,
            "systematic should underestimate: signed bias {sys_bias}"
        );
        assert!(
            bss_bias > sys_bias,
            "BSS bias {bss_bias} should recover upward from systematic {sys_bias}"
        );
        assert!(!rep.tables[0].rows.is_empty());
    }

    #[test]
    fn adaptive_overspends_relative_to_bss() {
        let rep = run(&Ctx::default());
        let nums = nums_in(&rep.notes[1]);
        let (adapt_spend, _bias, bss_spend) = (nums[0], nums[1], nums[2]);
        assert!(
            adapt_spend > 2.0 * bss_spend,
            "adaptive spend {adapt_spend}x should dwarf BSS spend {bss_spend}x"
        );
    }
}
