//! Figure 16 — *biased* BSS with online tuning on synthetic traces:
//! (a) L fixed at 10 (ε₂ solved from the bias target), (b) ε fixed at 1
//! (L derived from Eq. 35 + the inverse bias formula).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_rel_err, mean_table};
use crate::report::{fmt_num, FigureReport};
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::theory::{eta_from_samples, max_bias, unbiased_epsilons};

/// Solves the threshold ε for a fixed L so the expected bias repairs the
/// η predicted at this sample count (upper root ε₂; peak ε as fallback
/// when the target exceeds what this L can deliver).
pub fn epsilon_for_fixed_l(l: usize, alpha: f64, n_samples: usize, c_eta: f64) -> f64 {
    let eta = eta_from_samples(n_samples.max(1), alpha, c_eta);
    let xi = 1.0 / (1.0 - eta);
    let (eps_peak, xi_peak) = max_bias(l as f64, alpha);
    if xi >= xi_peak {
        return eps_peak;
    }
    let roots = unbiased_epsilons(l as f64, alpha, xi, (alpha - 1.0) / alpha + 1e-3, 100.0);
    roots.last().copied().unwrap_or(eps_peak)
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let trace = ctx.synthetic_trace(alpha, 16);
    let truth = trace.mean();
    let n = trace.len();

    // (a) L fixed to 10, ε solved per rate.
    let points_a = compare(
        &trace,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed + 16,
        |c| {
            let eps = epsilon_for_fixed_l(10, alpha, n / c, 1.0);
            BssSampler::new(
                c,
                ThresholdPolicy::Online(OnlineTuning {
                    epsilon: eps,
                    alpha,
                    ..Default::default()
                }),
            )
            .expect("valid")
            .with_l(10)
        },
    );
    // (b) ε fixed to 1, L derived online.
    let points_b = compare(
        &trace,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed + 16,
        |c| crate::figures::common::online_bss(&trace, c, alpha),
    );

    let t_a = mean_table(
        "Fig. 16(a): biased BSS, L=10 fixed, synthetic",
        &points_a,
        truth,
    );
    let t_b = mean_table(
        "Fig. 16(b): biased BSS, ε=1 fixed, synthetic",
        &points_b,
        truth,
    );
    let err_bss = mean_rel_err(&points_b, truth, |p| p.bss.median_mean());
    let err_sys = mean_rel_err(&points_b, truth, |p| p.systematic.median_mean());
    let signed_bias = |get: &dyn Fn(&crate::figures::common::RatePoint) -> f64| {
        points_b
            .iter()
            .map(|p| (get(p) - truth) / truth)
            .sum::<f64>()
            / points_b.len() as f64
    };
    let bias_bss = signed_bias(&|p| p.bss.median_mean());
    let bias_sys = signed_bias(&|p| p.systematic.median_mean());
    FigureReport {
        id: "fig16",
        headline: "online-tuned biased BSS tracks the real mean far better".into(),
        tables: vec![t_a, t_b],
        notes: vec![
            format!(
                "panel (b) mean relative error: BSS {} vs systematic {}",
                fmt_num(err_bss),
                fmt_num(err_sys)
            ),
            format!(
                "panel (b) signed bias: BSS {} vs systematic {}",
                fmt_num(bias_bss),
                fmt_num(bias_sys)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_bss_recovers_systematic_underestimate() {
        // The paper's directional claim, which is stable at quick scale
        // (which error magnitude wins varies with the trace realization;
        // the *signs* do not): unbiased systematic sampling lands below
        // the heavy-tailed true mean, and BSS's deliberate bias moves
        // the estimate up from there.
        let ctx = Ctx::default();
        let rep = run(&ctx);
        let note = &rep.notes[1];
        let nums: Vec<f64> = note
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let (bss_bias, sys_bias) = (nums[nums.len() - 2], nums[nums.len() - 1]);
        assert!(
            sys_bias < 0.0,
            "systematic should underestimate: signed bias {sys_bias}"
        );
        assert!(
            bss_bias > sys_bias,
            "BSS bias {bss_bias} should recover upward from systematic {sys_bias}"
        );
        // Sanity: the recovery must not blow past the truth wildly.
        assert!(
            bss_bias.abs() < 0.5,
            "BSS bias {bss_bias} out of any reasonable range"
        );
    }

    #[test]
    fn epsilon_solver_is_sane() {
        // More samples → smaller η → smaller bias target → larger ε₂
        // would overshoot... the solver must return finite positive ε.
        for n in [50usize, 500, 50_000] {
            let eps = epsilon_for_fixed_l(10, 1.5, n, 1.0);
            assert!(eps.is_finite() && eps > 0.33, "n={n} eps={eps}");
        }
    }
}
