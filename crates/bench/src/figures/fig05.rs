//! Figure 5 — average variance E(V) of the three techniques vs sampling
//! rate, on synthetic and real traffic. Expected ordering (Theorem 2):
//! systematic ≤ stratified ≤ simple random.

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use rayon::prelude::*;
use sst_core::{run_experiment, SimpleRandomSampler, StratifiedSampler, SystematicSampler};
use sst_stats::TimeSeries;

fn panel(title: &str, trace: &TimeSeries, rates: &[f64], instances: usize, seed: u64) -> Table {
    let mut t = Table::new(
        title,
        &["rate", "systematic", "stratified", "simple_random"],
    );
    let vals = trace.values();
    let rows: Vec<Vec<f64>> = rates
        .par_iter()
        .map(|&r| {
            let c = (1.0 / r).round().max(1.0) as usize;
            let sys = run_experiment(vals, &SystematicSampler::new(c), instances.min(c), seed);
            let strat = run_experiment(vals, &StratifiedSampler::new(c), instances, seed);
            let ran = run_experiment(vals, &SimpleRandomSampler::new(r), instances, seed);
            vec![
                r,
                sys.average_variance(),
                strat.average_variance(),
                ran.average_variance(),
            ]
        })
        .collect();
    for row in rows {
        t.push_nums(&row);
    }
    t
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let synth = ctx.synthetic_trace(1.5, 5);
    let real = ctx.real_series(5);
    let a = panel(
        "Fig. 5(a): E(V) vs rate, synthetic (H=0.8)",
        &synth,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed,
    );
    let b = panel(
        "Fig. 5(b): E(V) vs rate, real-like (H≈0.62)",
        &real,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed,
    );

    // How often does the Theorem-2 ordering hold row-wise?
    let mut wins = 0usize;
    let mut total = 0usize;
    for t in [&a, &b] {
        for row in &t.rows {
            let sys: f64 = row[1].parse().unwrap();
            let ran: f64 = row[3].parse().unwrap();
            total += 1;
            if sys <= ran * 1.05 {
                wins += 1;
            }
        }
    }
    FigureReport {
        id: "fig05",
        headline: "systematic sampling gives the smallest average variance".into(),
        tables: vec![a, b],
        notes: vec![format!(
            "systematic ≤ simple-random (5% slack) in {wins}/{total} rate points \
             (heavy-tailed E(V) is noisy at single-realization scale; the ensemble \
             ordering is verified in sst-core's variance_ordering test)"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_orders_mostly() {
        let rep = run(&Ctx::default());
        assert_eq!(rep.tables.len(), 2);
        assert!(!rep.tables[0].rows.is_empty());
        // E(V) should broadly decrease with rate for every sampler.
        for t in &rep.tables {
            let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
            let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
            assert!(last <= first, "{}: E(V) should fall with rate", t.title);
        }
    }
}
