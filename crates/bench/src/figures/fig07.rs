//! Figure 7 — the 1-burst period B of the exceedance process
//! q(t) = 1{f(t) > a_th} is heavy-tailed (the observation BSS rests on).

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_stats::burst::BurstAnalysis;
use sst_stats::{Ecdf, TimeSeries};

fn panel(title: &str, trace: &TimeSeries) -> (Table, Option<f64>) {
    let analysis = BurstAnalysis::at_relative_threshold(trace.values(), 0.5);
    let bursts: Vec<f64> = analysis.bursts.iter().map(|&b| b as f64).collect();
    let mut t = Table::new(title, &["burst_len", "ccdf"]);
    if !bursts.is_empty() {
        let e = Ecdf::new(&bursts);
        for (x, p) in e.ccdf_curve_log(14) {
            t.push_nums(&[x, p]);
        }
    }
    (t, analysis.tail_fit.map(|f| f.alpha))
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let synth = ctx.synthetic_trace(1.5, 7);
    let real = ctx.real_series(7);
    let (a, alpha_a) = panel(
        "Fig. 7(a): CCDF of 1-burst period B, synthetic (ε=0.5)",
        &synth,
    );
    let (b, alpha_b) = panel(
        "Fig. 7(b): CCDF of 1-burst period B, real-like (ε=0.5)",
        &real,
    );

    // The ε sweep of §V-B: α stays in a heavy-tailed band.
    let mut sweep = Table::new(
        "ε sweep: fitted burst-tail α",
        &["epsilon", "alpha_synth", "alpha_real"],
    );
    for eps in [0.3, 0.5, 1.0, 1.5] {
        let fa = BurstAnalysis::at_relative_threshold(synth.values(), eps)
            .tail_fit
            .map_or(f64::NAN, |f| f.alpha);
        let fb = BurstAnalysis::at_relative_threshold(real.values(), eps)
            .tail_fit
            .map_or(f64::NAN, |f| f.alpha);
        sweep.push_nums(&[eps, fa, fb]);
    }
    FigureReport {
        id: "fig07",
        headline: "1-burst periods are heavy-tailed (Pareto-fit CCDF lines)".into(),
        tables: vec![a, b, sweep],
        notes: vec![
            format!(
                "fitted α at ε=0.5: synthetic {} (paper 1.3), real-like {} (paper 1.65)",
                alpha_a.map_or("n/a".into(), fmt_num),
                alpha_b.map_or("n/a".into(), fmt_num)
            ),
            "paper's band over the ε sweep: α ∈ [1.2, 1.8]".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_tails_are_heavy() {
        let rep = run(&Ctx::default());
        // The ε sweep fits must exist and stay in a heavy-tail band.
        for row in &rep.tables[2].rows {
            for cell in &row[1..] {
                let a: f64 = cell.parse().unwrap();
                if a.is_finite() {
                    assert!(a > 0.5 && a < 3.5, "α={a}");
                }
            }
        }
    }
}
