//! Figure 19 — headline evaluation on the real-like traces: sampled mean
//! and BSS overhead (paper: overhead ≈ 0.3).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_table, overhead_table};
use crate::report::{fmt_num, FigureReport};

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let alpha = 1.71;
    let trace = ctx.real_series(19);
    let truth = trace.mean();
    let points = compare(
        &trace,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed + 19,
        |c| crate::figures::common::online_bss(&trace, c, alpha),
    );
    let a = mean_table(
        "Fig. 19(a): sampled mean, real-like (mean 1.21e4 B/s)",
        &points,
        truth,
    );
    let b = overhead_table("Fig. 19(b): BSS sampling overhead", &points);
    let avg_overhead =
        points.iter().map(|p| p.bss.mean_overhead()).sum::<f64>() / points.len() as f64;
    FigureReport {
        id: "fig19",
        headline: "BSS on real-like traffic: better means, bounded overhead".into(),
        tables: vec![a, b],
        notes: vec![format!(
            "mean overhead = {} (paper: ≈ 0.3)",
            fmt_num(avg_overhead)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bss_mean_at_least_systematic_and_overhead_bounded() {
        let rep = run(&Ctx::default());
        for row in &rep.tables[0].rows {
            let sys: f64 = row[1].parse().unwrap();
            let bss: f64 = row[2].parse().unwrap();
            let truth: f64 = row[4].parse().unwrap();
            // BSS must not *under*-perform systematic by more than noise.
            assert!(bss >= sys - 0.2 * truth, "sys={sys} bss={bss}");
        }
        for row in &rep.tables[1].rows {
            let o: f64 = row[1].parse().unwrap();
            assert!(o < 1.5, "overhead {o}");
        }
    }
}
