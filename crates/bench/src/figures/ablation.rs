//! Ablation study (beyond the paper): how much does each BSS design
//! choice matter?
//!
//! * **tuning strategy** — Eq.-35 default (`c_eta = 1`) vs per-trace
//!   `c_eta` calibration vs direct empirical L tuning on a learning
//!   prefix (the paper's future-work question);
//! * **L sensitivity** — fixed L sweep at ε = 1;
//! * **ε sensitivity** — threshold sweep at the online-derived L.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::bss::{calibrate_c_eta, tune_l_on_prefix, BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::{run_bss_experiment, run_experiment, SystematicSampler};
use sst_stats::TimeSeries;

fn median_err(trace: &TimeSeries, sampler: &BssSampler, instances: usize, seed: u64) -> f64 {
    let truth = trace.mean();
    let res = run_bss_experiment(trace.values(), sampler, instances, seed);
    (res.median_mean() - truth).abs() / truth
}

/// Runs the ablation.
pub fn run(ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let trace = ctx.synthetic_trace(alpha, 99);
    let truth = trace.mean();
    let instances = ctx.instances();
    let rates: Vec<f64> = ctx.synth_rates().into_iter().take(4).collect(); // low-rate regime

    // (1) Tuning strategies.
    let mut t1 = Table::new(
        "ablation A: online tuning strategy (median |rel. error|, low rates)",
        &[
            "rate",
            "systematic",
            "eq35_default",
            "calibrated_c",
            "tuned_L",
        ],
    );
    for &r in &rates {
        let c = (1.0 / r).round().max(1.0) as usize;
        let sys = {
            let res = run_experiment(
                trace.values(),
                &SystematicSampler::new(c),
                instances.min(c),
                ctx.seed,
            );
            (res.median_mean() - truth).abs() / truth
        };
        let default_tuning = OnlineTuning {
            epsilon: 1.0,
            alpha,
            ..OnlineTuning::default()
        };
        let default = BssSampler::new(c, ThresholdPolicy::Online(default_tuning)).expect("valid");
        let prefix = &trace.values()[..trace.len() / 4];
        let c_eta = calibrate_c_eta(prefix, c, alpha, 7);
        let calibrated = BssSampler::new(
            c,
            ThresholdPolicy::Online(OnlineTuning {
                c_eta,
                ..default_tuning
            }),
        )
        .expect("valid");
        let l = tune_l_on_prefix(prefix, c, default_tuning, &[0, 1, 2, 4, 8, 16], 7);
        let tuned = BssSampler::new(c, ThresholdPolicy::Online(default_tuning))
            .expect("valid")
            .with_l(l);
        t1.push_nums(&[
            r,
            sys,
            median_err(&trace, &default, instances.min(c), ctx.seed),
            median_err(&trace, &calibrated, instances.min(c), ctx.seed),
            median_err(&trace, &tuned, instances.min(c), ctx.seed),
        ]);
    }

    // (2) L sensitivity at a fixed mid rate.
    let c_mid = 1000usize;
    let mut t2 = Table::new(
        "ablation B: fixed-L sweep at ε = 1, rate 1e-3",
        &["L", "rel_error", "overhead"],
    );
    for l in [0usize, 1, 2, 4, 8, 16, 32, 64] {
        let s = BssSampler::new(
            c_mid,
            ThresholdPolicy::Online(OnlineTuning {
                epsilon: 1.0,
                alpha,
                ..OnlineTuning::default()
            }),
        )
        .expect("valid")
        .with_l(l);
        let res = run_bss_experiment(trace.values(), &s, instances, ctx.seed + 1);
        t2.push_nums(&[
            l as f64,
            (res.median_mean() - truth).abs() / truth,
            res.mean_overhead(),
        ]);
    }

    // (3) ε sensitivity with online L.
    let mut t3 = Table::new(
        "ablation C: ε sweep with online-derived L, rate 1e-3",
        &["epsilon", "rel_error", "overhead"],
    );
    for eps in [0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let s = BssSampler::new(
            c_mid,
            ThresholdPolicy::Online(OnlineTuning {
                epsilon: eps,
                alpha,
                ..OnlineTuning::default()
            }),
        )
        .expect("valid");
        let res = run_bss_experiment(trace.values(), &s, instances, ctx.seed + 2);
        t3.push_nums(&[
            eps,
            (res.median_mean() - truth).abs() / truth,
            res.mean_overhead(),
        ]);
    }

    FigureReport {
        id: "ablation",
        headline: "BSS design-choice sensitivity (beyond the paper)".into(),
        tables: vec![t1, t2, t3],
        notes: vec![
            format!("trace: synthetic α={alpha}, truth {}", fmt_num(truth)),
            "ablation B shows the overshoot regime: beyond the model-optimal L the \
             error grows again while overhead climbs linearly — the paper's Fig. 15 \
             guidance from the measurement side"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_l_zero_matches_systematic() {
        let rep = run(&Ctx::default());
        assert_eq!(rep.tables.len(), 3);
        // In ablation B, L = 0 must have zero overhead.
        let row0 = &rep.tables[1].rows[0];
        assert_eq!(row0[0], "0");
        let overhead: f64 = row0[2].parse().unwrap();
        assert_eq!(overhead, 0.0);
    }

    #[test]
    fn overhead_grows_with_l() {
        let rep = run(&Ctx::default());
        let overheads: Vec<f64> = rep.tables[1]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(overheads.last().unwrap() > &overheads[1]);
    }
}
