//! Figure 13 — "unbiased" BSS on the real-like traces (the paper's
//! settings (L=10, ε=1.809) and (L=8, ε=1.68) with α = 1.71).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_table};
use crate::report::{fmt_num, FigureReport};
use sst_core::bss::{BssSampler, ThresholdPolicy};

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let trace = ctx.real_series(13);
    let truth = trace.mean();
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for (l, eps, label) in [
        (10usize, 1.809, "(a) L=10, ε=1.809"),
        (8, 1.68, "(b) L=8, ε=1.68"),
    ] {
        let points = compare(
            &trace,
            &ctx.real_rates(),
            ctx.instances(),
            ctx.seed + 13,
            |c| {
                BssSampler::new(
                    c,
                    ThresholdPolicy::RelativeToMean {
                        epsilon: eps,
                        mean: truth,
                    },
                )
                .expect("valid")
                .with_l(l)
            },
        );
        tables.push(mean_table(
            &format!("Fig. 13{label}: sampled mean, real-like"),
            &points,
            truth,
        ));
        let lowest = &points[0];
        notes.push(format!(
            "{label}: at r={} BSS − systematic = {}",
            fmt_num(lowest.rate),
            fmt_num(lowest.bss.median_mean() - lowest.systematic.median_mean()),
        ));
    }
    FigureReport {
        id: "fig13",
        headline: "unbiased-contour BSS on real-like traces: same story as Fig. 12".into(),
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_full_rate_grid() {
        let rep = run(&Ctx::default());
        assert_eq!(rep.tables.len(), 2);
        for t in &rep.tables {
            assert!(!t.rows.is_empty());
            // All sampled means positive and below ~2× truth.
            for row in &t.rows {
                let truth: f64 = row[4].parse().unwrap();
                for cell in &row[1..4] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v >= 0.0 && v < truth * 4.0, "mean {v} out of band");
                }
            }
        }
    }
}
