//! Extension experiment "claffy" — the related-work claim the paper's
//! §I opens with: Claffy-Polyzos-Braun found that *event-driven*
//! sampling outperforms *time-driven* sampling, with small differences
//! within each class. We replay that comparison on the Bell-Labs-like
//! packet trace: all six trigger × pattern combinations at a matched
//! expected rate. The decisive metric is the KS distance of the
//! *preceding inter-arrival gap* distribution: a timer selects the
//! first packet after a tick, so its preceding gap is length-biased —
//! the structural distortion of time-driven sampling. Packet-size KS
//! is reported alongside (a weaker, correlation-mediated effect).

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_nettrace::pktsampling::{all_samplers, Trigger};
use sst_nettrace::TraceSynthesizer;

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let duration = match ctx.scale {
        crate::ctx::Scale::Tiny => 60.0,
        crate::ctx::Scale::Quick => 240.0,
        crate::ctx::Scale::Paper => 1200.0,
    };
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(duration)
        .synthesize(ctx.seed.wrapping_add(0xC1AF));

    let every = 50; // 1-in-50 expected rate for every sampler
    let mut table = Table::new(
        "Claffy replay: six samplers at a matched 1-in-50 rate",
        &["sampler", "rate", "ks(gap)", "ks(size)"],
    );
    let mut class_gap = [(0.0f64, 0usize); 2]; // [event, time]
    for sampler in all_samplers(&trace, every) {
        let mut gap_ks = 0.0;
        let mut size_ks = 0.0;
        let mut rate = 0.0;
        let runs = ctx.instances() as u64;
        for seed in 0..runs {
            let out = sampler.sample(&trace, ctx.seed.wrapping_add(seed));
            gap_ks += out.gap_ks_distance(&trace);
            size_ks += out.size_ks_distance(&trace);
            rate += out.achieved_rate();
        }
        let n = runs as f64;
        let (gap_ks, size_ks, rate) = (gap_ks / n, size_ks / n, rate / n);
        let class = match sampler.trigger() {
            Trigger::EventDriven { .. } => 0,
            Trigger::TimeDriven { .. } => 1,
        };
        class_gap[class].0 += gap_ks;
        class_gap[class].1 += 1;
        table.push_row(vec![
            sampler.name(),
            fmt_num(rate),
            fmt_num(gap_ks),
            fmt_num(size_ks),
        ]);
    }
    let event_avg = class_gap[0].0 / class_gap[0].1 as f64;
    let time_avg = class_gap[1].0 / class_gap[1].1 as f64;

    FigureReport {
        id: "claffy",
        headline: "event-driven beats time-driven packet sampling (related-work replay)".into(),
        tables: vec![table],
        notes: vec![format!(
            "class-average gap-KS: event-driven {} vs time-driven {} \
                 (Claffy et al.: event-driven wins, within-class spread small)",
            fmt_num(event_avg),
            fmt_num(time_avg)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_class_no_worse_than_time_class() {
        let rep = run(&Ctx::default());
        let nums: Vec<f64> = rep.notes[0]
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let (event, time) = (nums[0], nums[1]);
        assert!(
            event < time,
            "event-driven gap-KS {event} should beat time-driven {time}"
        );
        assert_eq!(rep.tables[0].rows.len(), 6);
    }
}
