//! Figure 8 — the traffic marginal f(t) itself is heavy-tailed: CCDF of
//! the binned process with a fitted Pareto line (synthetic α ≈ 1.5,
//! real ≈ 1.71).

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_stats::tailfit::fit_pareto_ccdf;
use sst_stats::{Ecdf, TimeSeries};

fn panel(title: &str, trace: &TimeSeries) -> (Table, f64) {
    let positive: Vec<f64> = trace
        .values()
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .collect();
    let mut t = Table::new(title, &["f(t)", "ccdf", "pareto_fit"]);
    let fit = fit_pareto_ccdf(&positive, 0.5).expect("enough data for a tail fit");
    let e = Ecdf::new(&positive);
    for (x, p) in e.ccdf_curve_log(14) {
        t.push_nums(&[x, p, fit.ccdf(x)]);
    }
    (t, fit.alpha)
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let synth = ctx.synthetic_trace(1.5, 8);
    // The power-law body of the real-like marginal is cleanest at 100 ms
    // granularity (packet quantization dominates finer bins); the paper
    // does not state its granularity, so the fit is reported there.
    let real = ctx.real_series(8).aggregate(10);
    let (a, alpha_a) = panel("Fig. 8(a): CCDF of f(t), synthetic", &synth);
    let (b, alpha_b) = panel("Fig. 8(b): CCDF of f(t), real-like (100 ms bins)", &real);
    FigureReport {
        id: "fig08",
        headline: "traffic marginals follow a Pareto tail".into(),
        tables: vec![a, b],
        notes: vec![
            format!("synthetic fitted α = {} (paper: 1.5)", fmt_num(alpha_a)),
            format!("real-like fitted α = {} (paper: 1.71)", fmt_num(alpha_b)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_alphas_near_paper_values() {
        let rep = run(&Ctx::default());
        let a: f64 = rep.notes[0]
            .split("= ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((a - 1.5).abs() < 0.3, "synthetic α={a}");
        let b: f64 = rep.notes[1]
            .split("= ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(b > 1.0 && b < 2.7, "real α={b}");
    }
}
