//! Shared machinery for the BSS evaluation figures: run systematic,
//! simple random, and a BSS variant across a rate grid, reporting median
//! sampled means (and BSS overhead).

use crate::report::Table;
use rayon::prelude::*;
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::{
    run_bss_experiment, run_experiment, ExperimentResult, SimpleRandomSampler, SystematicSampler,
};
use sst_stats::TimeSeries;

/// Builds the online BSS sampler used by the evaluation figures:
/// ε = 1 (the paper's choice) with `L` derived from the Eq.-35 η
/// estimate, exactly the paper's online scheme. The alternative
/// per-trace calibrations (`calibrate_c_eta`, `tune_l_on_prefix`) are
/// compared against this default in the ablation experiment.
pub fn online_bss(trace: &TimeSeries, interval: usize, alpha: f64) -> BssSampler {
    let _ = trace; // the default scheme needs no trace-specific state
    BssSampler::new(
        interval,
        ThresholdPolicy::Online(OnlineTuning {
            epsilon: 1.0,
            alpha,
            ..OnlineTuning::default()
        }),
    )
    .expect("valid BSS configuration")
}

/// One rate-point of a sampler comparison.
#[derive(Clone, Debug)]
pub struct RatePoint {
    /// Sampling rate.
    pub rate: f64,
    /// Systematic result.
    pub systematic: ExperimentResult,
    /// BSS ("proposed") result.
    pub bss: ExperimentResult,
    /// Simple-random result.
    pub simple: ExperimentResult,
}

/// Runs the three-way comparison across `rates`; `make_bss` builds the
/// BSS sampler for a given interval (so figures can vary (L, ε) with
/// the rate).
pub fn compare<F>(
    trace: &TimeSeries,
    rates: &[f64],
    instances: usize,
    seed: u64,
    make_bss: F,
) -> Vec<RatePoint>
where
    F: Fn(usize) -> BssSampler + Sync,
{
    let vals = trace.values();
    rates
        .par_iter()
        .map(|&rate| {
            let c = (1.0 / rate).round().max(1.0) as usize;
            let systematic = run_experiment(
                vals,
                &SystematicSampler::new(c),
                instances.min(c.max(1)),
                seed,
            );
            let bss = run_bss_experiment(vals, &make_bss(c), instances.min(c.max(1)), seed);
            let simple = run_experiment(vals, &SimpleRandomSampler::new(rate), instances, seed);
            RatePoint {
                rate,
                systematic,
                bss,
                simple,
            }
        })
        .collect()
}

/// Formats the comparison as the paper's mean-vs-rate panel.
pub fn mean_table(title: &str, points: &[RatePoint], true_mean: f64) -> Table {
    let mut t = Table::new(
        title,
        &[
            "rate",
            "systematic",
            "proposed(BSS)",
            "simple_random",
            "real_mean",
        ],
    );
    for p in points {
        t.push_nums(&[
            p.rate,
            p.systematic.median_mean(),
            p.bss.median_mean(),
            p.simple.median_mean(),
            true_mean,
        ]);
    }
    t
}

/// Formats the BSS overhead panel (Figs. 18b/19b).
pub fn overhead_table(title: &str, points: &[RatePoint]) -> Table {
    let mut t = Table::new(title, &["rate", "overhead(L'/N)"]);
    for p in points {
        t.push_nums(&[p.rate, p.bss.mean_overhead()]);
    }
    t
}

/// Mean absolute relative error of a column across rate points.
pub fn mean_rel_err<F: Fn(&RatePoint) -> f64>(points: &[RatePoint], truth: f64, get: F) -> f64 {
    points
        .iter()
        .map(|p| (get(p) - truth).abs() / truth)
        .sum::<f64>()
        / points.len() as f64
}
