//! Figure 18 — headline evaluation on synthetic traces (α = 1.3, mean
//! 5.68): sampled mean of systematic / simple random / BSS, and the BSS
//! overhead (paper: ≈ 0.2).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_table, overhead_table, RatePoint};
use crate::report::{fmt_num, FigureReport};

pub(crate) fn eval_points(ctx: &Ctx, alpha: f64) -> (Vec<RatePoint>, f64) {
    let trace = ctx.synthetic_trace(alpha, 18);
    let truth = trace.mean();
    let points = compare(
        &trace,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed + 18,
        |c| crate::figures::common::online_bss(&trace, c, alpha),
    );
    (points, truth)
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let (points, truth) = eval_points(ctx, 1.3);
    let a = mean_table("Fig. 18(a): sampled mean, synthetic α=1.3", &points, truth);
    let b = overhead_table("Fig. 18(b): BSS sampling overhead", &points);
    let avg_overhead =
        points.iter().map(|p| p.bss.mean_overhead()).sum::<f64>() / points.len() as f64;
    let one_minus_eta_bss =
        1.0 - points.iter().map(|p| p.bss.eta()).sum::<f64>() / points.len() as f64;
    let one_minus_eta_sys =
        1.0 - points.iter().map(|p| p.systematic.eta()).sum::<f64>() / points.len() as f64;
    let one_minus_eta_ran =
        1.0 - points.iter().map(|p| p.simple.eta()).sum::<f64>() / points.len() as f64;
    FigureReport {
        id: "fig18",
        headline: "BSS recovers the mean at a fraction of the oversampling cost".into(),
        tables: vec![a, b],
        notes: vec![
            format!("mean overhead = {} (paper: ≈ 0.2)", fmt_num(avg_overhead)),
            format!(
                "average 1−η: BSS {} vs systematic {} vs simple {} (paper: 0.922 / 0.66 / 0.81)",
                fmt_num(one_minus_eta_bss),
                fmt_num(one_minus_eta_sys),
                fmt_num(one_minus_eta_ran)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bss_closest_to_real_mean_and_overhead_bounded() {
        let rep = run(&Ctx::default());
        // Accuracy ordering on the aggregate note.
        let nums: Vec<f64> = rep.notes[1]
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let (bss, sys) = (nums[0], nums[1]);
        assert!(bss >= sys, "1−η: BSS {bss} should be ≥ systematic {sys}");
        // Overhead stays well below 1 extra sample per normal sample.
        for row in &rep.tables[1].rows {
            let o: f64 = row[1].parse().unwrap();
            assert!(o < 1.0, "overhead {o}");
        }
    }
}
