//! Extension experiment "dess" — validates the ns-2 substitute end to
//! end: (a) the Taqqu-Willinger-Sherman law `H = (3 − α)/2` on the
//! discrete-event on/off aggregate, and (b) the paper's headline mean
//! experiment (Fig. 18 shape) replayed on simulator-generated traffic.
//!
//! Panel (b) deliberately probes the *boundary* of BSS's applicability:
//! an aggregate of equal-rate on/off sources has a **bounded** marginal
//! (at most all sources on at once), so plain systematic sampling is
//! already nearly unbiased there and BSS's deliberate upward bias costs
//! accuracy. The paper's gains require a heavy-tailed *marginal* — LRD
//! alone (which this workload has) is not enough. The copula generator
//! used by the main figures pins both; this experiment documents why
//! that matters.

use crate::ctx::Ctx;
use crate::figures::common::{mean_table, online_bss};
use crate::report::{fmt_num, FigureReport, Table};
use sst_dess::OnOffScenario;
use sst_hurst::LocalWhittleEstimator;

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let (duration, sources, pps) = match ctx.scale {
        crate::ctx::Scale::Tiny => (120.0, 12, 100.0),
        crate::ctx::Scale::Quick => (400.0, 24, 200.0),
        crate::ctx::Scale::Paper => (1600.0, 48, 400.0),
    };

    // Panel (a): H = (3 − α)/2 across the self-similar regime.
    let mut law = Table::new(
        "DESS on/off aggregate: H law (Taqqu-Willinger-Sherman)",
        &["alpha", "expected_H", "whittle_H"],
    );
    let mut worst_gap = 0.0f64;
    for &alpha in &[1.2, 1.4, 1.6, 1.8] {
        let sc = OnOffScenario::new()
            .sources(sources)
            .alpha(alpha)
            .periods(0.4, 0.4)
            .emission(pps, 200)
            .bin_width(0.05)
            .duration(duration);
        let out = sc.run(ctx.seed.wrapping_add((alpha * 100.0) as u64));
        let h = LocalWhittleEstimator::default()
            .estimate(out.offered.values())
            .map_or(f64::NAN, |e| e.hurst);
        worst_gap = worst_gap.max((h - sc.expected_hurst()).abs());
        law.push_nums(&[alpha, sc.expected_hurst(), h]);
    }

    // Panel (b): the Fig. 18 sampler comparison on simulator traffic.
    let sc = OnOffScenario::new()
        .sources(sources)
        .hurst(0.8)
        .periods(0.4, 0.4)
        .emission(pps, 200)
        .bin_width(0.05)
        .duration(duration);
    let trace = sc.run(ctx.seed.wrapping_add(0xDE55)).offered;
    let truth = trace.mean();
    let rates = ctx.rates(trace.len(), 1e-4, 1e-1, 6, 10);
    let points = crate::figures::common::compare(
        &trace,
        &rates,
        ctx.instances(),
        ctx.seed.wrapping_add(0xDE55),
        |c| online_bss(&trace, c, 1.4),
    );
    let cmp = mean_table(
        "sampler comparison on DESS traffic (Fig. 18 shape)",
        &points,
        truth,
    );
    let bss_err = crate::figures::common::mean_rel_err(&points, truth, |p| p.bss.median_mean());
    let sys_err =
        crate::figures::common::mean_rel_err(&points, truth, |p| p.systematic.median_mean());

    FigureReport {
        id: "dess",
        headline: "ns-2-substitute validation: H law holds; BSS needs heavy-tailed marginals"
            .into(),
        tables: vec![law, cmp],
        notes: vec![
            format!(
                "worst H-law gap across the alpha sweep = {}",
                fmt_num(worst_gap)
            ),
            format!(
                "mean |rel err|: BSS {} vs systematic {} — on this *bounded-marginal* \
                 aggregate systematic is already nearly unbiased and BSS's upward bias \
                 overshoots; the paper's gains require a heavy-tailed marginal, not \
                 just LRD",
                fmt_num(bss_err),
                fmt_num(sys_err)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_law_within_band_and_tables_filled() {
        let rep = run(&Ctx::default());
        // The α sweep note reports the worst gap; on/off convergence is
        // slow so accept a wide band, but it must stay in LRD territory.
        let worst: f64 = rep.notes[0]
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .next_back()
            .unwrap();
        assert!(worst < 0.25, "worst H gap {worst}");
        assert_eq!(rep.tables[0].rows.len(), 4);
        assert!(!rep.tables[1].rows.is_empty());
        // Ĥ must decrease as α increases (the law's ordering), even if
        // absolute convergence is slow at quick scale.
        let hs: Vec<f64> = rep.tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        assert!(
            hs.windows(2).all(|w| w[1] <= w[0] + 0.02),
            "Ĥ should fall with α: {hs:?}"
        );
    }

    #[test]
    fn systematic_nearly_unbiased_on_bounded_marginal() {
        let rep = run(&Ctx::default());
        let nums: Vec<f64> = rep.notes[1]
            .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let sys_err = nums[1];
        assert!(
            sys_err < 0.05,
            "systematic should be nearly unbiased on a bounded marginal, err {sys_err}"
        );
    }
}
