//! Extension experiment "hurstbench" — the estimator shootout: every
//! Hurst estimator in the battery against exact fGn across the LRD
//! range. Validates the paper's choice of the wavelet tool \[22\] for
//! Fig. 21 and quantifies each method's bias, which the reproduction's
//! notes (Figs. 5/21) lean on when explaining estimator disagreements.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_hurst::estimate_all;
use sst_traffic::FgnGenerator;
use std::collections::BTreeMap;

/// Runs the shootout.
pub fn run(ctx: &Ctx) -> FigureReport {
    let n = match ctx.scale {
        crate::ctx::Scale::Tiny => 1 << 12,
        crate::ctx::Scale::Quick => 1 << 14,
        crate::ctx::Scale::Paper => 1 << 17,
    };
    let hs = [0.6, 0.7, 0.8, 0.9];
    let reps = match ctx.scale {
        crate::ctx::Scale::Tiny => 2u64,
        crate::ctx::Scale::Quick => 3,
        crate::ctx::Scale::Paper => 7,
    };

    // method -> per-H mean estimate.
    let mut by_method: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (hi, &h) in hs.iter().enumerate() {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for r in 0..reps {
            let vals = FgnGenerator::new(h)
                .expect("valid H")
                .generate_values(n, ctx.seed.wrapping_add(100 * hi as u64 + r));
            for est in estimate_all(&vals) {
                let e = sums.entry(est.method.to_string()).or_insert((0.0, 0));
                e.0 += est.hurst;
                e.1 += 1;
            }
        }
        for (m, (total, cnt)) in sums {
            by_method
                .entry(m)
                .or_insert_with(|| vec![f64::NAN; hs.len()])[hi] = total / cnt as f64;
        }
    }

    let mut table = Table::new(
        "Hurst estimator shootout on exact fGn (mean over seeds)",
        &["method", "H=0.6", "H=0.7", "H=0.8", "H=0.9", "max|bias|"],
    );
    let mut worst_overall: Vec<(String, f64)> = Vec::new();
    for (method, ests) in &by_method {
        let max_bias = ests
            .iter()
            .zip(&hs)
            .map(|(e, h)| (e - h).abs())
            .fold(0.0f64, f64::max);
        worst_overall.push((method.clone(), max_bias));
        let mut row = vec![method.clone()];
        row.extend(ests.iter().map(|e| fmt_num(*e)));
        row.push(fmt_num(max_bias));
        table.push_row(row);
    }
    worst_overall.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let best = worst_overall.first().cloned().unwrap_or_default();
    let in_band = worst_overall.iter().filter(|(_, b)| *b < 0.1).count();

    FigureReport {
        id: "hurstbench",
        headline: "all ten estimators recover H on exact fGn; bias ranking".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "{} of {} estimators stay within |bias| < 0.1 across H in [0.6, 0.9]",
                in_band,
                worst_overall.len()
            ),
            format!("lowest worst-case bias: {} ({})", best.0, fmt_num(best.1)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_mostly_lands_in_band() {
        let rep = run(&Ctx::default());
        let nums: Vec<f64> = rep.notes[0]
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .filter_map(|s| s.parse().ok())
            .collect();
        let (in_band, total) = (nums[0], nums[1]);
        assert!(
            total >= 9.0,
            "battery should have >= 9 estimators, got {total}"
        );
        assert!(
            in_band >= total - 2.0,
            "at most two estimators may exceed the 0.1 bias band ({in_band}/{total})"
        );
    }
}
