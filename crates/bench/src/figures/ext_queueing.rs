//! Extension experiment "queueing" — the operational payoff of the
//! Hurst parameter the paper's §I motivates ("crucial for queuing
//! analysis"): buffer requirements explode with H, and the Norros
//! formula (parameterized by measured `(mean, σ, Ĥ)`) predicts the
//! Lindley-simulated requirement to within its asymptotic slack.
//!
//! The sampling connection: the `(mean, σ, Ĥ)` triple is exactly what a
//! monitor estimates from *sampled* traffic, so H-preservation under
//! sampling (T1) is what makes sampled-data dimensioning trustworthy.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_hurst::LocalWhittleEstimator;
use sst_queue::{measured_buffer, required_buffer};
use sst_stats::TimeSeries;
use sst_traffic::FgnGenerator;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> FigureReport {
    let n = match ctx.scale {
        crate::ctx::Scale::Tiny => 1 << 13,
        crate::ctx::Scale::Quick => 1 << 16,
        crate::ctx::Scale::Paper => 1 << 19,
    };
    let (mean, sigma) = (100.0, 10.0);
    let service = 105.0;
    let loss = 1e-2;

    let mut table = Table::new(
        "buffer for P(loss) <= 1e-2 at 95% load vs Hurst parameter",
        &[
            "H",
            "whittle_H",
            "measured_buffer",
            "norros_buffer(H)",
            "norros_buffer(Hhat)",
        ],
    );
    // The Norros inverse is a *logarithmic* asymptote, so agreement is
    // judged on ln(buffer); and the inversion exponent 1/(2−2H) blows up
    // near H = 1, so the quantitative check covers H ≤ 0.8 while the
    // H = 0.9 row demonstrates the sensitivity.
    let mut log_ratios = Vec::new();
    let mut h9_amplification = f64::NAN;
    for (i, &h) in [0.6, 0.7, 0.8, 0.9].iter().enumerate() {
        let vals: Vec<f64> = FgnGenerator::new(h)
            .expect("valid H")
            .generate_values(n, ctx.seed.wrapping_add(i as u64))
            .into_iter()
            .map(|x| mean + sigma * x)
            .collect();
        let trace = TimeSeries::from_values(1.0, vals);
        let h_hat = LocalWhittleEstimator::default()
            .estimate(trace.values())
            .map_or(f64::NAN, |e| e.hurst)
            .clamp(0.5, 0.99);
        let measured = measured_buffer(&trace, service, loss).unwrap_or(f64::NAN);
        let pred_true = required_buffer(h, mean, sigma, service, loss);
        let pred_hat = required_buffer(h_hat, mean, sigma, service, loss);
        if h <= 0.85 && measured.is_finite() && measured > 1.0 {
            log_ratios.push(pred_hat.ln() / measured.ln());
        }
        if h > 0.85 {
            h9_amplification = pred_hat / pred_true;
        }
        table.push_nums(&[h, h_hat, measured, pred_true, pred_hat]);
    }

    // Growth factor of the measured requirement across the H sweep.
    let first: f64 = table
        .rows
        .first()
        .map_or(1.0, |r| r[2].parse().unwrap_or(1.0));
    let last: f64 = table
        .rows
        .last()
        .map_or(1.0, |r| r[2].parse().unwrap_or(1.0));
    let growth = last / first.max(1e-9);
    let worst_log_ratio = log_ratios
        .iter()
        .map(|r| if *r < 1.0 { 1.0 / r } else { *r })
        .fold(0.0f64, f64::max);

    FigureReport {
        id: "queueing",
        headline: "buffer requirements explode with H; Norros(Ĥ) predicts them".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "measured buffer grows {}x from H=0.6 to H=0.9",
                fmt_num(growth)
            ),
            format!(
                "worst ln(Norros(Hhat))/ln(measured) factor for H <= 0.8 = {} \
                 (log-asymptote: within 2x on the log scale is on-spec)",
                fmt_num(worst_log_ratio)
            ),
            format!(
                "at H=0.9 an Hhat error of a few hundredths multiplies the predicted \
                 buffer {}x — the 1/(2−2H) inversion exponent is why sampled traffic \
                 must preserve H (T1) for dimensioning to be trustworthy",
                fmt_num(h9_amplification)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_with_h_and_prediction_is_in_range() {
        let rep = run(&Ctx::default());
        let rows = &rep.tables[0].rows;
        assert_eq!(rows.len(), 4);
        // Measured buffers strictly increase with H.
        let measured: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            measured.windows(2).all(|w| w[1] > w[0]),
            "buffers should grow with H: {measured:?}"
        );
        // The worst log-scale Norros disagreement stays within 2x for
        // H <= 0.8 (the note reports "... = X (log-asymptote ... 2x ...)";
        // the measured factor is the number right after the '=').
        let worst: f64 = rep.notes[1]
            .split('=')
            .nth(1)
            .and_then(|tail| tail.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(worst < 2.0, "Norros log-scale disagreement factor {worst}");
    }
}
