//! Figure 14 — contour lines of ξ in the (L, ε) plane: for each target
//! bias, the ε₂(L) curve one can pick parameters from.

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::theory::{max_bias, unbiased_epsilons};

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let targets = [1.05, 1.1, 1.2, 1.3, 1.4];
    let mut cols: Vec<String> = vec!["L".into()];
    cols.extend(targets.iter().map(|x| format!("eps2(xi={x})")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 14: ξ contours — upper root ε₂ per (L, target)",
        &col_refs,
    );
    for l in [1.0, 2.0, 3.0, 5.0, 7.0, 10.0] {
        let mut row = vec![l];
        let (_, peak) = max_bias(l, alpha);
        for &xi in &targets {
            if xi >= peak {
                row.push(f64::NAN); // contour does not reach this L
            } else {
                let roots = unbiased_epsilons(l, alpha, xi, 0.34, 50.0);
                row.push(roots.last().copied().unwrap_or(f64::NAN));
            }
        }
        t.push_nums(&row);
    }
    FigureReport {
        id: "fig14",
        headline: "contours of the bias parameter (pick ε₂ given L, or vice versa)".into(),
        tables: vec![t],
        notes: vec![
            "every point on a contour achieves the same expected bias — the paper's \
             'set one parameter first, the other follows' procedure"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contours_shift_right_with_l() {
        let rep = run(&Ctx::default());
        // For the smallest target, ε₂ grows with L.
        let col = 1;
        let mut prev = 0.0;
        for row in &rep.tables[0].rows {
            let v: f64 = row[col].parse().unwrap();
            if v.is_finite() {
                assert!(v > prev, "ε₂ must increase with L");
                prev = v;
            }
        }
        assert!(prev > 0.0, "at least one finite contour point");
    }
}
