//! Figure 2 — simple random sampling preserves β (closed-form Eq. 11).
//!
//! (a) the log2-log2 series of `R_g(τ)` at β = 0.1 with its fitted
//! slope (the paper fits −0.08 due to truncation); (b) β̂ vs β over
//! β ∈ [0.1, 0.8].

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::snc::{simple_random_beta_scan, simple_random_rg};

/// The paper's τ fit window: `log2 τ ∈ [6.5, 9]`.
fn paper_taus() -> Vec<usize> {
    let mut taus: Vec<usize> = sst_sigproc::numeric::logspace(90.5, 512.0, 12)
        .into_iter()
        .map(|x| x.round() as usize)
        .collect();
    taus.dedup();
    taus
}

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let rho = 0.5;
    let taus = paper_taus();

    // Panel (a): the β = 0.1 series.
    let mut a = Table::new(
        "Fig. 2(a): log2 R_g(τ) vs log2 τ at β=0.1, ρ=0.5",
        &["log2(tau)", "log2(Rg)"],
    );
    for &tau in &taus {
        let terms = (4.0 * tau as f64 * (1.0 - rho) / rho) as usize + 64;
        let rg = simple_random_rg(tau, rho, 0.1, terms);
        a.push_nums(&[(tau as f64).log2(), rg.log2()]);
    }

    // Panel (b): β̂ vs β.
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let scan = simple_random_beta_scan(&betas, rho, &taus);
    let mut b = Table::new(
        "Fig. 2(b): estimated β̂ vs real β (Eq. 11)",
        &["beta", "beta_hat"],
    );
    let mut worst = 0.0f64;
    for (beta, est) in &scan {
        b.push_nums(&[*beta, *est]);
        worst = worst.max((est - beta).abs());
    }
    let slope_at_01 = scan[0].1;

    FigureReport {
        id: "fig02",
        headline: "Eq. (11): simple random sampling keeps the ACF decay exponent".into(),
        tables: vec![a, b],
        notes: vec![
            format!(
                "fitted slope at β=0.1 is -{} (paper: -0.08; gap is the Eq. 11 truncation error)",
                fmt_num(slope_at_01)
            ),
            format!("max |β̂ − β| over the sweep = {}", fmt_num(worst)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_recovered_across_sweep() {
        let rep = run(&Ctx::default());
        assert_eq!(rep.tables.len(), 2);
        // β̂ tracks β within the truncation gap everywhere.
        for row in &rep.tables[1].rows {
            let beta: f64 = row[0].parse().unwrap();
            let est: f64 = row[1].parse().unwrap();
            assert!((est - beta).abs() < 0.06, "β={beta} β̂={est}");
        }
    }

    #[test]
    fn fig2a_series_is_decreasing() {
        let rep = run(&Ctx::default());
        let ys: Vec<f64> = rep.tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        for w in ys.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
