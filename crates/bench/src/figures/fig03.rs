//! Figure 3 — the SNC numerical method (S1-S3) confirms stratified and
//! simple random sampling preserve β.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::snc::{snc_check, GapDistribution};

fn log_taus() -> Vec<usize> {
    let mut v: Vec<usize> = sst_sigproc::numeric::logspace(8.0, 256.0, 10)
        .into_iter()
        .map(|x| x.round() as usize)
        .collect();
    v.dedup();
    v
}

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let taus = log_taus();
    let gaps: [(&str, GapDistribution); 2] = [
        (
            "Fig. 3(a): stratified random (triangular gaps, Eq. 12)",
            GapDistribution::Stratified { interval: 10 },
        ),
        (
            "Fig. 3(b): simple random (geometric gaps, Eq. 13)",
            GapDistribution::SimpleRandom { rate: 0.1 },
        ),
    ];
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for (title, gap) in gaps {
        let mut t = Table::new(title, &["beta", "beta_hat", "r_squared"]);
        let mut worst = 0.0f64;
        for &beta in &betas {
            let rep = snc_check(&gap, beta, &taus);
            t.push_nums(&[beta, rep.beta_estimated, rep.r_squared]);
            worst = worst.max((rep.beta_estimated - beta).abs());
        }
        notes.push(format!("{title}: max |β̂ − β| = {}", fmt_num(worst)));
        tables.push(t);
    }
    FigureReport {
        id: "fig03",
        headline: "Theorem 1's FFT checker: both random techniques satisfy the SNC".into(),
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_techniques_preserve_beta() {
        let rep = run(&Ctx::default());
        for t in &rep.tables {
            for row in &t.rows {
                let beta: f64 = row[0].parse().unwrap();
                let est: f64 = row[1].parse().unwrap();
                assert!((est - beta).abs() < 0.06, "{}: β={beta} β̂={est}", t.title);
            }
        }
    }
}
