//! Figure 17 — biased BSS with online tuning on the real-like traces:
//! (a) L fixed at 30, (b) ε fixed at 1 (α = 1.71 per the Fig. 8 fit).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_rel_err, mean_table};
use crate::figures::fig16::epsilon_for_fixed_l;
use crate::report::{fmt_num, FigureReport};
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let alpha = 1.71;
    let trace = ctx.real_series(17);
    let truth = trace.mean();
    let n = trace.len();

    let points_a = compare(
        &trace,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed + 17,
        |c| {
            let eps = epsilon_for_fixed_l(30, alpha, n / c, 1.0);
            BssSampler::new(
                c,
                ThresholdPolicy::Online(OnlineTuning {
                    epsilon: eps,
                    alpha,
                    ..Default::default()
                }),
            )
            .expect("valid")
            .with_l(30)
        },
    );
    let points_b = compare(
        &trace,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed + 17,
        |c| crate::figures::common::online_bss(&trace, c, alpha),
    );

    let t_a = mean_table(
        "Fig. 17(a): biased BSS, L=30 fixed, real-like",
        &points_a,
        truth,
    );
    let t_b = mean_table(
        "Fig. 17(b): biased BSS, ε=1 fixed, real-like",
        &points_b,
        truth,
    );
    let err_bss = mean_rel_err(&points_b, truth, |p| p.bss.median_mean());
    let err_sys = mean_rel_err(&points_b, truth, |p| p.systematic.median_mean());
    FigureReport {
        id: "fig17",
        headline: "online biased BSS on real-like traffic".into(),
        tables: vec![t_a, t_b],
        notes: vec![format!(
            "panel (b) mean relative error: BSS {} vs systematic {}",
            fmt_num(err_bss),
            fmt_num(err_sys)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bss_biases_upward_and_stays_bounded() {
        // At quick scale (240 s trace) a single huge qualified sample can
        // dominate an instance mean, so only the structural properties
        // are asserted here; the accuracy comparison is the paper-scale
        // run (EXPERIMENTS.md).
        let rep = run(&Ctx::default());
        for t in &rep.tables {
            for row in &t.rows {
                let sys: f64 = row[1].parse().unwrap();
                let bss: f64 = row[2].parse().unwrap();
                let truth: f64 = row[4].parse().unwrap();
                assert!(
                    bss >= sys - 0.05 * truth,
                    "{}: sys={sys} bss={bss}",
                    t.title
                );
                assert!(bss < truth * 10.0, "{}: bss={bss} runaway", t.title);
            }
        }
    }
}
