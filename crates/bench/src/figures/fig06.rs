//! Figure 6 — the sampled mean under-estimates the real mean of
//! self-similar traffic, at every practical sampling rate.

use crate::ctx::Ctx;
use crate::report::{fmt_num, FigureReport, Table};
use sst_core::{ParallelExperimentRunner, SystematicSampler};
use sst_stats::TimeSeries;

fn panel(title: &str, trace: &TimeSeries, rates: &[f64], instances: usize, seed: u64) -> Table {
    let mut t = Table::new(title, &["rate", "sampled_mean", "real_mean", "ratio"]);
    let truth = trace.mean();
    let interval = |r: f64| (1.0 / r).round().max(1.0) as usize;
    // Whole sweep fanned across threads; per-rate results are
    // byte-identical to the sequential per-rate loop this replaces.
    let results = ParallelExperimentRunner::new().run_rate_sweep(
        trace.values(),
        rates,
        |r| Box::new(SystematicSampler::new(interval(r))),
        |r| instances.min(interval(r)),
        seed,
    );
    for (res, &r) in results.iter().zip(rates) {
        let m = res.median_mean();
        t.push_nums(&[r, m, truth, m / truth]);
    }
    t
}

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let synth = ctx.synthetic_trace(1.5, 6);
    let real = ctx.real_series(6);
    let a = panel(
        "Fig. 6(a): sampled vs real mean, synthetic",
        &synth,
        &ctx.synth_rates(),
        ctx.instances(),
        ctx.seed + 1,
    );
    let b = panel(
        "Fig. 6(b): sampled vs real mean, real-like",
        &real,
        &ctx.real_rates(),
        ctx.instances(),
        ctx.seed + 1,
    );
    let low_ratio_real: f64 = b.rows.last().unwrap()[3].parse().unwrap();
    FigureReport {
        id: "fig06",
        headline: "all plain techniques under-estimate the mean at low rates".into(),
        tables: vec![a, b],
        notes: vec![format!(
            "real-like trace at its highest rate: sampled/real = {} (paper: ≈ 2/3 at r=1e-3)",
            fmt_num(low_ratio_real)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_sampled_mean_underestimates_at_low_rates() {
        let rep = run(&Ctx::default());
        // The synthetic panel's lowest-rate row must underestimate (the
        // real-like panel has too few samples at quick scale for the
        // median to be stable; the full-scale run shows the same shape).
        let ratio: f64 = rep.tables[0].rows.first().unwrap()[3].parse().unwrap();
        assert!(ratio < 1.0, "ratio={ratio}");
    }
}
