//! Figures 12 — "unbiased" BSS on synthetic traces: (L, ε) pairs chosen
//! on the ξ = 1 contour behave like systematic sampling at small rates
//! and gain only a little at larger ones (the paper's motivation for
//! *biased* BSS).

use crate::ctx::Ctx;
use crate::figures::common::{compare, mean_table};
use crate::report::{fmt_num, FigureReport};
use sst_core::bss::{BssSampler, ThresholdPolicy};

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let trace = ctx.synthetic_trace(1.5, 12);
    let truth = trace.mean();
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    // The paper's two parameter settings for the unbiased contour.
    for (l, eps, label) in [
        (10usize, 2.55, "(a) L=10, ε=2.55"),
        (8, 2.28, "(b) L=8, ε=2.28"),
    ] {
        let points = compare(
            &trace,
            &ctx.synth_rates(),
            ctx.instances(),
            ctx.seed + 12,
            |c| {
                BssSampler::new(
                    c,
                    ThresholdPolicy::RelativeToMean {
                        epsilon: eps,
                        mean: truth,
                    },
                )
                .expect("valid")
                .with_l(l)
            },
        );
        tables.push(mean_table(
            &format!("Fig. 12{label}: sampled mean, synthetic"),
            &points,
            truth,
        ));
        // At the lowest rate BSS ≈ systematic (few qualified samples).
        let lowest = &points[0];
        notes.push(format!(
            "{label}: at r={} BSS − systematic = {} (≈ 0 expected: threshold too high \
             for qualified samples at low rates)",
            fmt_num(lowest.rate),
            fmt_num(lowest.bss.median_mean() - lowest.systematic.median_mean()),
        ));
    }
    FigureReport {
        id: "fig12",
        headline: "unbiased-contour BSS barely improves on systematic (synthetic)".into(),
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_bss_tracks_systematic_at_low_rate() {
        let rep = run(&Ctx::default());
        for t in &rep.tables {
            let row = &t.rows[0]; // lowest rate
            let sys: f64 = row[1].parse().unwrap();
            let bss: f64 = row[2].parse().unwrap();
            let truth: f64 = row[4].parse().unwrap();
            // At quick scale a single high-threshold trigger moves the
            // 13-sample median visibly; the systematic/BSS gap stays
            // bounded and BSS never drops below systematic.
            assert!(bss >= sys - 0.05 * truth, "sys={sys} bss={bss}");
            assert!((bss - sys).abs() / truth < 0.6, "sys={sys} bss={bss}");
        }
    }
}
