//! Figure 21 — the BSS-sampled process keeps the Hurst parameter: β̂ of
//! the sampled sequence tracks the β of the original for β ∈ [0.1, 0.8]
//! (estimated with the wavelet tool, as in the paper's §VI).

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use sst_hurst::{LocalWhittleEstimator, WaveletEstimator};
use sst_traffic::SyntheticTraceSpec;

/// Runs the reproduction.
pub fn run(ctx: &Ctx) -> FigureReport {
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut t = Table::new(
        "Fig. 21: β of the BSS-sampled process vs real β",
        &["beta", "beta_hat_wavelet", "beta_hat_whittle"],
    );
    let interval = 64; // rate ≈ 1.6e-2 keeps enough samples for estimation
    for &beta in &betas {
        let h = 1.0 - beta / 2.0;
        // Gaussian marginal: the wavelet estimator's variance under an
        // infinite-variance marginal would swamp the comparison; Hurst
        // preservation is a second-order property, independent of the
        // marginal (the paper's wavelet tool has the same caveat).
        let trace = SyntheticTraceSpec::new()
            .length(ctx.synth_len())
            .hurst(h)
            .gaussian_marginal(10.0, 1.0)
            .seed(ctx.seed + 21)
            .build();
        let bss = BssSampler::new(interval, ThresholdPolicy::Online(OnlineTuning::default()))
            .expect("valid");
        let out = bss.sample_detailed(trace.values(), 1);
        let wl = WaveletEstimator::default()
            .min_octave(4)
            .estimate(out.samples.values())
            .map(|e| e.beta())
            .unwrap_or(f64::NAN);
        let lw = LocalWhittleEstimator { bandwidth: 0.5 }
            .estimate(out.samples.values())
            .map(|e| e.beta())
            .unwrap_or(f64::NAN);
        t.push_nums(&[beta, wl, lw]);
    }
    FigureReport {
        id: "fig21",
        headline: "BSS preserves second-order statistics (β̂ ≈ β)".into(),
        tables: vec![t],
        notes: vec![
            "qualified samples are taken systematically within intervals, so the \
             sampled sequence keeps the original autocorrelation structure (§VI-B)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_tracked_for_strong_lrd() {
        let rep = run(&Ctx::default());
        for row in &rep.tables[0].rows {
            let beta: f64 = row[0].parse().unwrap();
            let lw: f64 = row[2].parse().unwrap();
            // The low-frequency (local Whittle) estimate tracks β closely;
            // the wavelet column needs paper-scale sample counts before
            // its fine-octave distortion averages out.
            if beta <= 0.6 {
                assert!((lw - beta).abs() < 0.16, "β={beta} β̂={lw}");
            }
        }
        // Both columns increase with β.
        for col in [1, 2] {
            let vals: Vec<f64> = rep.tables[0]
                .rows
                .iter()
                .map(|r| r[col].parse().unwrap())
                .collect();
            assert!(vals.last().unwrap() > vals.first().unwrap(), "column {col}");
        }
    }
}
