//! Figure 10 — the bias-parameter surface ξ(L, ε) with the ξ = 1 plane.
//! Corrected Eq. (30); the paper's literal variant is tabulated alongside.

use crate::ctx::Ctx;
use crate::report::{FigureReport, Table};
use sst_core::theory::{bias_parameter, bias_parameter_paper};

/// Runs the reproduction.
pub fn run(_ctx: &Ctx) -> FigureReport {
    let alpha = 1.5;
    let ls = [1.0, 2.0, 5.0, 10.0, 20.0];
    let mut cols: Vec<String> = vec!["epsilon".into()];
    cols.extend(ls.iter().map(|l| format!("xi(L={l})")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 10: ξ(L, ε), corrected Eq. (30), α=1.5", &col_refs);
    let eps_grid = [0.334, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 2.55, 3.0, 5.0];
    for &eps in &eps_grid {
        let mut row = vec![eps];
        for &l in &ls {
            row.push(bias_parameter(l, eps, alpha));
        }
        t.push_nums(&row);
    }
    let mut t2 = Table::new("paper's literal Eq. (30) for comparison", &col_refs);
    for &eps in &eps_grid {
        let mut row = vec![eps];
        for &l in &ls {
            row.push(bias_parameter_paper(l, eps, alpha));
        }
        t2.push_nums(&row);
    }
    FigureReport {
        id: "fig10",
        headline: "ξ = 1 exactly at ε₁ = (α−1)/α for every L; bump above 1 beyond it".into(),
        tables: vec![t, t2],
        notes: vec![
            "ε₁ = 1/3 at α = 1.5 — matching the paper's Fig. 10 observation".into(),
            "the literal Eq. (30) is dimensionally inconsistent (see DESIGN.md erratum)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_one_at_eps1_for_all_l() {
        let rep = run(&Ctx::default());
        let first = &rep.tables[0].rows[0]; // ε ≈ ε₁ = 1/3
        for cell in &first[1..] {
            let xi: f64 = cell.parse().unwrap();
            assert!((xi - 1.0).abs() < 0.02, "xi={xi}");
        }
    }

    #[test]
    fn xi_increases_with_l_beyond_eps1() {
        let rep = run(&Ctx::default());
        let mid = &rep.tables[0].rows[4]; // ε = 1.0
        let vals: Vec<f64> = mid[1..].iter().map(|c| c.parse().unwrap()).collect();
        for w in vals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
