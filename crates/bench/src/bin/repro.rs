//! Figure reproduction driver.
//!
//! Usage:
//! ```text
//! repro [--paper] [--quick] [--seed N] [--jobs N] all | figNN [figNN ...] | list
//! ```
//!
//! `--jobs N` runs independent figures concurrently on `N` worker
//! threads (`--jobs 0` = one per core). Reports are printed in request
//! order regardless of completion order, so the output stream is
//! byte-identical to a sequential run.

use rayon::prelude::*;
use sst_bench::figures::{run_one, ALL};
use sst_bench::{Ctx, Scale};

/// Order-preserving dedup: keeps the first occurrence of each target.
/// (`Vec::dedup` only collapses *adjacent* repeats, so
/// `repro fig02 fig03 fig02` used to run fig02 twice.)
fn dedupe_preserving(targets: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    targets
        .into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 20050607u64;
    let mut jobs = 1usize;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::Paper,
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                let n: usize = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer (0 = one per core)"));
                jobs = if n == 0 {
                    rayon::current_num_threads()
                } else {
                    n
                };
            }
            "list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => targets.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => targets.push(other.to_string()),
            other => die(&format!("unknown argument '{other}' (try 'list')")),
        }
    }
    if targets.is_empty() {
        die(
            "usage: repro [--paper] [--quick] [--seed N] [--jobs N] all | list | figNN [figNN ...]",
        );
    }
    let targets = dedupe_preserving(targets);
    let ctx = Ctx::new(scale, seed);
    eprintln!(
        "# scale={scale:?} seed={seed} jobs={jobs} synth_len={} real_duration={}s instances={}",
        ctx.synth_len(),
        ctx.real_duration(),
        ctx.instances()
    );
    if jobs <= 1 {
        for id in &targets {
            let start = std::time::Instant::now();
            match run_one(id, &ctx) {
                Some(report) => {
                    println!("{report}");
                    eprintln!("# {id} done in {:.1}s", start.elapsed().as_secs_f64());
                }
                None => eprintln!("# unknown figure id '{id}' (try 'list')"),
            }
        }
    } else {
        // Independent figures fan out across threads; results are
        // collected and printed in request order.
        let results: Vec<(String, Option<String>, f64)> = rayon::with_num_threads(jobs, || {
            targets
                .into_par_iter()
                .map(|id| {
                    let start = std::time::Instant::now();
                    let rendered = run_one(&id, &ctx).map(|r| r.to_string());
                    (id, rendered, start.elapsed().as_secs_f64())
                })
                .collect()
        });
        for (id, rendered, secs) in results {
            match rendered {
                Some(report) => {
                    println!("{report}");
                    eprintln!("# {id} done in {secs:.1}s");
                }
                None => eprintln!("# unknown figure id '{id}' (try 'list')"),
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::dedupe_preserving;

    #[test]
    fn dedupe_keeps_first_occurrence_order() {
        let input = ["fig02", "fig03", "fig02", "fig05", "fig03", "fig02"]
            .map(String::from)
            .to_vec();
        assert_eq!(
            dedupe_preserving(input),
            ["fig02", "fig03", "fig05"].map(String::from)
        );
    }

    #[test]
    fn dedupe_handles_empty_and_unique() {
        assert!(dedupe_preserving(Vec::new()).is_empty());
        let unique = ["a", "b", "c"].map(String::from).to_vec();
        assert_eq!(dedupe_preserving(unique.clone()), unique);
    }
}
