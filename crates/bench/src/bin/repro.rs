//! Figure reproduction driver.
//!
//! Usage:
//! ```text
//! repro [--paper] [--seed N] all | figNN [figNN ...] | list
//! ```

use sst_bench::figures::{run_one, ALL};
use sst_bench::{Ctx, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 20050607u64;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::Paper,
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => targets.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => targets.push(other.to_string()),
            other => die(&format!("unknown argument '{other}' (try 'list')")),
        }
    }
    if targets.is_empty() {
        die("usage: repro [--paper] [--seed N] all | list | figNN [figNN ...]");
    }
    targets.dedup();
    let ctx = Ctx::new(scale, seed);
    eprintln!(
        "# scale={scale:?} seed={seed} synth_len={} real_duration={}s instances={}",
        ctx.synth_len(),
        ctx.real_duration(),
        ctx.instances()
    );
    for id in &targets {
        let start = std::time::Instant::now();
        match run_one(id, &ctx) {
            Some(report) => {
                println!("{report}");
                eprintln!("# {id} done in {:.1}s", start.elapsed().as_secs_f64());
            }
            None => eprintln!("# unknown figure id '{id}' (try 'list')"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
