//! # sst-bench — reproduction harness
//!
//! One module per figure of He & Hou (ICDCS 2005) plus the shared
//! experiment context and plain-text table reports. The `repro` binary
//! drives them:
//!
//! ```text
//! cargo run -p sst-bench --release --bin repro -- all           # quick scale
//! cargo run -p sst-bench --release --bin repro -- --paper all   # full scale
//! cargo run -p sst-bench --release --bin repro -- fig18 fig20
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod figures;
pub mod report;

pub use ctx::{Ctx, Scale};
pub use report::{FigureReport, Table};
