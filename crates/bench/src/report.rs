//! Plain-text table reports — the harness's equivalent of the paper's
//! plots: each figure module returns one or more [`Table`]s whose rows
//! are the series a plot would show.

use std::fmt;

/// One printable table (one panel of a figure).
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Panel title, e.g. "Fig. 5(a) synthetic".
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a row of numbers formatted with engineering precision.
    pub fn push_nums(&mut self, cells: &[f64]) {
        self.push_row(cells.iter().map(|v| fmt_num(*v)).collect());
    }
}

/// Formats a number compactly: scientific for very large/small magnitudes,
/// fixed otherwise.
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !v.is_finite() {
        format!("{v}")
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "── {} ──", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// A complete figure reproduction: tables plus free-text conclusions
/// (paper-vs-measured notes for EXPERIMENTS.md).
#[derive(Clone, Debug, Default)]
pub struct FigureReport {
    /// Figure identifier, e.g. "fig05".
    pub id: &'static str,
    /// What the figure shows.
    pub headline: String,
    /// The panels.
    pub tables: Vec<Table>,
    /// Measured take-aways (compared against the paper's claims).
    pub notes: Vec<String>,
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.headline)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new("demo", &["rate", "value"]);
        t.push_nums(&[1e-5, 0.123456]);
        t.push_nums(&[0.1, 123456.0]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("1.000e-5"));
        assert!(s.contains("1.235e5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.5), "0.5000");
        assert_eq!(fmt_num(1e-9), "1.000e-9");
        assert!(fmt_num(f64::INFINITY).contains("inf"));
    }

    #[test]
    fn report_displays_everything() {
        let mut t = Table::new("panel", &["x"]);
        t.push_nums(&[1.0]);
        let r = FigureReport {
            id: "fig99",
            headline: "test".into(),
            tables: vec![t],
            notes: vec!["a note".into()],
        };
        let s = r.to_string();
        assert!(s.contains("fig99") && s.contains("panel") && s.contains("a note"));
    }
}
