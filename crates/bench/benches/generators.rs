//! Criterion benches: traffic generation throughput (fGn, copula
//! transform, on/off aggregation, M/G/∞, packet-trace synthesis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sst_nettrace::TraceSynthesizer;
use sst_stats::dist::Pareto;
use sst_traffic::{copula, FgnGenerator, MgInfModel, OnOffModel};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    for n in [1usize << 14, 1 << 17] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("fgn_davies_harte", n), &n, |b, &n| {
            let gen = FgnGenerator::new(0.8).expect("valid");
            b.iter(|| gen.generate_values(n, 7));
        });
        g.bench_with_input(BenchmarkId::new("fgn_plus_copula", n), &n, |b, &n| {
            let gen = FgnGenerator::new(0.8).expect("valid");
            let marginal = Pareto::with_mean(1.5, 5.68);
            b.iter(|| copula::transform_values(&gen.generate_values(n, 7), &marginal));
        });
        g.bench_with_input(BenchmarkId::new("onoff_32_sources", n), &n, |b, &n| {
            let model = OnOffModel::for_hurst(0.8, 32).expect("valid");
            b.iter(|| model.generate(n, 7));
        });
        g.bench_with_input(BenchmarkId::new("mginf", n), &n, |b, &n| {
            let model = MgInfModel::new(2.0, 1.4, 10.0).expect("valid");
            b.iter(|| model.generate(n, 7));
        });
    }
    g.bench_function("bell_labs_packet_trace_60s", |b| {
        let synth = TraceSynthesizer::bell_labs_like().duration(60.0);
        b.iter(|| synth.synthesize(7));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generators
}
criterion_main!(benches);
