//! Criterion benches for the layered online monitoring engine:
//! single-stream offer throughput, 10k-stream sharded vs sequential
//! ingest (the persistent-worker-pool payoff), snapshot/merge cost,
//! summary compaction, wire-frame round-trips, eviction churn, the
//! sketch tier (key-flood absorption and promote/demote turnover), and
//! the event-loop transport (64-session serve on the poll(2) and
//! epoll(7) backends, multi-loop sharded serve, TCP round-trip).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sst_monitor::topology::{Aggregator, Collector};
use sst_monitor::transport::{BackendKind, EventLoopServer, MultiLoopServer, ServeOptions};
use sst_monitor::EngineSnapshot;
use sst_monitor::{
    decode_frames, encode_frame, Frame, MonitorConfig, MonitorEngine, SamplerSpec, WIRE_VERSION,
};

/// Deterministic bursty multiplexed workload over `n_keys` streams.
fn points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
    (0..n)
        .map(|i| {
            let key = (i as u64).wrapping_mul(2654435761) % n_keys;
            let v = if (i / 53) % 13 == 0 {
                250.0 + (i % 11) as f64
            } else {
                2.0 + (i % 5) as f64
            };
            (key, v)
        })
        .collect()
}

fn spec() -> SamplerSpec {
    SamplerSpec::Bss {
        interval: 10,
        epsilon: 1.0,
        n_pre: 16,
        l: 4,
    }
}

fn bench_offer(c: &mut Criterion) {
    let pts = points(1 << 18, 1);
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("offer_single_stream", |b| {
        b.iter(|| {
            let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec()).seed(3));
            for &(k, v) in &pts {
                engine.offer(k, v);
            }
            engine.stream_count()
        });
    });
    g.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    // 10k concurrent streams; the sharded row fans shard batches across
    // the persistent worker pool, the sequential row is one shard.
    let pts = points(1 << 20, 10_000);
    let mut g = c.benchmark_group("monitor/ingest_10k_streams");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut engine =
                MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(1).seed(3));
            engine.offer_batch(&pts);
            engine.stream_count()
        });
    });
    g.bench_function("sharded", |b| {
        b.iter(|| {
            let mut engine =
                MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(8).seed(3));
            engine.offer_batch(&pts);
            engine.stream_count()
        });
    });
    g.finish();
}

fn bench_snapshot_merge(c: &mut Criterion) {
    let pts = points(1 << 19, 4096);
    let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(4).seed(3));
    engine.offer_batch(&pts);
    let snap = engine.snapshot();
    let (even, odd): (Vec<_>, Vec<_>) =
        snap.streams().iter().cloned().partition(|e| e.key % 2 == 0);
    let a = EngineSnapshot::from_streams(even);
    let b = EngineSnapshot::from_streams(odd);
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(snap.stream_count() as u64));
    g.bench_function("snapshot_4096_streams", |bch| {
        bch.iter(|| engine.snapshot().stream_count());
    });
    g.bench_function("merge_4096_streams", |bch| {
        bch.iter(|| a.clone().merge(b.clone()).aggregate().moments.count());
    });
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    // Compacting a 4096-stream snapshot toward the 768 B default
    // budget — the aggregator-side memory bound.
    let pts = points(1 << 19, 4096);
    let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(4).seed(3));
    engine.offer_batch(&pts);
    let snap = engine.snapshot();
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(snap.stream_count() as u64));
    g.bench_function("compact_4096_streams", |b| {
        b.iter(|| {
            let mut s = snap.clone();
            s.compact(768);
            s.stream_count()
        });
    });
    g.finish();
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    // A collector flush interval on the wire: Hello + a 4096-stream
    // Delta + Bye, encoded and decoded back.
    let pts = points(1 << 19, 4096);
    let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(4).seed(3));
    engine.offer_batch(&pts);
    let frames = vec![
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 1,
            resume: None,
        },
        Frame::Delta(engine.snapshot()),
        Frame::Bye,
    ];
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(engine.stream_count() as u64));
    g.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            for f in &frames {
                bytes.extend_from_slice(&encode_frame(f));
            }
            decode_frames(&bytes).expect("clean stream").len()
        });
    });
    g.finish();
}

fn bench_evict_churn(c: &mut Criterion) {
    // 2^18 points over ~32k churning keys (8 points per key, never
    // reappearing) with idle eviction + compaction — the lifecycle
    // layer's steady-state cost.
    let pts: Vec<(u64, f64)> = (0..1u64 << 18)
        .map(|i| (i / 8, 40.0 + (i % 1461) as f64))
        .collect();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("evict_churn", |b| {
        b.iter(|| {
            let mut engine = MonitorEngine::new(
                MonitorConfig::default()
                    .shards(2)
                    .seed(3)
                    .evict_idle_after(4096)
                    .sweep_every(4096)
                    .compact_budget(768),
            );
            for chunk in pts.chunks(1 << 14) {
                engine.offer_batch(chunk);
            }
            engine.maintain();
            engine.lifecycle_stats().evicted
        });
    });
    g.finish();
}

fn bench_sketch_churn(c: &mut Criterion) {
    // 2^18 points over ~130k distinct keys against 512 exact slots and
    // a fixed sketch budget — the sketch tier's absorb path (count-min,
    // heavy-hitter list, projection cascades) at key-flood rates.
    let pts: Vec<(u64, f64)> = (0..1u64 << 18)
        .map(|i| (i / 2, 2.0 + (i % 17) as f64))
        .collect();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("sketch_churn", |b| {
        b.iter(|| {
            let mut engine = MonitorEngine::new(
                MonitorConfig::default()
                    .shards(2)
                    .seed(3)
                    .max_exact_keys(512)
                    .sketch_bytes(1 << 18)
                    .promote_after(1 << 20),
            );
            for chunk in pts.chunks(1 << 14) {
                engine.offer_batch(chunk);
            }
            engine.tier_stats().expect("tiered").sketched_keys
        });
    });
    g.finish();
}

fn bench_promote_demote(c: &mut Criterion) {
    // Heavy-hitter turnover: 64 hot keys rotating through 16 exact
    // slots with a low promotion threshold — prices the promote →
    // demote-coldest → retire cycle, the tier's worst-case path.
    let pts: Vec<(u64, f64)> = (0..1u64 << 17)
        .map(|i| {
            let phase = i / (1 << 11); // hot set rotates every 2048 points
            let key = (phase * 16 + i % 16) % 64;
            (key, 2.0 + (i % 13) as f64)
        })
        .collect();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("promote_demote", |b| {
        b.iter(|| {
            let mut engine = MonitorEngine::new(
                MonitorConfig::default()
                    .shards(2)
                    .seed(3)
                    .max_exact_keys(16)
                    .sketch_bytes(1 << 16)
                    .promote_after(64),
            );
            for chunk in pts.chunks(1 << 14) {
                engine.offer_batch(chunk);
            }
            let stats = engine.tier_stats().expect("tiered");
            stats.promotions + stats.demotions
        });
    });
    g.finish();
}

/// Pre-encoded session byte streams for the serve benches: 64
/// collectors, each flushing its partition of a 2^15-point workload in
/// 128-point intervals.
fn serve_pipes(sessions: u64) -> Vec<Vec<u8>> {
    (0..sessions)
        .map(|part| {
            let mut collector =
                Collector::new(part, MonitorConfig::default().sampler(spec()).seed(3));
            let mine: Vec<(u64, f64)> = points(1 << 15, 256)
                .into_iter()
                .filter(|&(k, _)| k % sessions == part)
                .collect();
            let mut pipe = Vec::new();
            for chunk in mine.chunks(128) {
                collector.offer_batch(chunk);
                collector.flush(&mut pipe).expect("flush");
            }
            collector.finish(&mut pipe).expect("finish");
            pipe
        })
        .collect()
}

fn bench_event_loop_serve(c: &mut Criterion) {
    // 64 collector sessions drained by one event loop, once per
    // readiness backend. Delivery is *staged*: a writer thread feeds
    // one session at a time (yielding after each) while the other
    // sessions sit connected but idle — the steady state a live
    // aggregator actually sees, and the one where the backends differ.
    // Every round the poll(2) backend has the kernel walk the whole
    // registered table to find the single ready fd, while epoll(7)'s
    // wait returns just the ready event: O(registered) vs O(ready)
    // per round, at identical session count, byte volume, and decode
    // work.
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    const SESSIONS: u64 = 64;
    let pipes = serve_pipes(SESSIONS);
    let total_bytes: usize = pipes.iter().map(Vec::len).sum();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(total_bytes as u64));
    for (id, kind) in [
        ("serve_event_loop_64_sessions", BackendKind::Poll),
        ("serve_epoll_64_sessions", BackendKind::Epoll),
    ] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let mut server = EventLoopServer::new(
                    Aggregator::new(),
                    ServeOptions {
                        collectors: SESSIONS as usize,
                        accept_timeout: None,
                    },
                )
                .with_backend(kind);
                let mut writers = Vec::with_capacity(pipes.len());
                for _ in 0..pipes.len() {
                    let (tx, rx) = UnixStream::pair().expect("socketpair");
                    writers.push(tx);
                    server.add_session(rx).expect("add_session");
                }
                let feeder = std::thread::spawn({
                    let pipes = pipes.clone();
                    move || {
                        for (mut tx, pipe) in writers.into_iter().zip(&pipes) {
                            tx.write_all(pipe).expect("buffered write");
                            drop(tx);
                            std::thread::yield_now();
                        }
                    }
                });
                let (agg, rep) = server.run().expect("event loop");
                feeder.join().expect("feeder");
                assert_eq!(rep.completed, SESSIONS as usize);
                agg.snapshot().stream_count()
            });
        });
    }
    g.finish();
}

fn bench_multi_loop_serve(c: &mut Criterion) {
    // The same 64 pre-encoded sessions sharded across N event loops
    // (default backend), dealt round-robin to per-loop aggregators and
    // merged at snapshot time. On a single core this prices the
    // sharding machinery (threads, wake pipes, snapshot merge); on N
    // cores it is the scaling row.
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    const SESSIONS: u64 = 64;
    let pipes = serve_pipes(SESSIONS);
    let total_bytes: usize = pipes.iter().map(Vec::len).sum();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(total_bytes as u64));
    for loops in [2usize, 4] {
        g.bench_function(format!("serve_multi_loop_{loops}x"), |b| {
            b.iter(|| {
                let mut server = MultiLoopServer::new(
                    (0..loops).map(|_| Aggregator::new()).collect(),
                    ServeOptions {
                        collectors: SESSIONS as usize,
                        accept_timeout: None,
                    },
                );
                for pipe in &pipes {
                    let (mut tx, rx) = UnixStream::pair().expect("socketpair");
                    tx.write_all(pipe).expect("buffered write");
                    drop(tx);
                    server.add_session(rx);
                }
                let (aggs, rep) = server.run().expect("event loops");
                assert_eq!(rep.completed, SESSIONS as usize);
                aggs.snapshot().stream_count()
            });
        });
    }
    g.finish();
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    // The wire_roundtrip workload (Hello + 4096-stream Delta + Bye)
    // pushed through a real TCP loopback connection into the event
    // loop — wire_roundtrip minus this row is the in-memory floor, this
    // row adds the socket + poll cost.
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    let pts = points(1 << 19, 4096);
    let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec()).shards(4).seed(3));
    engine.offer_batch(&pts);
    let mut session = Vec::new();
    for f in [
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 1,
            resume: None,
        },
        Frame::Delta(engine.snapshot()),
        Frame::Bye,
    ] {
        session.extend_from_slice(&encode_frame(&f));
    }
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(engine.stream_count() as u64));
    g.bench_function("tcp_roundtrip", |b| {
        b.iter(|| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut server = EventLoopServer::new(
                Aggregator::new(),
                ServeOptions {
                    collectors: 1,
                    accept_timeout: None,
                },
            );
            server.add_tcp_listener(listener).expect("register");
            let writer = std::thread::spawn({
                let session = session.clone();
                move || {
                    let mut sock = TcpStream::connect(addr).expect("connect");
                    sock.write_all(&session).expect("write session");
                }
            });
            let (agg, rep) = server.run().expect("event loop");
            writer.join().expect("writer");
            assert_eq!(rep.completed, 1);
            agg.snapshot().stream_count()
        });
    });
    g.finish();
}

fn bench_resync_after_kill(c: &mut Criterion) {
    // The ISSUE 7 recovery row: a sequenced collector's connection is
    // hard-killed mid-stream (half the window delivered, no Bye), and
    // the clock runs until a reconnect has replayed, the watermark has
    // skipped the duplicates, the session has completed, and the
    // assembled snapshot equals the unsharded engine's bytes. The
    // delta against `tcp_roundtrip`-style clean delivery prices the
    // whole recovery path: EOF detection, park/suspend, resumed
    // admission, duplicate-skip replay, final ack handshake.
    use sst_monitor::retry::{Backoff, SequencedSender};
    use sst_monitor::transport::SessionStream;
    use std::io::Write;
    use std::net::{Shutdown, TcpListener, TcpStream};
    let pts = points(1 << 15, 256);
    let mut reference = MonitorEngine::new(MonitorConfig::default().sampler(spec()).seed(3));
    reference.offer_batch(&pts);
    let reference_bytes = sst_monitor::encode_snapshot(&reference.snapshot());
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("resync_after_kill", |b| {
        b.iter(|| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut server = EventLoopServer::new(
                Aggregator::new(),
                ServeOptions {
                    collectors: 1,
                    accept_timeout: None,
                },
            );
            server.add_tcp_listener(listener).expect("register");
            let server_thread = std::thread::spawn(move || server.run().expect("event loop"));
            let mut collector =
                Collector::new_sequenced(7, MonitorConfig::default().sampler(spec()).seed(3));
            // First connection: half the workload on the wire, then a
            // hard kill before any ack can trim the window.
            let (first, second) = pts.split_at(pts.len() / 2);
            collector.offer_batch(first);
            collector.seal_flush();
            {
                let mut sock = TcpStream::connect(addr).expect("connect");
                sock.write_all(&encode_frame(&collector.hello()))
                    .expect("hello");
                for (_, bytes) in collector.unsent_window(0) {
                    sock.write_all(bytes).expect("window");
                }
                let _ = sock.shutdown(Shutdown::Both);
            }
            // The clock keeps running through detection + resumption:
            // the sender replays the full window and the serve's parked
            // watermark drops the half it already applied.
            collector.offer_batch(second);
            let sender = SequencedSender::new(
                collector,
                move || TcpStream::connect(addr).map(SessionStream::from),
                Backoff::new(1, 4, 7),
                64,
            );
            sender.finish().expect("resync within budget");
            let (agg, rep) = server_thread.join().expect("server");
            assert_eq!(rep.completed, 1);
            assert_eq!(
                sst_monitor::encode_snapshot(&agg.snapshot()),
                reference_bytes,
                "recovered snapshot must equal the unsharded bytes"
            );
            rep.completed
        });
    });
    g.finish();
}

fn bench_diff_flush(c: &mut Criterion) {
    // The ISSUE 9 steady state: 4096 slowly-changing streams with ≤8
    // new points each since the last acked flush. `diff_flush_steady`
    // prices one differential flush — diffing every stream against its
    // baseline and encoding the wire-v4 `DeltaDiff` frame — and
    // `diff_vs_cumulative_bytes` encodes the same interval down both
    // paths and pins the ≥5× payload saving the differential frames
    // exist for (the measured ratio is ~10×).
    use sst_monitor::wire::encode_frame_seq;
    use sst_monitor::{diff_entry, StreamDiff};
    const STREAMS: u64 = 4096;
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 2 })
            .seed(3)
            .reservoir_capacity(256),
    );
    // 600 warmup points per stream: reservoirs full, cascades deep —
    // the regime where per-flush change is small relative to state.
    for i in 0..STREAMS * 600 {
        engine.offer(i % STREAMS, 2.0 + (i % 97) as f64);
    }
    let base = engine.snapshot();
    for i in 0..STREAMS * 8 {
        engine.offer(i % STREAMS, 3.0 + (i % 89) as f64);
    }
    let grown = engine.snapshot();
    let diff_frame = |seq| {
        let diffs: Vec<StreamDiff> = base
            .streams()
            .iter()
            .zip(grown.streams())
            .map(|(b, n)| diff_entry(b, n).expect("steady streams diff"))
            .collect();
        encode_frame_seq(seq, &Frame::DeltaDiff(diffs))
    };
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STREAMS));
    g.bench_function("diff_flush_steady", |b| {
        b.iter(|| diff_frame(1).len());
    });
    g.bench_function("diff_vs_cumulative_bytes", |b| {
        b.iter(|| {
            let diff_bytes = diff_frame(1).len();
            let full_bytes = encode_frame_seq(1, &Frame::Delta(grown.clone())).len();
            assert!(
                full_bytes >= 5 * diff_bytes,
                "differential flush must ship ≥5× fewer bytes \
                 (diff {diff_bytes} B, cumulative {full_bytes} B)"
            );
            full_bytes - diff_bytes
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_offer, bench_sharded_ingest, bench_snapshot_merge,
        bench_compaction, bench_wire_roundtrip, bench_evict_churn,
        bench_sketch_churn, bench_promote_demote,
        bench_event_loop_serve, bench_multi_loop_serve, bench_tcp_roundtrip,
        bench_resync_after_kill, bench_diff_flush
}
criterion_main!(benches);
