//! Criterion benches: the signal-processing primitives behind the fGn
//! hot path.
//!
//! * `rfft` — the real-transform layer (`r2c`/`c2r` through a half-size
//!   complex FFT) against the full complex transforms they replace, on
//!   the circulant size the 65 536-point Davies-Harte synthesis uses.
//! * `gaussian` — ziggurat vs Box-Muller standard-normal draws (the fGn
//!   generator consumes `2N` per Monte-Carlo instance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sst_sigproc::complex::Complex;
use sst_sigproc::plan::FftPlan;
use sst_sigproc::rfft::RealFftPlan;
use sst_stats::dist::{standard_normal, standard_normal_boxmuller};
use sst_stats::rng::rng_from_seed;

fn bench_rfft(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfft");
    // The Davies-Harte circulant for a 2^16-point trace is 2^17 long.
    for n in [1usize << 15, 1 << 17] {
        g.throughput(Throughput::Elements(n as u64));
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();

        let real = RealFftPlan::new(n);
        let mut half_spec = vec![Complex::ZERO; real.spectrum_len()];
        g.bench_with_input(BenchmarkId::new("r2c", n), &n, |b, _| {
            b.iter(|| {
                real.r2c(&signal, &mut half_spec);
                half_spec[1]
            });
        });

        let full = FftPlan::new(n);
        let packed: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        let mut full_spec = packed.clone();
        g.bench_with_input(BenchmarkId::new("complex_fft", n), &n, |b, _| {
            b.iter(|| {
                full_spec.copy_from_slice(&packed);
                full.forward(&mut full_spec);
                full_spec[1]
            });
        });

        // Inverse direction: a Hermitian spectrum back to real samples.
        let mut herm = vec![Complex::ZERO; real.spectrum_len()];
        real.r2c(&signal, &mut herm);
        let mut spec_work = herm.clone();
        let mut out = vec![0.0; n];
        g.bench_with_input(BenchmarkId::new("c2r", n), &n, |b, _| {
            b.iter(|| {
                spec_work.copy_from_slice(&herm);
                real.c2r(&mut spec_work, &mut out);
                out[1]
            });
        });

        let herm_full = real.hermitian_extend(&herm);
        let mut inv_work = herm_full.clone();
        g.bench_with_input(BenchmarkId::new("complex_ifft", n), &n, |b, _| {
            b.iter(|| {
                inv_work.copy_from_slice(&herm_full);
                full.inverse(&mut inv_work);
                inv_work[1]
            });
        });
    }
    g.finish();
}

fn bench_gaussian(c: &mut Criterion) {
    const DRAWS: usize = 1 << 20;
    let mut g = c.benchmark_group("gaussian");
    g.throughput(Throughput::Elements(DRAWS as u64));
    g.bench_function(BenchmarkId::new("ziggurat", DRAWS), |b| {
        let mut rng = rng_from_seed(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..DRAWS {
                acc += standard_normal(&mut rng);
            }
            acc
        });
    });
    g.bench_function(BenchmarkId::new("boxmuller", DRAWS), |b| {
        let mut rng = rng_from_seed(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..DRAWS {
                acc += standard_normal_boxmuller(&mut rng);
            }
            acc
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rfft, bench_gaussian
}
criterion_main!(benches);
