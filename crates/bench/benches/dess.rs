//! Criterion benches: the discrete-event simulator substrate — event
//! queue throughput, per-source emission cost, and full scenario runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sst_dess::{BottleneckLink, EventQueue, LinkSpec, OnOffScenario, OnOffSource, TrafficSource};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("dess_event_queue");
    for n in [1usize << 12, 1 << 16] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Interleaved schedule/pop with pseudo-random times, the
                // pattern a source-merge loop produces.
                let mut t = 0.0f64;
                for i in 0..n {
                    t += ((i * 2654435761) % 1000) as f64 * 1e-6;
                    q.schedule(t, i).expect("monotone");
                    if i % 2 == 1 {
                        q.pop();
                    }
                }
                while q.pop().is_some() {}
                q.now()
            });
        });
    }
    g.finish();
}

fn bench_sources(c: &mut Criterion) {
    let mut g = c.benchmark_group("dess_sources");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("onoff_emissions", |b| {
        b.iter(|| {
            let mut src = OnOffSource::ns2(1.4, 0.5, 0.5, 1000.0, 500, 7);
            let mut last = 0.0;
            for _ in 0..n {
                last = src.next_packet().expect("unbounded").time;
            }
            last
        });
    });
    g.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("dess_link");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("droptail_offer", |b| {
        b.iter(|| {
            let mut link = BottleneckLink::new(1e8, 64);
            let mut t = 0.0;
            for i in 0..n {
                t += ((i % 37) as f64) * 1e-6;
                link.offer(t, 40 + (i % 1460) as u32);
            }
            link.forwarded()
        });
    });
    g.finish();
}

fn bench_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("dess_scenario");
    g.sample_size(10);
    g.bench_function("onoff_16src_60s", |b| {
        let sc = OnOffScenario::new().sources(16).duration(60.0);
        b.iter(|| sc.run(3).offered.mean());
    });
    g.bench_function("onoff_bottleneck_16src_60s", |b| {
        let sc = OnOffScenario::new()
            .sources(16)
            .duration(60.0)
            .bottleneck(LinkSpec {
                capacity_bps: 4e6,
                queue_limit: 64,
            });
        b.iter(|| sc.run(3).loss_rate);
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_sources, bench_link, bench_scenario
}
criterion_main!(benches);
