//! Criterion benches: Hurst estimators and the SNC checker.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sst_core::snc::{snc_check, GapDistribution};
use sst_hurst::{
    AbsoluteMomentEstimator, AcfFitEstimator, HiguchiEstimator, LocalWhittleEstimator,
    PeriodogramEstimator, ResidualVarianceEstimator, RsEstimator, VarianceTimeEstimator,
    WaveletEstimator,
};
use sst_traffic::FgnGenerator;

fn bench_estimators(c: &mut Criterion) {
    let n = 1usize << 16;
    let vals = FgnGenerator::new(0.8).expect("valid").generate_values(n, 5);
    let mut g = c.benchmark_group("hurst_estimators");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("wavelet_abry_veitch", |b| {
        let e = WaveletEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("rescaled_range", |b| {
        let e = RsEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("variance_time", |b| {
        let e = VarianceTimeEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("periodogram", |b| {
        let e = PeriodogramEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("local_whittle", |b| {
        let e = LocalWhittleEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("acf_fit", |b| {
        let e = AcfFitEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("higuchi", |b| {
        let e = HiguchiEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("absolute_moment", |b| {
        let e = AbsoluteMomentEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.bench_function("residual_variance", |b| {
        let e = ResidualVarianceEstimator::default();
        b.iter(|| e.estimate(&vals).expect("ok"));
    });
    g.finish();

    let mut g2 = c.benchmark_group("snc_checker");
    let taus: Vec<usize> = vec![8, 16, 32, 64, 128, 256];
    g2.bench_function("stratified_c10", |b| {
        b.iter(|| snc_check(&GapDistribution::Stratified { interval: 10 }, 0.4, &taus));
    });
    g2.bench_function("geometric_r0.1", |b| {
        b.iter(|| snc_check(&GapDistribution::SimpleRandom { rate: 0.1 }, 0.4, &taus));
    });
    g2.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimators
}
criterion_main!(benches);
