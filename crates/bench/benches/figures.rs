//! Criterion benches: end-to-end figure pipelines at quick scale — one
//! per table/figure of the paper, so `cargo bench` regenerates every
//! result (timings) while `repro` prints the series.

use criterion::{criterion_group, criterion_main, Criterion};
use sst_bench::figures::{run_one, ALL};
use sst_bench::{Ctx, Scale};

fn bench_figures(c: &mut Criterion) {
    let ctx = Ctx::new(Scale::Tiny, 20050607);
    let mut g = c.benchmark_group("figures_tiny");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for id in ALL {
        g.bench_function(*id, |b| {
            b.iter(|| run_one(id, &ctx).expect("known id"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
