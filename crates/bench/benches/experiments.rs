//! Criterion benches: the PR's hot-path claims.
//!
//! * `fgn_30_instance` — a 30-instance fGn Monte-Carlo generation
//!   experiment, comparing the **verbatim seed algorithm** (per-instance
//!   spectrum re-derivation through the historical iterative-twiddle
//!   FFT, fresh allocations) against the planned pipeline (cached
//!   `FgnPlan` + buffer reuse), serially and with the parallel instance
//!   fan-out. All three paths produce byte-identical values (pinned by
//!   `tests/determinism.rs`).
//! * `experiment_30_instance` — sequential vs `ParallelExperimentRunner`
//!   sampling experiments.
//!
//! The parallel rows scale with the executing machine's cores; on a
//! single-core container they only document the fan-out overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use sst_core::{run_experiment, ParallelExperimentRunner, SimpleRandomSampler};
use sst_sigproc::complex::Complex;
use sst_sigproc::fft::next_pow2;
use sst_stats::model::FgnAcf;
use sst_stats::rng::rng_from_seed;
use sst_traffic::fgn::{FgnPlan, FgnScratch};
use sst_traffic::SyntheticTraceSpec;

const INSTANCES: usize = 30;

/// The seed's FFT: iterative Cooley-Tukey recomputing twiddles through a
/// serial `w *= wlen` dependency chain on every call (no plan, no
/// tables) — kept verbatim as the benchmark baseline.
fn seed_fft_pow2_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n != 0 && n & (n - 1) == 0);
    if n <= 1 {
        return;
    }
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// The seed's Box-Muller helper, verbatim including its `dyn` receiver
/// (two virtual calls per draw, as the seed paid).
fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    use rand::Rng;
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The seed's `FgnGenerator::generate_values`, verbatim: re-derives the
/// circulant eigenvalue spectrum per call and allocates every buffer
/// fresh.
fn seed_generate_values(hurst: f64, n: usize, seed: u64) -> Vec<f64> {
    let big_n = next_pow2(n);
    let m = 2 * big_n;
    let acf = FgnAcf::new(hurst);
    let mut row = vec![Complex::ZERO; m];
    for (k, slot) in row.iter_mut().enumerate().take(big_n + 1) {
        *slot = Complex::from_real(acf.at(k as u64));
    }
    for k in 1..big_n {
        row[m - k] = Complex::from_real(acf.at(k as u64));
    }
    seed_fft_pow2_in_place(&mut row);
    let lambda: Vec<f64> = row.iter().map(|z| z.re.max(0.0)).collect();

    let mut rng = rng_from_seed(seed);
    let mut spec = vec![Complex::ZERO; m];
    spec[0] = Complex::from_real((lambda[0]).sqrt() * standard_normal(&mut rng));
    spec[big_n] = Complex::from_real((lambda[big_n]).sqrt() * standard_normal(&mut rng));
    for k in 1..big_n {
        let g = standard_normal(&mut rng);
        let h = standard_normal(&mut rng);
        let amp = (lambda[k] / 2.0).sqrt();
        spec[k] = Complex::new(amp * g, amp * h);
        spec[m - k] = spec[k].conj();
    }
    seed_fft_pow2_in_place(&mut spec);
    let norm = 1.0 / (m as f64).sqrt();
    spec.into_iter().take(n).map(|z| z.re * norm).collect()
}

fn bench_fgn_plan_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("fgn_30_instance");
    g.sample_size(10);
    for n in [1usize << 14, 1 << 16] {
        g.throughput(Throughput::Elements((INSTANCES * n) as u64));
        g.bench_with_input(BenchmarkId::new("seed_algorithm", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for seed in 0..INSTANCES as u64 {
                    acc += seed_generate_values(0.8, n, seed)[0];
                }
                acc
            });
        });
        g.bench_with_input(BenchmarkId::new("plan_reused", n), &n, |b, &n| {
            let plan = FgnPlan::new(0.8, n).expect("valid");
            let mut out = Vec::new();
            let mut scratch = FgnScratch::default();
            b.iter(|| {
                let mut acc = 0.0;
                for seed in 0..INSTANCES as u64 {
                    plan.generate_values_into(seed, &mut out, &mut scratch);
                    acc += out[0];
                }
                acc
            });
        });
        g.bench_with_input(BenchmarkId::new("plan_parallel", n), &n, |b, &n| {
            let plan = FgnPlan::new(0.8, n).expect("valid");
            b.iter(|| {
                let firsts: Vec<f64> = (0..INSTANCES as u64)
                    .into_par_iter()
                    .map(|seed| {
                        let mut out = Vec::new();
                        let mut scratch = FgnScratch::default();
                        plan.generate_values_into(seed, &mut out, &mut scratch);
                        out[0]
                    })
                    .collect();
                firsts.iter().sum::<f64>()
            });
        });
    }
    g.finish();
}

/// Sequential vs parallel instance fan-out. Simple random sampling does
/// per-element RNG work, so each instance is a substantial task.
fn bench_parallel_runner(c: &mut Criterion) {
    let trace = SyntheticTraceSpec::new().length(1 << 17).seed(9).build();
    let vals = trace.values();
    let sampler = SimpleRandomSampler::new(0.01);
    let mut g = c.benchmark_group("experiment_30_instance");
    // Below the minimum-work threshold both rows execute the identical
    // sequential code path, so their true difference is zero; plenty of
    // samples keep the reported medians from drifting apart on a noisy
    // single-core container.
    g.sample_size(40);
    g.throughput(Throughput::Elements((INSTANCES * vals.len()) as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| run_experiment(vals, &sampler, INSTANCES, 3).average_variance());
    });
    g.bench_function("parallel_all_cores", |b| {
        let runner = ParallelExperimentRunner::new();
        b.iter(|| runner.run(vals, &sampler, INSTANCES, 3).average_variance());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fgn_plan_reuse, bench_parallel_runner
}
criterion_main!(benches);
