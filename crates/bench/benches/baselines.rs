//! Criterion benches: the related-work baseline samplers — packet-level
//! trigger × pattern samplers, trajectory sampling, sample-and-hold, and
//! the adaptive rate-controlled sampler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sst_core::adaptive::{AdaptiveConfig, AdaptiveRandomSampler};
use sst_core::Sampler;
use sst_nettrace::pktsampling::{PacketSampler, SelectionPattern, Trigger};
use sst_nettrace::{SampleAndHold, TraceSynthesizer, TrajectorySampler};
use sst_traffic::SyntheticTraceSpec;

fn bench_packet_samplers(c: &mut Criterion) {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(120.0)
        .synthesize(1);
    let mut g = c.benchmark_group("packet_samplers");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("event_systematic", |b| {
        let s = PacketSampler::new(
            Trigger::EventDriven { every: 100 },
            SelectionPattern::Systematic,
        );
        b.iter(|| s.sample(&trace, 3).len());
    });
    g.bench_function("event_random", |b| {
        let s = PacketSampler::new(
            Trigger::EventDriven { every: 100 },
            SelectionPattern::Random,
        );
        b.iter(|| s.sample(&trace, 3).len());
    });
    g.bench_function("time_stratified", |b| {
        let s = PacketSampler::new(
            Trigger::TimeDriven { every: 1.0 },
            SelectionPattern::Stratified,
        );
        b.iter(|| s.sample(&trace, 3).len());
    });
    g.bench_function("trajectory_1pct", |b| {
        let s = TrajectorySampler::new(0.01, 42);
        b.iter(|| s.sample(&trace).len());
    });
    g.bench_function("sample_and_hold", |b| {
        let s = SampleAndHold::new(1e-5);
        b.iter(|| s.run(&trace, 3).table_len());
    });
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let trace = SyntheticTraceSpec::new().length(1 << 18).seed(2).build();
    let mut g = c.benchmark_group("adaptive_sampler");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("adaptive_default", |b| {
        let s = AdaptiveRandomSampler::new(AdaptiveConfig::default()).expect("valid");
        b.iter(|| s.sample(trace.values(), 3).len());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_packet_samplers, bench_adaptive
}
criterion_main!(benches);
