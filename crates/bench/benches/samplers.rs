//! Criterion benches: sampler throughput on a paper-like synthetic trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sst_core::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use sst_core::{Sampler, SimpleRandomSampler, StratifiedSampler, SystematicSampler};
use sst_traffic::SyntheticTraceSpec;

fn bench_samplers(c: &mut Criterion) {
    let trace = SyntheticTraceSpec::new().length(1 << 18).seed(1).build();
    let vals = trace.values();
    let mut g = c.benchmark_group("samplers");
    g.throughput(Throughput::Elements(vals.len() as u64));
    for interval in [100usize, 1000] {
        g.bench_with_input(
            BenchmarkId::new("systematic", interval),
            &interval,
            |b, &iv| {
                let s = SystematicSampler::new(iv);
                b.iter(|| s.sample(vals, 3));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("stratified", interval),
            &interval,
            |b, &iv| {
                let s = StratifiedSampler::new(iv);
                b.iter(|| s.sample(vals, 3));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("simple_random", interval),
            &interval,
            |b, &iv| {
                let s = SimpleRandomSampler::new(1.0 / iv as f64);
                b.iter(|| s.sample(vals, 3));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("bss_online", interval),
            &interval,
            |b, &iv| {
                let s = BssSampler::new(iv, ThresholdPolicy::Online(OnlineTuning::default()))
                    .expect("valid");
                b.iter(|| s.sample_detailed(vals, 3));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_samplers
}
criterion_main!(benches);
