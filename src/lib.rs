//! # selfsim — facade crate
//!
//! Re-exports the full reproduction of He & Hou, *"An In-Depth, Analytical
//! Study of Sampling Techniques for Self-Similar Internet Traffic"*
//! (ICDCS 2005) under one roof:
//!
//! * [`sampling`] (`sst-core`) — the paper's contribution: systematic /
//!   stratified / simple-random samplers, Biased Systematic Sampling (BSS),
//!   SNC theory, fidelity metrics.
//! * [`monitor`] (`sst-monitor`) — layered collector stack: sharded
//!   online monitoring with mergeable summaries, eviction + compaction,
//!   a versioned wire protocol, and collector → aggregator topology.
//! * [`traffic`] (`sst-traffic`) — self-similar synthetic traffic.
//! * [`nettrace`] (`sst-nettrace`) — packet traces (Bell-Labs-like).
//! * [`hurst`] (`sst-hurst`) — Hurst/LRD estimators.
//! * [`queue`] (`sst-queue`) — FIFO queueing + Norros dimensioning.
//! * [`dess`] (`sst-dess`) — discrete-event simulation (ns-2 substitute).
//! * [`stats`] (`sst-stats`) — time series, distributions, tail fits.
//! * [`sigproc`] (`sst-sigproc`) — FFT, wavelets, regression.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use selfsim::traffic::SyntheticTraceSpec;
//! use selfsim::sampling::{Sampler, SystematicSampler};
//!
//! let trace = SyntheticTraceSpec::new().length(1 << 12).seed(7).build();
//! let samples = SystematicSampler::new(64).sample(trace.values(), 42);
//! assert_eq!(samples.len(), (1 << 12) / 64);
//! ```

pub use sst_core as sampling;
pub use sst_dess as dess;
pub use sst_hurst as hurst;
pub use sst_monitor as monitor;
pub use sst_nettrace as nettrace;
pub use sst_queue as queue;
pub use sst_sigproc as sigproc;
pub use sst_stats as stats;
pub use sst_traffic as traffic;
